//! Extending DisTA to a custom native communication library — paper §VI:
//! "distributed system developers can design their own native
//! communication libraries and corresponding JNI methods … users can
//! follow the three instrumentation ways and extend our instrumentation
//! interfaces to instrument them."
//!
//! ```text
//! cargo run --example custom_jni_extension
//! ```
//!
//! The "vendor library" below talks straight to the taint-oblivious OS
//! layer (raw `TcpEndpoint`s — our stand-in for bespoke JNI methods), so
//! out of the box its messages lose their taints. Wrapping each endpoint
//! in a [`BoundaryStream`] — the Type-1 instrumentation interface — is
//! the entire integration: ~10 lines, no changes to DisTA itself.

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{BoundaryStream, JreError, Vm};
use dista_repro::simnet::{NodeAddr, TcpEndpoint};
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

/// A third-party transport with its own framing: `0xCAFE` magic, u16
/// length, body. Its send/recv are "native methods" — they only ever see
/// raw bytes.
mod vendor_lib {
    use super::*;

    pub fn send_native(ep: &TcpEndpoint, body: &[u8]) {
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&0xCAFEu16.to_be_bytes());
        frame.extend_from_slice(&(body.len() as u16).to_be_bytes());
        frame.extend_from_slice(body);
        ep.write(&frame).expect("vendor send");
    }

    pub fn recv_native(ep: &TcpEndpoint) -> Vec<u8> {
        let mut header = [0u8; 4];
        ep.read_exact(&mut header).expect("vendor recv header");
        assert_eq!(u16::from_be_bytes([header[0], header[1]]), 0xCAFE);
        let len = u16::from_be_bytes([header[2], header[3]]) as usize;
        let mut body = vec![0u8; len];
        ep.read_exact(&mut body).expect("vendor recv body");
        body
    }
}

/// The user's DisTA extension: the same vendor framing, but each side's
/// endpoint is wrapped in a `BoundaryStream` (Type 1 instrumentation),
/// so the magic/length scaffolding stays plain while the body's bytes
/// cross with their Global IDs.
mod vendor_lib_instrumented {
    use super::*;

    pub fn send(vm: &Vm, ep: TcpEndpoint, body: &Payload) -> Result<(), JreError> {
        let boundary = BoundaryStream::new(vm.clone(), ep);
        let mut header = Vec::with_capacity(4);
        header.extend_from_slice(&0xCAFEu16.to_be_bytes());
        header.extend_from_slice(&(body.len() as u16).to_be_bytes());
        boundary.write_payload(&Payload::Plain(header))?;
        boundary.write_payload(body)
    }

    pub fn recv(vm: &Vm, ep: TcpEndpoint) -> Result<Payload, JreError> {
        let boundary = BoundaryStream::new(vm.clone(), ep);
        let header = boundary.read_exact_payload(4)?.into_plain();
        assert_eq!(u16::from_be_bytes([header[0], header[1]]), 0xCAFE);
        let len = u16::from_be_bytes([header[2], header[3]]) as usize;
        boundary.read_exact_payload(len)
    }
}

fn pipe(cluster: &Cluster, port: u16) -> (TcpEndpoint, TcpEndpoint) {
    let listener = cluster
        .net()
        .tcp_listen(NodeAddr::new([10, 0, 0, 2], port))
        .expect("listen");
    let client = cluster
        .net()
        .tcp_connect_from([10, 0, 0, 1], NodeAddr::new([10, 0, 0, 2], port))
        .expect("connect");
    let served = listener.accept().expect("accept");
    (client, served)
}

fn main() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("ext", 2)
        .build()
        .expect("cluster");
    let (vm1, vm2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let secret = vm1.store().mint_source_taint(TagValue::str("api-key"));
    let message = Payload::Tainted(TaintedBytes::uniform(b"key=sk-123456", secret));

    // 1) The vendor library as shipped: taints die in "native" code.
    let (tx, rx) = pipe(&cluster, 9100);
    vendor_lib::send_native(&tx, message.data());
    let received = vendor_lib::recv_native(&rx);
    println!(
        "uninstrumented vendor lib: bytes ok = {}, taints = (none — lost in native code)",
        received == message.data()
    );

    // 2) The ~10-line DisTA extension: same framing, taints survive.
    let (tx, rx) = pipe(&cluster, 9101);
    let reader = std::thread::spawn(move || vendor_lib_instrumented::recv(&vm2, rx).expect("recv"));
    vendor_lib_instrumented::send(&vm1, tx, &message).expect("send");
    let received = reader.join().expect("join");
    let receiver = cluster.vm(1);
    println!(
        "instrumented vendor lib:   bytes ok = {}, taints = {:?}",
        received.data() == message.data(),
        receiver
            .store()
            .tag_values(received.taint_union(receiver.store()))
    );
    cluster.shutdown();
}

//! SIM scenario (data-leak detection): monitor whether configuration
//! file contents leak into log statements on *other* nodes — paper
//! Table IV row 2 and the Fig. 11 walkthrough.
//!
//! ```text
//! cargo run --example privacy_leak_monitor
//! ```

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{FILE_INPUT_STREAM_CLASS, LOGGER_CLASS};
use dista_repro::taint::{MethodDesc, SourceSinkSpec};
use dista_repro::zookeeper::{ZkEnsemble, ZkEnsembleConfig};

fn main() {
    // SIM spec: every file read is a source, every LOG.info a sink.
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
        .add_sink(MethodDesc::new(LOGGER_CLASS, "info"));

    let cluster = Cluster::builder(Mode::Dista)
        .nodes("zk", 3)
        .spec(spec)
        .build()
        .expect("cluster");

    // Fig. 11: node 1 has three transaction-log files; only the last
    // one's zxid flows onward.
    let ensemble = ZkEnsemble::start(
        cluster.vms(),
        ZkEnsembleConfig {
            txn_logs: vec![vec![10, 20, 30], vec![10], vec![10]],
            ..Default::default()
        },
    )
    .expect("ensemble");
    println!("leader elected: zk{}\n", ensemble.leader());

    println!("file-content flows observed at LOG.info sinks:");
    let mut leaks = 0;
    for (node, report) in cluster.sink_reports() {
        for event in report.at("LOG.info") {
            if event.is_tainted() {
                leaks += 1;
                println!(
                    "  LEAK on {node}: log statement printed data derived from {:?}",
                    event.tags
                );
            }
        }
    }
    println!("\n→ {leaks} tainted log statement(s); note only the LAST file read on the");
    println!("  leader leaked (the first two taints were minted but never propagated),");
    println!("  reproducing the precision analysis of the paper's Fig. 11.");
    ensemble.shutdown();
    cluster.shutdown();
}

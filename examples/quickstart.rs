//! Quickstart: two nodes, one secret, three tracking modes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Node 1 taints a password and sends it over an ordinary TCP socket;
//! node 2 checks what arrives. With DisTA the taint crosses the wire;
//! with plain Phosphor (intra-node only) it silently disappears — the
//! exact gap the paper closes.

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{InputStream, OutputStream, ServerSocket, Socket};
use dista_repro::simnet::NodeAddr;
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

fn send_secret(mode: Mode) -> Vec<String> {
    let cluster = Cluster::builder(mode)
        .node("sender", [10, 0, 0, 1])
        .node("receiver", [10, 0, 0, 2])
        .build()
        .expect("cluster");
    let (sender, receiver) = (cluster.vm(0).clone(), cluster.vm(1).clone());

    let server = ServerSocket::bind(&receiver, NodeAddr::new([10, 0, 0, 2], 443)).expect("bind");
    let listener = std::thread::spawn(move || {
        let conn = server.accept().expect("accept");
        conn.input_stream().read_exact(8).expect("read")
    });

    // Taint source: the password read from the operator.
    let taint = sender.store().mint_source_taint(TagValue::str("password"));
    let client = Socket::connect(&sender, NodeAddr::new([10, 0, 0, 2], 443)).expect("connect");
    client
        .output_stream()
        .write(&Payload::Tainted(TaintedBytes::uniform(b"hunter2!", taint)))
        .expect("send");

    // Taint sink: whatever the receiver got.
    let received = listener.join().expect("listener");
    assert_eq!(received.data(), b"hunter2!");
    let tags = receiver
        .store()
        .tag_values(received.taint_union(receiver.store()));
    cluster.shutdown();
    tags
}

fn main() {
    println!("sending a tainted password across two simulated JVMs...\n");
    for mode in [Mode::Phosphor, Mode::Dista] {
        let tags = send_secret(mode);
        println!(
            "{mode:>8}: receiver sees tags {tags:?} {}",
            if tags.is_empty() {
                "→ the taint died at the JNI boundary (paper Fig. 4)"
            } else {
                "→ inter-node tracking works"
            }
        );
    }
}

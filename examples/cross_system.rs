//! Cross-system taint tracking: HBase + ZooKeeper — paper §V-B: "this
//! workload can be considered a cross-system taint tracking scenario."
//!
//! ```text
//! cargo run --example cross_system
//! ```
//!
//! A RegionServer's configuration value enters ZooKeeper (system 1),
//! is consumed by the HMaster and the HBase client (system 2), and the
//! client's tainted `TableName` rides the protobuf RPC to the
//! RegionServer and back into the `Result`.

use dista_repro::core::{Cluster, Mode};
use dista_repro::hbase::{seed_config, HMaster, HTable, RegionServer, HTABLE_CLASS};
use dista_repro::jre::{FILE_INPUT_STREAM_CLASS, LOGGER_CLASS};
use dista_repro::simnet::NodeAddr;
use dista_repro::taint::{MethodDesc, SourceSinkSpec, TaintedBytes};
use dista_repro::zookeeper::{ZkClient, ZkEnsemble, ZkEnsembleConfig};

fn main() {
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
        .add_source(MethodDesc::new(HTABLE_CLASS, "tableName"))
        .add_sink(MethodDesc::new(LOGGER_CLASS, "info"))
        .add_sink(MethodDesc::new(HTABLE_CLASS, "getResult"));

    // VMs: 0 = HMaster, 1-2 = RegionServers, 3 = client; ZooKeeper peers
    // co-located on VMs 0-2 (the paper's deployment).
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("hb", 4)
        .spec(spec)
        .build()
        .expect("cluster");
    let zk_vms: Vec<_> = cluster.vms()[..3].to_vec();
    let ensemble = ZkEnsemble::start(&zk_vms, ZkEnsembleConfig::default()).expect("zk");

    let mut region_servers = Vec::new();
    for (i, vm) in cluster.vms()[1..3].iter().enumerate() {
        seed_config(vm, &format!("rs-host-{i}"));
        let rs = RegionServer::start(vm, NodeAddr::new(vm.ip(), 16020)).expect("rs");
        let zk = ZkClient::connect(vm, ensemble.any_client_addr()).expect("zk client");
        rs.register_in_zk(&zk, i).expect("register");
        zk.close();
        region_servers.push(rs);
    }
    let master = HMaster::start(cluster.vm(0), ensemble.any_client_addr()).expect("master");
    let servers = master.wait_for_region_servers(2).expect("discovery");
    master.assign_tables(&["users"], &servers).expect("assign");

    let table = HTable::open(cluster.vm(3), ensemble.any_client_addr(), "users").expect("open");
    table
        .put(
            b"alice",
            TaintedBytes::from_plain(b"alice@example.org".to_vec()),
        )
        .expect("put");
    let result = table.get(b"alice").expect("get");
    println!(
        "get(users, alice) → {:?}",
        String::from_utf8_lossy(result.cells[0].value.data())
    );
    println!(
        "result taints (client store): {:?}",
        cluster.vm(3).store().tag_values(result.taint)
    );

    println!("\ntaint flows observed across the two systems:");
    for (node, report) in cluster.sink_reports() {
        for event in &report.events {
            if event.is_tainted() {
                println!("  {node}: {} saw {:?}", event.sink, event.tags);
            }
        }
    }
    println!("\n→ the RS config taint crossed RegionServer → ZooKeeper → HMaster/client,");
    println!("  and the client's TableName taint crossed client → RegionServer → client.");

    table.close();
    master.shutdown();
    for rs in region_servers {
        rs.shutdown();
    }
    ensemble.shutdown();
    cluster.shutdown();
}

//! Taint tracking through a MapReduce shuffle — the Kakute contrast.
//!
//! ```text
//! cargo run --example shuffle_tracking
//! ```
//!
//! Kakute (the paper's Spark-specific predecessor) instruments Spark's
//! shuffle APIs by hand. DisTA needs no shuffle-specific hooks: a
//! WordCount job's map outputs travel mapper-NM → reducer-NM through the
//! same instrumented NIO channels as everything else, so a classified
//! document's taint arrives on exactly the words that came from it — and
//! on nothing else.

use dista_repro::core::{Cluster, Mode};
use dista_repro::mapreduce::run_wordcount_job;
use dista_repro::taint::{TagValue, TaintedBytes};

fn main() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("yarn", 4)
        .build()
        .expect("cluster");
    let client_vm = cluster.vm(3).clone();

    // A document that mixes classified and public text.
    let secret = client_vm
        .store()
        .mint_source_taint(TagValue::str("dossier-7"));
    let mut input =
        TaintedBytes::uniform(b"codename aurora handler meeting aurora ".to_vec(), secret);
    input.extend_plain(b"weather report sunny tomorrow weather");

    let result = run_wordcount_job(cluster.vms(), input, 3, 2).expect("job");
    println!("word counts after map → shuffle → reduce:\n");
    for cell in &result.report.word_counts {
        let tags = client_vm.store().tag_values(cell.word.taint());
        println!(
            "  {:>10} × {}   {}",
            cell.word.value(),
            cell.count,
            if tags.is_empty() {
                "(untainted)".to_string()
            } else {
                format!("tainted by {tags:?}")
            }
        );
    }
    println!("\n→ only the classified document's words carry \"dossier-7\" — byte-level");
    println!("  precision survived two network hops and a shuffle, with zero");
    println!("  shuffle-specific instrumentation.");
    cluster.shutdown();
}

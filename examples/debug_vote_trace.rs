//! SDT scenario (program debugging): trace a ZooKeeper vote through a
//! leader election — paper Table IV row 1.
//!
//! ```text
//! cargo run --example debug_vote_trace
//! ```
//!
//! Each of the three peers taints its initial `Vote`; after the election
//! we inspect `checkLeader` on the followers to see *whose* vote actually
//! decided the election — the debugging workflow the paper motivates.

use dista_repro::core::{Cluster, Mode};
use dista_repro::taint::{MethodDesc, SourceSinkSpec};
use dista_repro::zookeeper::{ZkEnsemble, ZkEnsembleConfig, FLE_CLASS};

fn main() {
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(FLE_CLASS, "getVote"))
        .add_sink(MethodDesc::new(FLE_CLASS, "checkLeader"));

    let cluster = Cluster::builder(Mode::Dista)
        .nodes("zk", 3)
        .spec(spec)
        .build()
        .expect("cluster");

    // Node 2 has the freshest transaction log, so its vote should win.
    let ensemble = ZkEnsemble::start(
        cluster.vms(),
        ZkEnsembleConfig {
            txn_logs: vec![vec![100], vec![100, 200], vec![100]],
            ..Default::default()
        },
    )
    .expect("election");

    println!("elected leader: zk{}", ensemble.leader());
    println!("\ncheckLeader observations on each node:");
    for (node, report) in cluster.sink_reports() {
        for event in report.at(&format!("{FLE_CLASS}.checkLeader")) {
            println!("  {node}: decided by vote(s) {:?}", event.tags);
        }
        if report.at(&format!("{FLE_CLASS}.checkLeader")).is_empty() {
            println!("  {node}: (leader — no checkLeader)");
        }
    }
    let followers_saw_vote2 = cluster
        .sink_reports()
        .iter()
        .flat_map(|(_, r)| r.observed_tags())
        .filter(|t| t == "vote2")
        .count();
    println!("\n→ the winning vote was node 2's (observed on {followers_saw_vote2} followers);");
    println!("  the other votes were generated but never propagated — exactly");
    println!("  the kind of provenance question DTA debugging answers.");
    ensemble.shutdown();
    cluster.shutdown();
}

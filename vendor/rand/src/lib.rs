//! Offline stand-in for the `rand` crate: a deterministic
//! xoshiro256** generator behind the `Rng`/`SeedableRng` subset this
//! workspace uses (`SmallRng::seed_from_u64`, `gen_range`, `gen_bool`,
//! `gen`). Not cryptographically secure — simulation/test use only.

// Vendored stand-in: linted to compile cleanly, not to the host
// project's clippy bar.
#![allow(clippy::all)]

use std::ops::Range;

/// Seedable generator constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly random `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for simulation purposes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

/// Generator namespaces (mirrors `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to expand the seed into the full state, per the
            // xoshiro reference implementation's seeding advice.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** 1.0
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..1_000_000);
            assert!(v < 1_000_000);
            let w = rng.gen_range(10u8..20);
            assert!((10..20).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

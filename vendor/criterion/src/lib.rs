//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use: benchmark
//! groups with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros.
//! Reports mean / min / max wall-clock time per iteration to stdout —
//! no statistics engine, no HTML reports, no saved baselines.

// Vendored stand-in: linted to compile cleanly, not to the host
// project's clippy bar.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Per-iteration timing callback holder passed to bench closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, calling it repeatedly: a warm-up phase, then
    /// `sample_size` samples spread across the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also used to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Choose iterations per sample so that all samples fit the
        // measurement window, at least 1.
        let per_sample_budget = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if est_iter.is_zero() {
            1000
        } else {
            (per_sample_budget.as_nanos() / est_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / iters_per_sample.max(1) as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{label:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the total measurement window per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&label);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (separator line in the output).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    benchmarks_run: usize,
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            benchmarks_run: 0,
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
            default_warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// No-op for CLI-argument compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("default", f);
        group.finish();
        self
    }
}

/// Declares a group function running each listed bench target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &v| {
            b.iter(|| black_box(v * 2));
        });
        group.finish();
        assert!(ran);
    }
}

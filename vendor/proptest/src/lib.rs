//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert*`, `prop_oneof!`, `Just`, `any`, ranges,
//! tuples, `prop::collection::vec`, `prop::option::of`, simple
//! regex-pattern string strategies, `prop_map`, `prop_recursive`,
//! `BoxedStrategy` — with deterministic per-test seeding.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case prints its inputs and panics.
//! * Default case count is 64 (set `PROPTEST_CASES` to override).
//! * String strategies support only the `[class]{m,n}` pattern subset.

// Vendored stand-in: linted to compile cleanly, not to the host
// project's clippy bar.
#![allow(clippy::all)]

use std::fmt::Debug;
use std::sync::Arc;

/// Deterministic generator used by strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_CAFE,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::{Arc, Debug, TestRng};

    /// A generator of test values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The type of generated values.
        type Value: Clone + Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Clone + Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates values by flat-mapping into a second strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Filters generated values (retries up to 100 times, then
        /// panics — keep predicates permissive).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Builds a recursive strategy: up to `depth` levels of
        /// `recurse` applications over this leaf strategy. The
        /// `_desired_size` / `_expected_branch_size` tuning knobs of
        /// real proptest are accepted but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                let leaf = base.clone();
                let deeper = recurse(strat).boxed();
                strat = BoxedStrategy::from_fn(move |rng| {
                    // Bias toward leaves so trees stay small.
                    if rng.below(3) == 0 {
                        deeper.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                });
            }
            strat
        }

        /// Type-erases the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.generate(rng))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen_fn: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy {
                gen_fn: Arc::new(f),
            }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen_fn: Arc::clone(&self.gen_fn),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Strategy that always yields a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone + Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..100 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 100 candidates", self.whence);
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs alternatives");
            Union { options }
        }
    }

    impl<T: Clone + Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&str` regex-subset pattern strategies: sequences of literals and
    /// `[class]` atoms with optional `{n}` / `{m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let inner = &chars[i + 1..close];
                i = close + 1;
                expand_class(inner)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let idx = rng.below(class.len() as u64) as usize;
                out.push(class[idx]);
            }
        }
        out
    }

    fn expand_class(inner: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < inner.len() {
            if i + 2 < inner.len() && inner[i + 1] == '-' {
                let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
                for c in lo..=hi {
                    out.push(char::from_u32(c).expect("bad class range"));
                }
                i += 3;
            } else {
                out.push(inner[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty char class");
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use super::strategy::Strategy;
    use super::{Debug, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Clone + Debug {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('?')
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy with a size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Strategy for `Option<T>` from a strategy for `T`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Case-count configuration and the per-test runner.

    use super::TestRng;

    /// Failure payload for properties returning `TestCaseResult`. In
    /// this stand-in `prop_assert!` panics instead of constructing one,
    /// but helper functions still name the type.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result alias used by fallible property helpers.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Drives the cases of one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner seeded deterministically from the test name.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                config,
                rng: TestRng::new(seed),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The runner's generator.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Panic-based stand-in for proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Panic-based stand-in for proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The property-test macro: runs each `fn` body for every generated
/// case, printing the inputs of a failing case before re-panicking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner =
                $crate::test_runner::TestRunner::new(__config, stringify!($name));
            for __case in 0..__runner.cases() {
                let __vals = (
                    $( $crate::strategy::Strategy::generate(&($strat), __runner.rng()), )+
                );
                let __result = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(|| {
                        // The body runs in a `TestCaseResult` context so
                        // fallible helpers can use `?`, like upstream.
                        let __run = || -> $crate::test_runner::TestCaseResult {
                            let ( $( $pat, )+ ) = __vals.clone();
                            $body
                            Ok(())
                        };
                        if let Err(e) = __run() {
                            panic!("property returned failure: {e}");
                        }
                    }),
                );
                if let Err(err) = __result {
                    eprintln!(
                        "proptest {}: case {}/{} FAILED with inputs:\n{:#?}",
                        stringify!($name),
                        __case + 1,
                        __runner.cases(),
                        __vals,
                    );
                    std::panic::resume_unwind(err);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_patterns_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn union_and_collections_compose() {
        let mut rng = crate::TestRng::new(2);
        let strat = prop::collection::vec((any::<u8>(), prop::option::of(0u8..4)), 1..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let one = prop_oneof![Just(1usize), Just(3), Just(7)];
        for _ in 0..50 {
            let v = Strategy::generate(&one, &mut rng);
            assert!([1, 3, 7].contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns(mut xs in prop::collection::vec(0u8..10, 0..6), n in 0usize..4) {
            xs.push(n as u8);
            prop_assert!(xs.len() <= 6);
            prop_assert_eq!(*xs.last().unwrap() as usize, n);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::new(3);
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 7);
        }
    }
}

//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. Exposes the subset of the API this workspace uses with
//! parking_lot semantics: non-poisoning locks whose `lock()`/`read()`/
//! `write()` return guards directly, and a `Condvar` that takes `&mut
//! MutexGuard` instead of consuming it.

// Vendored stand-in: linted to compile cleanly, not to the host
// project's clippy bar.
#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (non-poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable that works with [`MutexGuard`] in place.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    /// Set once a waiter has ever been woken spuriously-vs-poisoned;
    /// only used to keep Debug cheap.
    _used: AtomicBool,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            _used: AtomicBool::new(false),
        }
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._used.store(true, Ordering::Relaxed);
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self._used.store(true, Ordering::Relaxed);
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}

//! Offline stand-in for the `crossbeam` crate: implements the
//! `crossbeam::channel` MPMC subset this workspace uses (unbounded and
//! bounded channels with cloneable senders *and* receivers, timeouts,
//! and crossbeam's disconnect semantics) over a mutex + condvars.

// Vendored stand-in: linted to compile cleanly, not to the host
// project's clippy bar.
#![allow(clippy::all)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message is enqueued or senders disconnect.
        readable: Condvar,
        /// Signalled when a message is dequeued or receivers disconnect.
        writable: Condvar,
        /// `None` = unbounded.
        cap: Option<usize>,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.writable.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the channel is empty and sender-less.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.readable.wait(st).unwrap();
            }
        }

        /// Like [`Receiver::recv`] with an upper bound on the wait.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] after `timeout`,
        /// [`RecvTimeoutError::Disconnected`] when empty and sender-less.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .readable
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.writable.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cloned_receivers_share_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(7).unwrap();
            let got = rx2.recv().unwrap();
            assert_eq!(got, 7);
            assert!(rx1.is_empty());
        }
    }
}

//! Offline stand-in for `serde_derive`. The vendored `serde` crate
//! defines `Serialize`/`Deserialize` as *marker* traits (no methods), so
//! these derives only need to emit `impl serde::Serialize for T {}` for
//! the deriving type. Generic deriving types are supported with a
//! blanket bound on each type parameter.

// Vendored stand-in: linted to compile cleanly, not to the host
// project's clippy bar.
#![allow(clippy::all)]

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize")
}

fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let (name, generics) = parse_item_header(input);
    let impl_code = if generics.is_empty() {
        format!("impl serde::{trait_name} for {name} {{}}")
    } else {
        let bounds: Vec<String> = generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        format!(
            "impl<{params}> serde::{trait_name} for {name}<{params}> where {bounds} {{}}",
            params = generics.join(", "),
            bounds = bounds.join(", "),
        )
    };
    impl_code.parse().expect("generated impl must parse")
}

/// Extracts the deriving item's name and type-parameter idents from the
/// token stream (`struct Foo<T, U> ...` / `enum Bar ...`), skipping
/// attributes, doc comments and visibility qualifiers.
fn parse_item_header(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Find the `struct` / `enum` / `union` keyword.
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name after struct/enum keyword, got {other:?}"),
    };
    // Collect simple type parameters if a `<...>` group follows. Only
    // bare idents are kept (lifetimes and const params are not needed by
    // the types this workspace derives on).
    let mut generics = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expect_param = false,
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                _ => {}
            }
        }
    }
    (name, generics)
}

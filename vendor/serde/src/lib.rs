//! Offline stand-in for `serde`. This workspace only *derives*
//! `Serialize`/`Deserialize` (taint tags describe themselves through the
//! hand-rolled wire codecs in `dista-taint`; nothing routes through a
//! serde serializer), so the traits here are markers and the derives
//! emit empty impls. If a future change needs real serde data-model
//! plumbing, replace this vendored crate with the real one.

// Vendored stand-in: linted to compile cleanly, not to the host
// project's clippy bar.
#![allow(clippy::all)]

// Let the derive-emitted `impl serde::Serialize for ...` paths resolve
// inside this crate's own tests.
extern crate self as serde;

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided — no
/// borrowing deserializer exists in this stand-in).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for &str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize> Serialize for std::sync::Arc<T> {}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _ip: [u8; 4],
        _pid: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum Value {
        _A(String),
        _B { bytes: Vec<u8> },
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<T> {
        _inner: Option<T>,
    }

    fn assert_both<T: Serialize + Deserialize>() {}

    #[test]
    fn derives_compile_and_implement_markers() {
        assert_both::<Plain>();
        assert_both::<Value>();
        assert_both::<Generic<u8>>();
    }
}

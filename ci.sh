#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the full test suite.
# The workspace vendors all third-party crates, so everything runs offline.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo test -q"
cargo test -q --offline

echo "CI OK"

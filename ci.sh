#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the full test suite.
# The workspace vendors all third-party crates, so everything runs offline.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo doc -p dista-obs -p dista-taintmap -p dista-core -p dista-simnet -p dista-jre -p dista-netty --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc -p dista-obs -p dista-taintmap -p dista-core -p dista-simnet -p dista-jre -p dista-netty --no-deps --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> codec conformance + adversarial decode suites"
cargo test -q --offline -p dista-jre --test prop_codec
cargo test -q --offline -p dista-jre --test adversarial_decode

echo "==> telemetry suites (histogram merge bound, exporter goldens, span interop)"
cargo test -q --offline -p dista-obs --test merge_prop
cargo test -q --offline -p dista-obs --test exporters
cargo test -q --offline --test telemetry_interop

echo "==> reactor conformance (blocking shim vs reactor API) + timer wheel"
cargo test -q --offline -p dista-simnet --test reactor_conformance
cargo test -q --offline -p dista-simnet --test timer_wheel

echo "==> chaos suites under fixed seeds (incl. reshard crash-during-migration)"
for seed in 7 42 1337; do
    echo "    seed $seed"
    DISTA_CHAOS_SEED="$seed" cargo test -q --offline --test chaos
done
cargo test -q --offline -p dista-taintmap --test prop_chaos

echo "==> migration + compaction suites (torn WAL headers, torn snapshots, restart-cost gate)"
cargo test -q --offline -p dista-taintmap --test reshard_compaction
cargo test -q --offline -p dista-taintmap --test sharded_endpoint

echo "==> split-while-loaded gate: 1M distinct gids across a crashing migration, three seeds"
for seed in 7 42 1337; do
    echo "    reshard seed $seed"
    DISTA_RESHARD_SEED="$seed" cargo test -q --release --offline -p dista-taintmap \
        --test prop_chaos split_one_million_gids_without_loss -- --ignored
done

echo "==> claim_global_taints --smoke"
cargo run -p dista-bench --bin claim_global_taints --release --offline -- --smoke

echo "==> claim_net_overhead --smoke --metrics (wire-expansion band check)"
cargo run -p dista-bench --bin claim_net_overhead --release --offline -- --smoke --metrics

echo "==> claim_net_overhead --chaos --smoke (degraded-mode soundness check)"
cargo run -p dista-bench --bin claim_net_overhead --release --offline -- --chaos --smoke

echo "==> boundary_codec --smoke (wire bytes bit-identical to reference codec)"
cargo run -p dista-bench --bin boundary_codec --release --offline -- --smoke

echo "==> boundary_codec --wire-v2 (v2 <=1.2x expansion at 1% taint, >=2x retained throughput)"
rm -f BENCH_wire_v2.json
cargo run -p dista-bench --bin boundary_codec --release --offline -- \
    --wire-v2 --out BENCH_wire_v2.json
test -s BENCH_wire_v2.json
grep -q '"expansion_ok": true' BENCH_wire_v2.json
grep -q '"throughput_ok": true' BENCH_wire_v2.json
rm -f BENCH_wire_v2.json

echo "==> cluster_load --smoke (>=10k concurrent connections, p99 gate)"
rm -f BENCH_cluster_load_smoke.json
cargo run -p dista-bench --bin cluster_load --release --offline -- \
    --smoke --gate-p99-us 2000000 --out BENCH_cluster_load_smoke.json
test -s BENCH_cluster_load_smoke.json
grep -q '"peak_concurrent": 1[0-9][0-9][0-9][0-9]' BENCH_cluster_load_smoke.json
if grep -q '"throughput_crossings_per_sec": 0.0' BENCH_cluster_load_smoke.json; then
    echo "FAIL: zero throughput in BENCH_cluster_load_smoke.json"
    exit 1
fi
rm -f BENCH_cluster_load_smoke.json

echo "==> cluster_load --smoke --wire v2 (adaptive v2 frames at load)"
rm -f BENCH_cluster_load_v2.json
cargo run -p dista-bench --bin cluster_load --release --offline -- \
    --smoke --wire v2 --gate-p99-us 2000000 --out BENCH_cluster_load_v2.json
test -s BENCH_cluster_load_v2.json
grep -q '"wire_protocol": "v2"' BENCH_cluster_load_v2.json
rm -f BENCH_cluster_load_v2.json

echo "==> cluster_load --smoke --reshard (live migration throughput + lossless sample + compaction gates)"
rm -f BENCH_cluster_load_reshard.json
cargo run -p dista-bench --bin cluster_load --release --offline -- \
    --smoke --reshard --gate-p99-us 2000000 --out BENCH_cluster_load_reshard.json
test -s BENCH_cluster_load_reshard.json
grep -q '"reshard"' BENCH_cluster_load_reshard.json
grep -q '"splits_completed": 2' BENCH_cluster_load_reshard.json
grep -q '"sample_mismatches": 0' BENCH_cluster_load_reshard.json
grep -Eq '"migration_records_per_sec": [1-9]' BENCH_cluster_load_reshard.json
rm -f BENCH_cluster_load_reshard.json

echo "==> cluster_load --smoke --scrape (live telemetry A/B: overhead + scrape health gates)"
rm -f BENCH_cluster_load_scrape.json
cargo run -p dista-bench --bin cluster_load --release --offline -- \
    --smoke --wire v2 --scrape --out BENCH_cluster_load_scrape.json
test -s BENCH_cluster_load_scrape.json
grep -q '"wire_protocol": "v2"' BENCH_cluster_load_scrape.json
grep -Eq '"scrapes": ([2-9]|[1-9][0-9]+)' BENCH_cluster_load_scrape.json
grep -q '"scrape_counters_monotone": true' BENCH_cluster_load_scrape.json
grep -q '"parse_errors": 0' BENCH_cluster_load_scrape.json
grep -q '"cost_attribution"' BENCH_cluster_load_scrape.json
rm -f BENCH_cluster_load_scrape.json

echo "==> pipeline scenario + chaos suites under fixed seeds"
cargo test -q --offline --test pipeline_scenarios
for seed in 7 42 1337; do
    echo "    pipeline seed $seed"
    DISTA_CHAOS_SEED="$seed" cargo test -q --offline --test pipeline_chaos
done

echo "==> pipeline --smoke (cross-system load: throughput + p99 per scenario, detection gates)"
rm -f BENCH_pipeline_smoke.json
cargo run -p dista-bench --bin pipeline --release --offline -- \
    --smoke --out BENCH_pipeline_smoke.json
test -s BENCH_pipeline_smoke.json
grep -q '"systems_spanned": 3' BENCH_pipeline_smoke.json
grep -q '"exact_traces": true' BENCH_pipeline_smoke.json
grep -q '"cross_tenant_hits_clean": 0' BENCH_pipeline_smoke.json
grep -q '"misroute_hits": 1' BENCH_pipeline_smoke.json
grep -Eq '"throughput_records_per_sec": [1-9]' BENCH_pipeline_smoke.json
grep -Eq '"throughput_messages_per_sec": [1-9]' BENCH_pipeline_smoke.json
rm -f BENCH_pipeline_smoke.json

echo "CI OK"

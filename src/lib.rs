//! # dista-repro — umbrella crate for the DisTA reproduction
//!
//! Re-exports every layer of the workspace so examples, integration
//! tests and downstream users can depend on one crate. See `README.md`
//! for the architecture overview and `DESIGN.md` for the experiment
//! index.
//!
//! * [`core`] — the DisTA facade ([`core::Cluster`], the instrumented
//!   method registry, launch-script config).
//! * [`taint`] — Phosphor-equivalent intra-node taint engine.
//! * [`jre`] — the instrumented mini-JRE I/O classes.
//! * [`simnet`] — the simulated OS (network, file system, metrics).
//! * [`taintmap`] — the Taint Map service.
//! * [`netty`] — the Netty-like framework.
//! * [`zookeeper`], [`mapreduce`], [`activemq`], [`rocketmq`],
//!   [`hbase`] — the five mini distributed systems of the evaluation.
//! * [`microbench`] — the 30-case micro benchmark.
//!
//! # Example
//!
//! ```rust
//! use dista_repro::core::{Cluster, Mode};
//! use dista_repro::taint::TagValue;
//!
//! let cluster = Cluster::builder(Mode::Dista).nodes("node", 2).build()?;
//! let taint = cluster.vm(0).store().mint_source_taint(TagValue::str("secret"));
//! let gid = cluster.vm(0).taint_map().unwrap().global_id_for(taint)?;
//! let resolved = cluster.vm(1).taint_map().unwrap().taint_for(gid)?;
//! assert_eq!(cluster.vm(1).store().tag_values(resolved), vec!["secret".to_string()]);
//! # cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The DisTA public API (facade crate).
pub mod core {
    pub use dista_core::*;
}

/// Intra-node taint engine.
pub mod taint {
    pub use dista_taint::*;
}

/// Instrumented mini-JRE.
pub mod jre {
    pub use dista_jre::*;
}

/// Simulated OS substrate.
pub mod simnet {
    pub use dista_simnet::*;
}

/// Taint Map service.
pub mod taintmap {
    pub use dista_taintmap::*;
}

/// Netty-like framework.
pub mod netty {
    pub use dista_netty::*;
}

/// Mini ZooKeeper.
pub mod zookeeper {
    pub use dista_zookeeper::*;
}

/// Mini MapReduce/Yarn.
pub mod mapreduce {
    pub use dista_mapreduce::*;
}

/// Mini ActiveMQ.
pub mod activemq {
    pub use dista_activemq::*;
}

/// Mini RocketMQ.
pub mod rocketmq {
    pub use dista_rocketmq::*;
}

/// Mini HBase.
pub mod hbase {
    pub use dista_hbase::*;
}

/// The 30-case micro benchmark.
pub mod microbench {
    pub use dista_microbench::*;
}

/// Telemetry: metrics registry, flight recorder, provenance, exporters.
pub mod obs {
    pub use dista_obs::*;
}

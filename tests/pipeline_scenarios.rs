//! Cross-system pipeline scenarios: end-to-end soundness + precision
//! across application boundaries, mirroring the Table II/III
//! methodology of `tests/end_to_end_scenarios.rs` at pipeline scale.
//!
//! The flagship flow is ingest → store → analyze: RocketMQ producers
//! mint per-record taints, a bridge consumer writes them into HBase,
//! and a MapReduce WordCount job scans the table and sinks the result.
//! Soundness: every record tag reaches the final sink. Precision: the
//! final sink sees *only* record tags plus the job's own
//! `application_*` source. Phosphor (local-only tracking) is the
//! negative control, and Original is the no-tracking baseline.

use dista_bench::pipeline::{self, IngestConfig, TenantConfig};
use dista_core::{Mode, WireProtocol};

fn is_expected_at_final_sink(tag: &str) -> bool {
    tag.starts_with("record:") || tag.starts_with("application_")
}

#[test]
fn dista_v2_pipeline_is_sound_precise_and_exactly_traced() {
    let outcome = pipeline::run_ingest(&IngestConfig::new(Mode::Dista)).unwrap();
    assert_eq!(outcome.rows_scanned, 6, "every record landed in HBase");
    assert_eq!(outcome.retries, 0, "clean run needed no retries");
    assert_eq!(outcome.pending_after, 0);

    // Soundness: all six record tags survive two application boundaries.
    for tag in &outcome.record_tags {
        assert!(
            outcome.sink_tags.contains(tag),
            "soundness: {tag} missing at the MapReduce sink {:?}",
            outcome.sink_tags
        );
    }
    // Precision: nothing else arrives (the job's own application id is
    // the only non-record source feeding the sink).
    for tag in &outcome.sink_tags {
        assert!(
            is_expected_at_final_sink(tag),
            "precision: unexpected tag {tag} at the final sink"
        );
    }
    assert!(
        outcome
            .sink_tags
            .iter()
            .any(|t| t.starts_with("application_")),
        "the job's own source reached its sink"
    );

    // Every record registered a Global ID by crossing the wire.
    assert!(outcome.record_gids.iter().all(|&g| g != 0));

    // One provenance call renders one hop-by-hop trace spanning all
    // three systems — exact on the homogeneous v2 wire.
    for &gid in &outcome.record_gids {
        let trace = outcome.cluster.provenance_stitched(gid);
        assert!(trace.exact, "v2 wire pairs every crossing exactly");
        let systems = pipeline::systems_spanned(&trace);
        assert!(systems.len() >= 3, "gid {gid} spanned only {systems:?}");
        assert!(systems.contains(&"rocketmq".to_string()), "{systems:?}");
        assert!(systems.contains(&"hbase".to_string()), "{systems:?}");
        assert!(systems.contains(&"mapreduce".to_string()), "{systems:?}");
        assert!(trace.pending_all_resolved());
        let rendered = format!("{trace}");
        assert!(
            rendered.contains("mq-producer"),
            "trace narrative names the minting node:\n{rendered}"
        );
    }
}

#[test]
fn v1_wire_still_spans_three_systems_via_inference() {
    let mut cfg = IngestConfig::new(Mode::Dista);
    cfg.wire = WireProtocol::V1;
    let outcome = pipeline::run_ingest(&cfg).unwrap();
    for tag in &outcome.record_tags {
        assert!(outcome.sink_tags.contains(tag), "soundness on v1: {tag}");
    }
    let gid = outcome.record_gids[0];
    assert_ne!(gid, 0);
    let trace = outcome.cluster.provenance_stitched(gid);
    assert!(
        !trace.exact,
        "v1 has no span annotations; stitching falls back to inference"
    );
    let systems = pipeline::systems_spanned(&trace);
    assert!(systems.len() >= 3, "inferred trace spans {systems:?}");
}

#[test]
fn phosphor_drops_tags_at_the_first_application_boundary() {
    let outcome = pipeline::run_ingest(&IngestConfig::new(Mode::Phosphor)).unwrap();
    // The pipeline itself still works…
    assert_eq!(outcome.rows_scanned, 6);
    // …but no record tag survives to the final sink: local-only
    // tracking loses the taints at the producer→broker crossing.
    assert!(
        !outcome.sink_tags.iter().any(|t| t.starts_with("record:")),
        "phosphor must not carry taints across nodes: {:?}",
        outcome.sink_tags
    );
    // Even the application id is lost: it round-trips client → RM →
    // client, and Phosphor drops taints at every node boundary.
    assert!(outcome.sink_tags.is_empty(), "{:?}", outcome.sink_tags);
    assert!(outcome.record_gids.iter().all(|&g| g == 0));
}

#[test]
fn original_mode_moves_the_data_with_zero_taint_machinery() {
    let outcome = pipeline::run_ingest(&IngestConfig::new(Mode::Original)).unwrap();
    assert_eq!(outcome.rows_scanned, 6);
    assert!(outcome.sink_tags.is_empty());
    assert!(outcome.record_gids.iter().all(|&g| g == 0));
}

/// Pins the empty-payload audit of the five system crates: a
/// zero-length body crosses every hop without inventing spurious tags,
/// and the sinks still fire (untainted) rather than being swallowed.
#[test]
fn empty_payloads_cross_system_boundaries_without_spurious_tags() {
    use dista_core::Cluster;
    use dista_rocketmq::{BrokerServer, MqConsumer, MqProducer, NameServer, CONSUMER_CLASS};
    use dista_simnet::NodeAddr;
    use dista_taint::{MethodDesc, SourceSinkSpec, TaintedBytes};

    let mut spec = SourceSinkSpec::new();
    spec.add_sink(MethodDesc::new(CONSUMER_CLASS, "consumeMessage"));
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("n", 3)
        .spec(spec)
        .build()
        .unwrap();
    dista_rocketmq::seed_config(cluster.vm(1), "empty-broker");
    let ns = NameServer::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 9876)).unwrap();
    let broker = BrokerServer::start(
        cluster.vm(1),
        NodeAddr::new([10, 0, 0, 2], 10911),
        &["EmptyTopic"],
    )
    .unwrap();
    broker.register_with(ns.addr()).unwrap();
    let producer = MqProducer::start(cluster.vm(2), ns.addr(), "EmptyTopic").unwrap();
    producer
        .send("EmptyTopic", TaintedBytes::from_plain(Vec::new()))
        .unwrap();
    let consumer = MqConsumer::start(cluster.vm(2), ns.addr(), "EmptyTopic").unwrap();
    let msg = consumer.pull_blocking().unwrap();
    assert_eq!(msg.body.len(), 0, "empty body survives the broker hop");
    let report = cluster.vm(2).sink_report();
    let events = report.at(&format!("{CONSUMER_CLASS}.consumeMessage"));
    assert_eq!(events.len(), 1, "the sink still fires on an empty pull");
    assert!(events[0].tags.is_empty(), "no spurious tags: {events:?}");
    producer.close();
    consumer.close();
    broker.shutdown();
    ns.shutdown();
    cluster.shutdown();
}

#[test]
fn clean_multi_tenant_run_has_zero_cross_tenant_hits() {
    let outcome = pipeline::run_tenants(&TenantConfig::new(Mode::Dista)).unwrap();
    assert_eq!(outcome.hits, vec![], "clean run must not report leaks");
    assert_eq!(outcome.received, outcome.expected);
    assert_eq!(outcome.pending_after, 0);
}

#[test]
fn seeded_misroute_is_caught_and_attributed_to_the_right_tenants() {
    let seed = 1234;
    let mut cfg = TenantConfig::new(Mode::Dista);
    cfg.misroute_seed = Some(seed);
    let outcome = pipeline::run_tenants(&cfg).unwrap();
    let (from, msg, to) = pipeline::misroute_of(seed, cfg.tenants, cfg.messages);
    assert_ne!(from, to);
    assert_eq!(outcome.received, outcome.expected);
    assert_eq!(
        outcome.hits.len(),
        1,
        "exactly one leak, exactly one hit: {:?}",
        outcome.hits
    );
    let hit = &outcome.hits[0];
    assert_eq!((hit.from_tenant, hit.to_tenant), (from, to));
    assert_eq!(hit.tag, format!("tenant:{from}:msg:{msg}"));
    assert_ne!(hit.gid, 0, "the leaked taint crossed the wire");

    // Provenance attributes the leak end to end: minted on the victim
    // tenant's producer, sunk on the other tenant's consumer.
    let trace = outcome.cluster.provenance_stitched(hit.gid);
    let nodes = trace.nodes();
    assert!(
        nodes.contains(&format!("amq-prod-{from}").as_str()),
        "{nodes:?}"
    );
    assert!(
        nodes.contains(&format!("amq-cons-{to}").as_str()),
        "{nodes:?}"
    );
}

#[test]
fn phosphor_misses_the_misroute_dista_catches() {
    let mut cfg = TenantConfig::new(Mode::Phosphor);
    cfg.misroute_seed = Some(1234);
    let outcome = pipeline::run_tenants(&cfg).unwrap();
    // The message is still misdelivered (counts shift) but the taint
    // evidence is gone — the detection target needs distributed taints.
    assert_eq!(outcome.received, outcome.expected);
    assert_eq!(outcome.hits, vec![], "{:?}", outcome.hits);
}

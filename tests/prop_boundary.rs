//! Property-based end-to-end tests of the instrumented boundary: for
//! arbitrary payloads, taint spans, fragmentation and Global ID widths,
//! the bytes and the per-byte taint assignment survive the trip exactly.

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{InputStream, OutputStream, ServerSocket, Socket};
use dista_repro::simnet::{FaultConfig, NodeAddr};
use dista_repro::taint::{Payload, TagValue, Taint, TaintedBytes};
use proptest::prelude::*;

/// Spans of (byte value, tag id or none, run length).
type Spans = Vec<(u8, Option<u8>, usize)>;

fn spans_strategy() -> impl Strategy<Value = Spans> {
    prop::collection::vec((any::<u8>(), prop::option::of(0u8..6), 1usize..64), 1..12)
}

fn run_roundtrip(spans: &Spans, chunk: usize, gid_width: usize) -> (Vec<String>, Vec<String>) {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("prop", 2)
        .gid_width(gid_width)
        .build()
        .unwrap();
    cluster.net().set_faults(FaultConfig {
        max_read_chunk: chunk,
        ..Default::default()
    });
    let (vm1, vm2) = (cluster.vm(0).clone(), cluster.vm(1).clone());

    // Build the payload with per-span taints.
    let mut payload = TaintedBytes::new();
    let mut expected_per_byte: Vec<Option<u8>> = Vec::new();
    for (byte, tag, len) in spans {
        let taint = match tag {
            Some(t) => vm1
                .store()
                .mint_source_taint(TagValue::str(format!("tag{t}"))),
            None => Taint::EMPTY,
        };
        payload.extend_uniform(&vec![*byte; *len], taint);
        expected_per_byte.extend(std::iter::repeat_n(*tag, *len));
    }
    let total = payload.len();
    let expected_bytes = payload.data().to_vec();

    let server = ServerSocket::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 99)).unwrap();
    let reader = std::thread::spawn(move || {
        let conn = server.accept().unwrap();
        conn.input_stream().read_exact(total).unwrap()
    });
    let client = Socket::connect(&vm1, NodeAddr::new([10, 0, 0, 2], 99)).unwrap();
    client
        .output_stream()
        .write(&Payload::Tainted(payload))
        .unwrap();
    let got = reader.join().unwrap().into_tainted();

    assert_eq!(got.data(), expected_bytes, "byte fidelity");
    // Per-byte taint fidelity: map each received byte's tag set back to
    // the span tag that produced it.
    let mut got_tags = Vec::with_capacity(total);
    let mut want_tags = Vec::with_capacity(total);
    for (i, want) in expected_per_byte.iter().enumerate() {
        let tags = vm2.store().tag_values(got.taint_at(i).unwrap());
        got_tags.push(tags.join(","));
        want_tags.push(match want {
            Some(t) => format!("tag{t}"),
            None => String::new(),
        });
    }
    cluster.shutdown();
    (got_tags, want_tags)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary taint spans survive arbitrary fragmentation, byte for
    /// byte, under every Global ID width.
    #[test]
    fn boundary_roundtrip_is_exact(
        spans in spans_strategy(),
        chunk in prop_oneof![Just(1usize), Just(3), Just(7), Just(usize::MAX)],
        gid_width in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let (got, want) = run_roundtrip(&spans, chunk, gid_width);
        prop_assert_eq!(got, want);
    }
}

//! Wire-propagated trace-context interop: a 3-VM relay under the v2
//! annotation frames yields *exact* span-built provenance, and the
//! trace is flagged exact versus the gid-matching reconstruction a
//! v1-only cluster falls back to. Mixed clusters with v1 stragglers
//! keep reconstructing — they just lose the exactness flag.

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{InputStream, OutputStream, ServerSocket, Socket, WireProtocol};
use dista_repro::obs::{Hop, ObsConfig};
use dista_repro::simnet::NodeAddr;
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

/// Drives tainted bytes n1 → n2 → n3 over two socket hops and returns
/// the Global ID the taint registered under.
fn relay_secret(cluster: &Cluster) -> u32 {
    let (src, relay, sink) = (cluster.vm(0), cluster.vm(1), cluster.vm(2));

    let relay_server = ServerSocket::bind(relay, NodeAddr::new([10, 0, 0, 2], 91)).unwrap();
    let sink_server = ServerSocket::bind(sink, NodeAddr::new([10, 0, 0, 3], 91)).unwrap();
    let src_out = Socket::connect(src, relay_server.local_addr()).unwrap();
    let relay_in = relay_server.accept().unwrap();
    let relay_out = Socket::connect(relay, sink_server.local_addr()).unwrap();
    let sink_in = sink_server.accept().unwrap();

    let secret = src.taint_source(TagValue::str("secret"));
    src_out
        .output_stream()
        .write(&Payload::Tainted(TaintedBytes::uniform(
            b"relayed!",
            secret,
        )))
        .unwrap();
    let relayed = relay_in.input_stream().read_exact(8).unwrap();
    relay_out.output_stream().write(&relayed).unwrap();
    let received = sink_in.input_stream().read_exact(8).unwrap();
    let taint = received.taint_union(sink.store());
    assert!(sink.taint_sink("LOG.info", taint), "taint reached the sink");

    src.taint_map()
        .unwrap()
        .cached_gid_for(secret)
        .expect("taint registered on first crossing")
        .0
}

fn crossing_spans(trace: &dista_repro::obs::ProvenanceTrace) -> Vec<u64> {
    trace
        .hops
        .iter()
        .filter_map(|h| match h {
            Hop::Crossed { span, .. } => Some(*span),
            _ => None,
        })
        .collect()
}

#[test]
fn all_v2_relay_builds_exact_span_trace() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("n", 3)
        .wire_protocol(WireProtocol::V2)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let gid = relay_secret(&cluster);

    let exact = cluster.provenance(gid);
    assert!(
        exact.exact,
        "every crossing span-paired under v2 annotations: {exact}"
    );
    assert_eq!(exact.crossings(), 2, "{exact}");
    assert_eq!(exact.nodes(), vec!["n1", "n2", "n3"]);
    let spans = crossing_spans(&exact);
    assert_eq!(spans.len(), 2);
    assert!(
        spans.iter().all(|s| *s != 0),
        "both crossings carry wire-minted span ids: {spans:?}"
    );
    assert_ne!(spans[0], spans[1], "each crossing mints its own span");

    // The span-built trace must agree with (and be flagged exact
    // against) the gid-matching reconstruction on this unambiguous
    // path — the annotations change confidence, not the story.
    let inferred = cluster.provenance_inferred(gid);
    assert!(!inferred.exact, "inferred view never claims exactness");
    assert_eq!(exact.hops, inferred.hops);
    cluster.shutdown();
}

#[test]
fn negotiated_cluster_matches_pinned_v2_exactness() {
    // Negotiate everywhere settles every hop on v2, so the annotation
    // frames flow exactly as in the pinned-v2 cluster.
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("n", 3)
        .wire_protocol(WireProtocol::Negotiate)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let gid = relay_secret(&cluster);
    let trace = cluster.provenance(gid);
    assert!(trace.exact, "{trace}");
    assert_eq!(trace.crossings(), 2);
    cluster.shutdown();
}

#[test]
fn v1_straggler_relay_still_reconstructs_without_exactness() {
    // The relay node never upgraded: both its hops fall back to v1, no
    // annotation frames ship, and provenance degrades to gid-matching
    // reconstruction — complete, but not exact.
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("n", 3)
        .wire_protocol(WireProtocol::Negotiate)
        .node_wire_protocol("n2", WireProtocol::V1)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let gid = relay_secret(&cluster);

    let trace = cluster.provenance(gid);
    assert!(!trace.exact, "a v1 hop cannot be span-paired: {trace}");
    assert_eq!(trace.crossings(), 2, "reconstruction still sees both hops");
    assert_eq!(trace.nodes(), vec!["n1", "n2", "n3"]);
    assert_eq!(trace.sinks(), vec![("n3", "LOG.info")]);
    assert!(
        crossing_spans(&trace).iter().all(|s| *s == 0),
        "v1 crossings carry no span ids"
    );
    cluster.shutdown();
}

#[test]
fn partially_upgraded_relay_keeps_both_hops() {
    // Only the second hop speaks v2 (n1 is the straggler): the first
    // crossing is inferred, the second is span-paired, and the combined
    // trace is complete but not exact.
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("n", 3)
        .wire_protocol(WireProtocol::Negotiate)
        .node_wire_protocol("n1", WireProtocol::V1)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let gid = relay_secret(&cluster);

    let trace = cluster.provenance(gid);
    assert!(!trace.exact, "one inferred hop breaks exactness: {trace}");
    assert_eq!(trace.crossings(), 2);
    let spans = crossing_spans(&trace);
    assert_eq!(spans[0], 0, "v1 first hop has no span");
    assert_ne!(spans[1], 0, "v2 second hop minted a crossing span");
    cluster.shutdown();
}

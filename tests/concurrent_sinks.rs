//! SinkRecorder and flight-recorder behaviour under concurrency: eight
//! threads hammer sinks on one VM. The sink report must contain every
//! event exactly once and keep each thread's events in its program
//! order; flight-recorder sequence numbers must be unique and per-thread
//! monotonic.

use std::sync::Arc;

use dista_repro::jre::{Mode, Vm};
use dista_repro::obs::{ObsConfig, ObsEventKind, Observability};
use dista_repro::simnet::SimNet;
use dista_repro::taint::TagValue;

const THREADS: usize = 8;
const HITS_PER_THREAD: usize = 50;

#[test]
fn eight_threads_hitting_sinks_keep_the_report_consistent() {
    let net = SimNet::new();
    let obs = Observability::with_registry(ObsConfig::default(), net.registry().clone());
    let vm = Arc::new(
        Vm::builder("hot", &net)
            .mode(Mode::Phosphor)
            .observability(obs)
            .build()
            .unwrap(),
    );

    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            let vm = Arc::clone(&vm);
            std::thread::spawn(move || {
                for i in 0..HITS_PER_THREAD {
                    let t = vm.taint_source(TagValue::str(format!("t{thread}-{i}")));
                    assert!(vm.taint_sink(&format!("sink.t{thread}"), t));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Every hit recorded exactly once, all of them tainted.
    let report = vm.sink_report();
    assert_eq!(report.events.len(), THREADS * HITS_PER_THREAD);
    assert_eq!(report.tainted_count(), THREADS * HITS_PER_THREAD);

    // Per-thread order: the i-th event of thread `k` carries tag
    // `tk-<i>` with i strictly increasing within the thread's slice.
    for thread in 0..THREADS {
        let sink = format!("sink.t{thread}");
        let prefix = format!("t{thread}-");
        let indices: Vec<usize> = report
            .events
            .iter()
            .filter(|e| e.sink == sink)
            .map(|e| {
                assert_eq!(e.tags.len(), 1, "one tag per hit");
                e.tags[0]
                    .strip_prefix(&prefix)
                    .expect("tag belongs to this thread's sink")
                    .parse()
                    .unwrap()
            })
            .collect();
        let want: Vec<usize> = (0..HITS_PER_THREAD).collect();
        assert_eq!(indices, want, "thread {thread} events in program order");
    }

    // Flight-recorder view: a mint + a hit per iteration, all seqs
    // unique (the shared clock never hands out duplicates).
    let events = vm.flight_recorder().events();
    assert_eq!(events.len(), 2 * THREADS * HITS_PER_THREAD);
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.dedup();
    assert_eq!(seqs.len(), events.len(), "no duplicate sequence numbers");
    let hit_count = events
        .iter()
        .filter(|e| matches!(e.kind, ObsEventKind::SinkHit { .. }))
        .count();
    assert_eq!(hit_count, THREADS * HITS_PER_THREAD);

    // And the metrics agree with the report.
    let dump = net.registry().snapshot();
    assert_eq!(
        dump.counter_total("sink_hits"),
        (THREADS * HITS_PER_THREAD) as u64
    );
    assert_eq!(
        dump.counter_total("sources_minted"),
        (THREADS * HITS_PER_THREAD) as u64
    );
}

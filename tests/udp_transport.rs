//! ActiveMQ's UDP transport end-to-end: a tainted message enters the
//! broker over UDP ingest and reaches a TCP consumer intact.

use dista_repro::activemq::{send_udp, Broker, Consumer, CONSUMER_CLASS, PRODUCER_CLASS};
use dista_repro::core::{Cluster, Mode};
use dista_repro::simnet::NodeAddr;
use dista_repro::taint::{MethodDesc, SourceSinkSpec, TagValue, TaintedBytes};

#[test]
fn udp_ingest_carries_taints_to_tcp_consumer() {
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(PRODUCER_CLASS, "createTextMessage"))
        .add_sink(MethodDesc::new(CONSUMER_CLASS, "receive"));
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("amq", 3)
        .spec(spec)
        .build()
        .unwrap();
    let broker = Broker::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 61616)).unwrap();
    let udp = broker
        .start_udp_listener(NodeAddr::new([10, 0, 0, 1], 61617))
        .unwrap();
    let consumer = Consumer::subscribe(cluster.vm(2), broker.addr(), "udp-q").unwrap();

    let producer_vm = cluster.vm(1);
    let taint = producer_vm
        .store()
        .mint_source_taint(TagValue::str("udp-message"));
    send_udp(
        producer_vm,
        NodeAddr::new([10, 0, 0, 2], 61617),
        udp,
        "udp-q",
        TaintedBytes::uniform(b"sent over udp", taint),
    )
    .unwrap();

    let message = consumer.receive().unwrap();
    assert_eq!(message.body.data(), b"sent over udp");
    assert_eq!(
        cluster
            .vm(2)
            .store()
            .tag_values(message.taint(cluster.vm(2))),
        vec!["udp-message".to_string()]
    );
    consumer.close();
    broker.shutdown();
    cluster.shutdown();
}

#[test]
fn phosphor_udp_ingest_loses_taints() {
    let cluster = Cluster::builder(Mode::Phosphor)
        .nodes("amq", 3)
        .build()
        .unwrap();
    let broker = Broker::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 61616)).unwrap();
    let udp = broker
        .start_udp_listener(NodeAddr::new([10, 0, 0, 1], 61617))
        .unwrap();
    let consumer = Consumer::subscribe(cluster.vm(2), broker.addr(), "q").unwrap();
    let producer_vm = cluster.vm(1);
    let taint = producer_vm.store().mint_source_taint(TagValue::str("gone"));
    send_udp(
        producer_vm,
        NodeAddr::new([10, 0, 0, 2], 61617),
        udp,
        "q",
        TaintedBytes::uniform(b"plain", taint),
    )
    .unwrap();
    let message = consumer.receive().unwrap();
    assert!(message.taint(cluster.vm(2)).is_empty());
    consumer.close();
    broker.shutdown();
    cluster.shutdown();
}

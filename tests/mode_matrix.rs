//! The full Table-II mode matrix: every micro-benchmark case (30
//! inter-node data-flow shapes) executed under all three tracking modes.
//!
//! This is the soundness/precision lock for the boundary wrappers and
//! the run-length shadow representation behind them:
//!
//! * **DisTA** must be sound *and* precise on every case — `check()` at
//!   node 1 observes exactly `{Data1, Data2}`, never a dropped tag,
//!   never an invented one.
//! * **Phosphor** (the Fig.-4 baseline) loses exactly the inter-node
//!   taints at the JNI boundary: intra-node tracking still works on the
//!   sender, but nothing survives the crossing, so `check()` observes
//!   no tags at all.
//! * **Original** (uninstrumented) reports nothing anywhere.
//!
//! In all three modes the payload bytes themselves must round-trip
//! unchanged — tracking must never corrupt data.

use dista_repro::microbench::{all_cases, run_case, Mode, DATA1_TAG, DATA2_TAG};
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

const SIZE: usize = 64;
const MODES: [Mode; 3] = [Mode::Original, Mode::Phosphor, Mode::Dista];

/// One row of the matrix: a case name, its per-mode observed tags, and
/// the per-mode delivered data bytes for the differential check.
struct MatrixRow {
    name: &'static str,
    tags_by_mode: Vec<(Mode, Vec<String>, bool)>,
    delivered_by_mode: Vec<(Mode, Vec<u8>)>,
}

fn run_matrix() -> Vec<MatrixRow> {
    all_cases()
        .iter()
        .map(|case| {
            let mut tags_by_mode = Vec::new();
            let mut delivered_by_mode = Vec::new();
            for &mode in &MODES {
                let result = run_case(case.as_ref(), mode, SIZE).unwrap_or_else(|e| {
                    panic!("case {} failed to run in {mode:?}: {e}", case.name())
                });
                tags_by_mode.push((mode, result.tags_at_check, result.data_ok));
                delivered_by_mode.push((mode, result.delivered));
            }
            MatrixRow {
                name: case.name(),
                tags_by_mode,
                delivered_by_mode,
            }
        })
        .collect()
}

#[test]
fn matrix_covers_all_thirty_cases_in_three_modes() {
    let rows = run_matrix();
    assert_eq!(rows.len(), 30, "Table II has 30 cases");
    let cells: usize = rows.iter().map(|r| r.tags_by_mode.len()).sum();
    assert_eq!(cells, 90, "30 cases x 3 modes");
}

#[test]
fn dista_is_sound_and_precise_on_every_case() {
    let expected = vec![DATA1_TAG.to_string(), DATA2_TAG.to_string()];
    let mut failures = Vec::new();
    for row in run_matrix() {
        for (mode, tags, data_ok) in &row.tags_by_mode {
            if *mode != Mode::Dista {
                continue;
            }
            if !*data_ok {
                failures.push(format!("{}: data corrupted in Dista mode", row.name));
            }
            if tags != &expected {
                failures.push(format!(
                    "{}: Dista observed {tags:?}, want {expected:?}",
                    row.name
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "unsound/imprecise cases:\n{failures:#?}"
    );
}

#[test]
fn phosphor_loses_exactly_the_inter_node_taints() {
    let mut failures = Vec::new();
    for row in run_matrix() {
        for (mode, tags, data_ok) in &row.tags_by_mode {
            if *mode != Mode::Phosphor {
                continue;
            }
            if !*data_ok {
                failures.push(format!("{}: data corrupted in Phosphor mode", row.name));
            }
            // The baseline drops taints at the JNI boundary, so the
            // inter-node flow arrives untainted — nothing is reported.
            if !tags.is_empty() {
                failures.push(format!(
                    "{}: Phosphor observed {tags:?}, want no surviving tags",
                    row.name
                ));
            }
        }
    }
    assert!(failures.is_empty(), "baseline anomalies:\n{failures:#?}");
}

#[test]
fn original_reports_nothing_on_every_case() {
    let mut failures = Vec::new();
    for row in run_matrix() {
        for (mode, tags, data_ok) in &row.tags_by_mode {
            if *mode != Mode::Original {
                continue;
            }
            if !*data_ok {
                failures.push(format!("{}: data corrupted in Original mode", row.name));
            }
            if !tags.is_empty() {
                failures.push(format!(
                    "{}: Original observed {tags:?}, want nothing",
                    row.name
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "untracked-mode anomalies:\n{failures:#?}"
    );
}

/// Differential check across the tracking modes: for every one of the
/// 30 micro-benchmark cases, the payload *data bytes* delivered back to
/// node 1 are byte-for-byte identical in Original, Phosphor, and DisTA
/// modes. Wire interleaving, the Taint Map round trips, the pooled
/// zero-copy codec — none of it may perturb a single delivered byte
/// relative to the uninstrumented run.
#[test]
fn delivered_bytes_identical_across_all_modes() {
    let mut failures = Vec::new();
    for row in run_matrix() {
        let baseline = row
            .delivered_by_mode
            .iter()
            .find(|(mode, _)| *mode == Mode::Original)
            .map(|(_, bytes)| bytes.clone())
            .expect("every case runs in Original mode");
        if baseline.is_empty() {
            failures.push(format!("{}: Original delivered no bytes", row.name));
        }
        for (mode, bytes) in &row.delivered_by_mode {
            if bytes != &baseline {
                let diff_at = bytes
                    .iter()
                    .zip(&baseline)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| bytes.len().min(baseline.len()));
                failures.push(format!(
                    "{}: {mode} delivered {} bytes vs Original {} (first divergence at {diff_at})",
                    row.name,
                    bytes.len(),
                    baseline.len(),
                ));
            }
        }
    }
    assert!(failures.is_empty(), "mode divergence:\n{failures:#?}");
}

/// Differential check across the wire protocols: for every one of the
/// 30 cases, a DisTA cluster pinned to v1, pinned to v2, or negotiating
/// delivers byte-for-byte identical data AND observes the identical tag
/// set at `check()`. The adaptive v2 framing (clean-frame opcodes,
/// run-length gid segments, per-frame widths) is a wire-level concern
/// only — it may never change what the application sees.
#[test]
fn delivered_bytes_identical_across_wire_protocols() {
    use dista_repro::microbench::{run_case_wire, WireProtocol};

    const PROTOCOLS: [WireProtocol; 3] =
        [WireProtocol::V1, WireProtocol::V2, WireProtocol::Negotiate];
    let mut failures = Vec::new();
    let mut rows = 0;
    for case in all_cases() {
        let mut baseline: Option<(Vec<u8>, Vec<String>)> = None;
        for proto in PROTOCOLS {
            let result = run_case_wire(case.as_ref(), Mode::Dista, SIZE, proto)
                .unwrap_or_else(|e| panic!("case {} failed under {proto:?}: {e}", case.name()));
            if !result.data_ok {
                failures.push(format!("{}: data corrupted under {proto:?}", case.name()));
            }
            let cell = (result.delivered, result.tags_at_check);
            match &baseline {
                None => baseline = Some(cell),
                Some(base) => {
                    if base != &cell {
                        failures.push(format!(
                            "{}: {proto:?} diverged from v1 (delivered {} vs {} bytes, \
                             tags {:?} vs {:?})",
                            case.name(),
                            cell.0.len(),
                            base.0.len(),
                            cell.1,
                            base.1,
                        ));
                    }
                }
            }
            rows += 1;
        }
    }
    assert_eq!(rows, 90, "30 cases x 3 wire protocols");
    assert!(failures.is_empty(), "protocol divergence:\n{failures:#?}");
}

/// The loss in Phosphor mode is *exactly* at the JNI boundary: on the
/// sending node, before any native crossing, intra-node tracking is
/// fully alive. This pins the "loses exactly inter-node taints" claim —
/// the baseline is not simply tracking nothing.
#[test]
fn phosphor_still_tracks_intra_node() {
    use dista_repro::core::{Cluster, Mode};

    let cluster = Cluster::builder(Mode::Phosphor)
        .nodes("node", 1)
        .build()
        .expect("single-node cluster");
    let vm = cluster.vm(0);
    let taint = vm.taint_source(TagValue::str(DATA1_TAG));
    let mut buf = TaintedBytes::uniform(b"local flow".to_vec(), taint);
    // Local slicing/splicing keeps the taint attached…
    let front = buf.drain_front(5);
    buf.extend_tainted(&front);
    let payload = Payload::Tainted(buf);
    let observed = payload.taint_union(vm.store());
    assert_eq!(
        vm.store().tag_values(observed),
        vec![DATA1_TAG.to_string()],
        "intra-node taint must survive in Phosphor mode"
    );
    cluster.shutdown();
}

/// Original mode must pay nothing for observability even when it is
/// switched on cluster-wide: the flight recorder stays disabled (its
/// event-building closure is never even evaluated, so no allocation
/// happens on the hot path), and none of the tracked-mode instrument
/// families ever count anything.
#[test]
fn original_mode_observability_is_a_strict_noop() {
    use dista_repro::core::{Cluster, Mode};
    use dista_repro::jre::{InputStream, OutputStream, ServerSocket, Socket};
    use dista_repro::obs::ObsConfig;
    use dista_repro::simnet::NodeAddr;

    let cluster = Cluster::builder(Mode::Original)
        .nodes("plain", 2)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    for vm in cluster.vms() {
        assert!(!vm.flight_recorder().is_enabled());
        // A disabled recorder must never evaluate the closure — this
        // panics if it does, and allocates nothing if it doesn't.
        vm.flight_recorder()
            .record_with(|| panic!("plain mode must not build events"));
    }

    // Drive real traffic and sink checks through the plain-mode stack.
    let server = ServerSocket::bind(cluster.vm(1), NodeAddr::new([10, 0, 0, 2], 95)).unwrap();
    let out = Socket::connect(cluster.vm(0), server.local_addr()).unwrap();
    let conn = server.accept().unwrap();
    let t = cluster.vm(0).taint_source(TagValue::str(DATA1_TAG));
    assert!(t.is_empty(), "plain mode mints nothing");
    out.output_stream()
        .write(&Payload::Tainted(TaintedBytes::uniform(b"plain", t)))
        .unwrap();
    let got = conn.input_stream().read_exact(5).unwrap();
    cluster
        .vm(1)
        .taint_sink("LOG.info", got.taint_union(cluster.vm(1).store()));

    assert!(cluster.obs_events().is_empty(), "no events in plain mode");
    let dump = cluster.metrics_dump();
    for family in [
        "sources_minted",
        "sink_hits",
        "boundary_data_bytes_out",
        "boundary_wire_bytes_out",
        "boundary_data_bytes_in",
        "boundary_wire_bytes_in",
        "taintmap_cache_hits",
        "taintmap_failovers",
    ] {
        assert_eq!(
            dump.counter_total(family),
            0,
            "{family} must stay silent in plain mode"
        );
    }
    cluster.shutdown();
}

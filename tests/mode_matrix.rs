//! The full Table-II mode matrix: every micro-benchmark case (30
//! inter-node data-flow shapes) executed under all three tracking modes.
//!
//! This is the soundness/precision lock for the boundary wrappers and
//! the run-length shadow representation behind them:
//!
//! * **DisTA** must be sound *and* precise on every case — `check()` at
//!   node 1 observes exactly `{Data1, Data2}`, never a dropped tag,
//!   never an invented one.
//! * **Phosphor** (the Fig.-4 baseline) loses exactly the inter-node
//!   taints at the JNI boundary: intra-node tracking still works on the
//!   sender, but nothing survives the crossing, so `check()` observes
//!   no tags at all.
//! * **Original** (uninstrumented) reports nothing anywhere.
//!
//! In all three modes the payload bytes themselves must round-trip
//! unchanged — tracking must never corrupt data.

use dista_repro::microbench::{all_cases, run_case, Mode, DATA1_TAG, DATA2_TAG};
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

const SIZE: usize = 64;
const MODES: [Mode; 3] = [Mode::Original, Mode::Phosphor, Mode::Dista];

/// One row of the matrix: a case name and its per-mode observed tags.
struct MatrixRow {
    name: &'static str,
    tags_by_mode: Vec<(Mode, Vec<String>, bool)>,
}

fn run_matrix() -> Vec<MatrixRow> {
    all_cases()
        .iter()
        .map(|case| {
            let tags_by_mode = MODES
                .iter()
                .map(|&mode| {
                    let result = run_case(case.as_ref(), mode, SIZE).unwrap_or_else(|e| {
                        panic!("case {} failed to run in {mode:?}: {e}", case.name())
                    });
                    (mode, result.tags_at_check, result.data_ok)
                })
                .collect();
            MatrixRow {
                name: case.name(),
                tags_by_mode,
            }
        })
        .collect()
}

#[test]
fn matrix_covers_all_thirty_cases_in_three_modes() {
    let rows = run_matrix();
    assert_eq!(rows.len(), 30, "Table II has 30 cases");
    let cells: usize = rows.iter().map(|r| r.tags_by_mode.len()).sum();
    assert_eq!(cells, 90, "30 cases x 3 modes");
}

#[test]
fn dista_is_sound_and_precise_on_every_case() {
    let expected = vec![DATA1_TAG.to_string(), DATA2_TAG.to_string()];
    let mut failures = Vec::new();
    for row in run_matrix() {
        for (mode, tags, data_ok) in &row.tags_by_mode {
            if *mode != Mode::Dista {
                continue;
            }
            if !*data_ok {
                failures.push(format!("{}: data corrupted in Dista mode", row.name));
            }
            if tags != &expected {
                failures.push(format!(
                    "{}: Dista observed {tags:?}, want {expected:?}",
                    row.name
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "unsound/imprecise cases:\n{failures:#?}"
    );
}

#[test]
fn phosphor_loses_exactly_the_inter_node_taints() {
    let mut failures = Vec::new();
    for row in run_matrix() {
        for (mode, tags, data_ok) in &row.tags_by_mode {
            if *mode != Mode::Phosphor {
                continue;
            }
            if !*data_ok {
                failures.push(format!("{}: data corrupted in Phosphor mode", row.name));
            }
            // The baseline drops taints at the JNI boundary, so the
            // inter-node flow arrives untainted — nothing is reported.
            if !tags.is_empty() {
                failures.push(format!(
                    "{}: Phosphor observed {tags:?}, want no surviving tags",
                    row.name
                ));
            }
        }
    }
    assert!(failures.is_empty(), "baseline anomalies:\n{failures:#?}");
}

#[test]
fn original_reports_nothing_on_every_case() {
    let mut failures = Vec::new();
    for row in run_matrix() {
        for (mode, tags, data_ok) in &row.tags_by_mode {
            if *mode != Mode::Original {
                continue;
            }
            if !*data_ok {
                failures.push(format!("{}: data corrupted in Original mode", row.name));
            }
            if !tags.is_empty() {
                failures.push(format!(
                    "{}: Original observed {tags:?}, want nothing",
                    row.name
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "untracked-mode anomalies:\n{failures:#?}"
    );
}

/// The loss in Phosphor mode is *exactly* at the JNI boundary: on the
/// sending node, before any native crossing, intra-node tracking is
/// fully alive. This pins the "loses exactly inter-node taints" claim —
/// the baseline is not simply tracking nothing.
#[test]
fn phosphor_still_tracks_intra_node() {
    use dista_repro::core::{Cluster, Mode};

    let cluster = Cluster::builder(Mode::Phosphor)
        .nodes("node", 1)
        .build()
        .expect("single-node cluster");
    let vm = cluster.vm(0);
    let taint = vm.taint_source(TagValue::str(DATA1_TAG));
    let mut buf = TaintedBytes::uniform(b"local flow".to_vec(), taint);
    // Local slicing/splicing keeps the taint attached…
    let front = buf.drain_front(5);
    buf.extend_tainted(&front);
    let payload = Payload::Tainted(buf);
    let observed = payload.taint_union(vm.store());
    assert_eq!(
        vm.store().tag_values(observed),
        vec![DATA1_TAG.to_string()],
        "intra-node taint must survive in Phosphor mode"
    );
    cluster.shutdown();
}

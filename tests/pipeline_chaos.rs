//! Chaos over the cross-system pipeline: a broker crash and Taint Map
//! shard crash land mid-pipeline, and the run must stay deterministic
//! (same seed → identical fault log and identical sink evidence) and
//! correct-or-pending-then-correct (degraded lookups resolve after the
//! heal; no stale or missing tags at the final sink).
//!
//! `ci.sh` runs this suite under several fixed `DISTA_CHAOS_SEED`s.

use dista_bench::pipeline::{self, IngestConfig, TenantConfig};
use dista_core::Mode;
use proptest::prelude::*;

fn env_seed() -> u64 {
    std::env::var("DISTA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The determinism + soundness witness of one chaotic ingest run.
#[derive(Debug, PartialEq)]
struct Witness {
    fault_log: Vec<String>,
    sink_reports: Vec<(String, Vec<String>)>,
    sink_tags: Vec<String>,
    rows_scanned: usize,
}

/// The job's `application_{id}` tag draws from a process-global
/// counter, so its numeric suffix differs between runs in one test
/// process; the witness compares the tag's class, not the id.
fn normalize_tag(tag: &str) -> String {
    if tag.starts_with("application_") {
        "application_*".to_string()
    } else {
        tag.to_string()
    }
}

fn chaotic_ingest(seed: u64) -> (Witness, pipeline::IngestOutcome) {
    let mut cfg = IngestConfig::new(Mode::Dista);
    cfg.chaos = Some(pipeline::broker_outage_plan(seed));
    let outcome = pipeline::run_ingest(&cfg).unwrap();
    // Standup polls (region-server registration, etc.) are wall-clock
    // paced, so the absolute step the store stage begins at can drift
    // between runs; the deterministic witness is the fault schedule
    // *relative to its first entry* — stage keying pins the crash to
    // the same workload instant and the heals to fixed step deltas.
    let log = outcome.cluster.net().fault_log();
    let base = log.first().map(|f| f.step).unwrap_or(0);
    let witness = Witness {
        fault_log: log
            .iter()
            .map(|f| format!("step +{}: {:?}", f.step - base, f.action))
            .collect(),
        sink_reports: outcome
            .cluster
            .sink_reports()
            .into_iter()
            .map(|(node, report)| {
                (
                    node,
                    report
                        .observed_tags()
                        .iter()
                        .map(|t| normalize_tag(t))
                        .collect(),
                )
            })
            .collect(),
        sink_tags: outcome.sink_tags.iter().map(|t| normalize_tag(t)).collect(),
        rows_scanned: outcome.rows_scanned,
    };
    (witness, outcome)
}

#[test]
fn broker_outage_mid_pipeline_heals_with_no_lost_or_stale_tags() {
    let (witness, outcome) = chaotic_ingest(env_seed());

    // The schedule actually bit: crash + heal both fired, and the
    // workload had to retry through the outage.
    assert!(
        witness.fault_log.iter().any(|f| f.contains("Isolate")),
        "{:?}",
        witness.fault_log
    );
    assert!(
        witness.fault_log.iter().any(|f| f.contains("Rejoin")),
        "{:?}",
        witness.fault_log
    );
    assert!(
        witness.fault_log.iter().any(|f| f.contains("CrashShard")),
        "{:?}",
        witness.fault_log
    );
    assert!(
        witness.fault_log.iter().any(|f| f.contains("RestartShard")),
        "{:?}",
        witness.fault_log
    );
    assert!(outcome.retries > 0, "the outage forced retries");

    // Correctness after the heal: nothing lost, nothing left pending.
    assert_eq!(outcome.rows_scanned, 6);
    assert_eq!(outcome.pending_after, 0, "all degraded lookups resolved");
    for tag in &outcome.record_tags {
        assert!(
            outcome.sink_tags.contains(tag),
            "soundness under chaos: {tag} missing from {:?}",
            outcome.sink_tags
        );
    }
    for &gid in &outcome.record_gids {
        assert_ne!(gid, 0);
        let trace = outcome.cluster.provenance_stitched(gid);
        assert!(
            trace.pending_all_resolved(),
            "gid {gid}: every Pending hop pairs with a later Resolved\n{trace}"
        );
        let systems = pipeline::systems_spanned(&trace);
        assert!(systems.len() >= 3, "gid {gid} spanned only {systems:?}");
    }
}

#[test]
fn same_seed_replays_an_identical_pipeline_witness() {
    let seed = env_seed();
    let (first, first_outcome) = chaotic_ingest(seed);
    drop(first_outcome);
    let (second, second_outcome) = chaotic_ingest(seed);
    drop(second_outcome);
    assert_eq!(
        first, second,
        "same seed must replay the same fault log and the same sink evidence"
    );
}

#[test]
fn tenant_misroute_is_still_caught_through_a_broker_outage() {
    let seed = env_seed();
    let mut cfg = TenantConfig::new(Mode::Dista);
    cfg.misroute_seed = Some(seed);
    cfg.chaos = Some(pipeline::broker_deliver_outage(seed));
    let outcome = pipeline::run_tenants(&cfg).unwrap();
    let (from, _, to) = pipeline::misroute_of(seed, cfg.tenants, cfg.messages);
    assert!(outcome.retries > 0, "the outage forced retries");
    assert_eq!(outcome.received, outcome.expected);
    assert_eq!(outcome.hits.len(), 1, "{:?}", outcome.hits);
    assert_eq!(
        (outcome.hits[0].from_tenant, outcome.hits[0].to_tenant),
        (from, to)
    );
    assert_eq!(outcome.pending_after, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seeded crash schedule keeps cross-system lookups
    /// correct-or-pending-then-correct: after the scheduled heal, the
    /// full record set reaches the final sink and nothing stays
    /// pending.
    #[test]
    fn seeded_crash_schedules_stay_correct_after_heal(seed in 0u64..10_000) {
        let mut cfg = IngestConfig::new(Mode::Dista);
        cfg.records = 4;
        cfg.chaos = Some(pipeline::broker_outage_plan(seed));
        let outcome = pipeline::run_ingest(&cfg).unwrap();
        prop_assert_eq!(outcome.rows_scanned, 4);
        prop_assert_eq!(outcome.pending_after, 0);
        for tag in &outcome.record_tags {
            prop_assert!(
                outcome.sink_tags.contains(tag),
                "{} missing from {:?}", tag, outcome.sink_tags
            );
        }
        for &gid in &outcome.record_gids {
            let trace = outcome.cluster.provenance_stitched(gid);
            prop_assert!(trace.pending_all_resolved());
        }
    }
}

//! Cluster-level chaos: a seeded `FaultPlan` drives partitions and a
//! primary crash through a live workload. The same seed must replay the
//! same fault schedule bit-for-bit (determinism witness: the applied
//! fault log and the chaos event stream), and degraded mode must stay
//! sound — every delivered byte either carries its real taint or a
//! `pending-gid` sentinel that reconciles after heal, never a silent
//! clean.

use std::time::Duration;

use dista_repro::core::{Cluster, FaultPlan, Mode, ReshardPlan};
use dista_repro::jre::{InputStream, OutputStream, ServerSocket, Socket};
use dista_repro::obs::{ObsConfig, ObsEventKind};
use dista_repro::simnet::{
    FaultConfig, MigrationVictim, NetError, NodeAddr, Reactor, SimNet, Token,
};
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

const RX_IP: [u8; 4] = [10, 0, 0, 2];
const TM_IP: [u8; 4] = [10, 0, 0, 99];

/// Everything two runs of the same seed must agree on.
#[derive(Debug, PartialEq, Eq)]
struct ChaosWitness {
    fault_log: Vec<String>,
    chaos_events: Vec<String>,
    degraded_gids: Vec<u32>,
    replayed: u64,
}

/// Stands up a 2-node cluster under a seeded schedule: the receiver is
/// cut off from every Taint Map shard at step 1, the shard 0 primary is
/// crashed and restarted from its snapshot mid-run, and the link heals
/// late. Eight request rounds flow through the whole arc.
fn run_chaos_scenario(seed: u64) -> ChaosWitness {
    let plan = FaultPlan::builder(seed)
        .partition_both_at(1, RX_IP, TM_IP)
        .crash_shard_at(8, 0)
        .restart_shard_at(8, 0)
        .heal_both_at(24, RX_IP, TM_IP)
        .build();
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("c", 2)
        .observability(ObsConfig::default())
        .taint_map_snapshots(true)
        .chaos(plan)
        .build()
        .unwrap();
    let (tx, rx) = (cluster.vm(0).clone(), cluster.vm(1).clone());

    for round in 0..8u16 {
        let addr = NodeAddr::new(RX_IP, 7100 + round);
        let server = ServerSocket::bind(&rx, addr).unwrap();
        let out = Socket::connect(&tx, addr).unwrap();
        let conn = server.accept().unwrap();
        let taint = tx
            .store()
            .mint_source_taint(TagValue::str(format!("r{round}")));
        out.output_stream()
            .write(&Payload::Tainted(TaintedBytes::uniform(b"chaos!", taint)))
            .unwrap();
        let got = conn.input_stream().read_exact(6).unwrap();
        assert_eq!(got.data(), b"chaos!");

        // Soundness: delivered bytes are never silently clean. Under a
        // healthy link they carry the round's tag; under a cut they
        // carry that gid's pending sentinel.
        let tags = rx.store().tag_values(got.taint_union(rx.store()));
        assert_eq!(tags.len(), 1, "round {round} delivered untagged bytes");
        assert!(
            tags[0] == format!("r{round}") || tags[0].starts_with("pending-gid:"),
            "round {round} carried an unrelated tag: {tags:?}"
        );
        cluster.poll_chaos().unwrap();
    }

    // Heal (idempotent if the scheduled heal already fired) and drain
    // the pending backlog through the breaker's probe window.
    cluster.net().heal_both(RX_IP, TM_IP);
    for _ in 0..64 {
        if cluster.pending_gids() == 0 {
            break;
        }
        cluster.reconcile_pending().unwrap();
    }
    cluster.poll_chaos().unwrap();
    assert_eq!(cluster.pending_gids(), 0, "sentinels must drain after heal");

    let fault_log: Vec<String> = cluster
        .net()
        .fault_log()
        .iter()
        .map(|a| format!("step {}: {:?}", a.step, a.action))
        .collect();
    let mut degraded_gids = Vec::new();
    let mut replayed_total = 0;
    let chaos_events: Vec<String> = cluster
        .obs_events()
        .iter()
        .filter_map(|e| match &e.kind {
            ObsEventKind::FaultInjected { fault } => Some(format!("inject {fault}")),
            ObsEventKind::ShardCrashed { shard } => Some(format!("crash shard {shard}")),
            ObsEventKind::ShardRestarted { shard, replayed } => {
                replayed_total += *replayed;
                Some(format!("restart shard {shard} replayed {replayed}"))
            }
            ObsEventKind::DegradedLookup { gid, shard } => {
                degraded_gids.push(*gid);
                Some(format!("degraded gid {gid} shard {shard}"))
            }
            ObsEventKind::PendingResolved { gid, .. } => Some(format!("resolved gid {gid}")),
            _ => None,
        })
        .collect();

    // Every pending hop in the provenance of a degraded gid must be
    // closed by a reconciled resolution — the §4c soundness condition.
    for &gid in &degraded_gids {
        let trace = cluster.provenance(gid);
        assert!(trace.pending_hops() >= 1, "gid {gid} lost its pending hop");
        assert!(
            trace.pending_all_resolved(),
            "gid {gid} still pending after heal: {trace}"
        );
    }

    // The resilience counters surface in the metrics dump.
    let dump = cluster.metrics_dump();
    assert!(dump.counter_total("taintmap_degraded_lookups") as usize >= degraded_gids.len());
    assert!(dump.counter_total("taintmap_pending_resolved") as usize >= degraded_gids.len());
    assert!(dump.counter_total("taintmap_retries") > 0);
    assert_eq!(
        dump.gauge_value("taintmap_pending_gids", &[("node", "c2")]),
        Some(0.0)
    );

    cluster.shutdown();
    ChaosWitness {
        fault_log,
        chaos_events,
        degraded_gids,
        replayed: replayed_total,
    }
}

#[test]
fn same_seed_replays_an_identical_fault_schedule() {
    // ci.sh runs this suite under several fixed seeds.
    let seed = std::env::var("DISTA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let first = run_chaos_scenario(seed);

    // The schedule actually did something in every dimension.
    assert!(
        first.fault_log.iter().any(|l| l.contains("Partition")),
        "partition applied: {:?}",
        first.fault_log
    );
    assert!(
        first
            .chaos_events
            .iter()
            .any(|e| e.starts_with("crash shard")),
        "primary crashed: {:?}",
        first.chaos_events
    );
    assert!(
        first
            .chaos_events
            .iter()
            .any(|e| e.starts_with("restart shard")),
        "primary restarted: {:?}",
        first.chaos_events
    );
    assert!(
        first.replayed > 0,
        "the restarted primary replayed its snapshot"
    );
    assert!(
        !first.degraded_gids.is_empty(),
        "the cut produced degraded lookups"
    );

    // Determinism: a second run of the same seed produces the same
    // applied-fault log and the same chaos event sequence.
    let second = run_chaos_scenario(seed);
    assert_eq!(first, second, "chaos schedule must be replayable");
}

/// Witness for the reactor determinism check: everything the logical
/// step clock and the delivered bytes can disagree on between runs.
#[derive(Debug, PartialEq, Eq)]
struct ReactorWitness {
    fault_log: Vec<String>,
    final_step: u64,
    outcomes: Vec<String>,
    delivered: Vec<u8>,
    udp_dropped: u64,
}

/// Runs a fixed scripted workload against a seeded `FaultPlan` at the
/// raw SimNet level. `use_reactor` selects how the receiving side
/// reads: the blocking shim or readiness-driven `try_read` under a
/// reactor poll loop. The `FaultEngine` step clock only advances on
/// connects/writes/sends, so the witness must be identical either way.
fn run_simnet_chaos(seed: u64, use_reactor: bool) -> ReactorWitness {
    let client_ip = [10, 0, 1, 1];
    let server_ip = [10, 0, 1, 2];
    let net = SimNet::with_faults(FaultConfig {
        udp_drop_probability: 0.3,
        seed,
        block_timeout: Duration::from_millis(200),
        ..Default::default()
    });
    net.install_fault_plan(
        FaultPlan::builder(seed)
            .partition_at(6, client_ip, server_ip)
            .heal_at(14, client_ip, server_ip)
            .reset_at(20, client_ip, server_ip)
            .build(),
    );

    let server_addr = NodeAddr::new(server_ip, 7500);
    let listener = net.tcp_listen(server_addr).unwrap();
    let udp_rx = net.udp_bind(NodeAddr::new(server_ip, 7501)).unwrap();
    let udp_tx = net.udp_bind(NodeAddr::new(client_ip, 7501)).unwrap();
    let reactor = Reactor::new();

    let mut outcomes = Vec::new();
    let mut delivered = Vec::new();
    let mut events = Vec::new();
    for round in 0..12u32 {
        // One datagram per round: advances the step clock and draws from
        // the seeded drop RNG regardless of the read mechanism.
        udp_tx.send_to(udp_rx.local_addr(), &round.to_be_bytes());
        let client = match net.tcp_connect_from(client_ip, server_addr) {
            Ok(c) => c,
            Err(e) => {
                outcomes.push(format!("r{round} connect: {e}"));
                continue;
            }
        };
        let served = listener.accept().unwrap();
        let msg = format!("round-{round}");
        if let Err(e) = client.write(msg.as_bytes()) {
            outcomes.push(format!("r{round} write: {e}"));
            continue;
        }
        let mut buf = [0u8; 32];
        let read = if use_reactor {
            let token = Token(u64::from(round) + 1);
            served.register_readable(&reactor, token);
            let got = loop {
                match served.try_read(&mut buf) {
                    Err(NetError::WouldBlock) => {
                        reactor.poll(&mut events, Some(Duration::from_millis(200)));
                        events.clear();
                    }
                    other => break other,
                }
            };
            reactor.deregister(token);
            got
        } else {
            served.read(&mut buf)
        };
        match read {
            Ok(n) => {
                delivered.extend_from_slice(&buf[..n]);
                outcomes.push(format!("r{round} ok {n}"));
            }
            Err(e) => outcomes.push(format!("r{round} read: {e}")),
        }
    }

    let fault_log = net
        .fault_log()
        .iter()
        .map(|a| format!("step {}: {:?}", a.step, a.action))
        .collect();
    ReactorWitness {
        fault_log,
        final_step: net.fault_step(),
        outcomes,
        delivered,
        udp_dropped: net.metrics().snapshot().udp_dropped,
    }
}

#[test]
fn reactor_and_blocking_reads_replay_the_same_fault_schedule() {
    let seed = std::env::var("DISTA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let blocking_a = run_simnet_chaos(seed, false);

    // The schedule actually bit: at least one round failed mid-run and
    // at least one recovered after the heal.
    assert!(
        blocking_a.outcomes.iter().any(|o| o.contains("connect:")),
        "partition never blocked a connect: {:?}",
        blocking_a.outcomes
    );
    assert!(
        blocking_a.fault_log.iter().any(|l| l.contains("Partition")),
        "{:?}",
        blocking_a.fault_log
    );

    // Two-run determinism per mechanism, and — the reactor pin — the
    // logical step clock and full witness are mechanism-independent.
    let blocking_b = run_simnet_chaos(seed, false);
    assert_eq!(blocking_a, blocking_b, "blocking replay diverged");
    let reactor_a = run_simnet_chaos(seed, true);
    let reactor_b = run_simnet_chaos(seed, true);
    assert_eq!(reactor_a, reactor_b, "reactor replay diverged");
    assert_eq!(
        blocking_a, reactor_a,
        "readiness-driven reads must not move the FaultEngine step clock"
    );
}

#[test]
fn reshard_survives_crash_during_migration() {
    let seed = std::env::var("DISTA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("r", 2)
        .observability(ObsConfig::default())
        .taint_map_shards(2)
        .taint_map_snapshots(true)
        .build()
        .unwrap();
    let taints: Vec<_> = (0..96)
        .map(|i| cluster.vm(0).store().mint_source_taint(TagValue::Int(i)))
        .collect();
    let gids = cluster
        .vm(0)
        .taint_map()
        .unwrap()
        .global_ids_for(&taints)
        .unwrap();

    // Arm the schedule relative to the live step clock so both triggers
    // land inside the migration's own transfer traffic: the first one
    // kills the copy source almost immediately, the second the target
    // (or fires as a no-op if every split already cut over).
    let step = cluster.net().fault_step();
    cluster.net().install_fault_plan(
        FaultPlan::builder(seed)
            .crash_during_migration_at(step + 2, MigrationVictim::Source)
            .crash_during_migration_at(step + 12, MigrationVictim::Target)
            .build(),
    );

    let new_servers = cluster
        .reshard(&ReshardPlan::new().split(0).split(1).batch(4))
        .unwrap();
    assert_eq!(new_servers, vec![2, 3]);

    // Lossless: every pre-split gid resolves from the other VM through
    // the post-cutover topology to exactly its registration.
    let resolved = cluster
        .vm(1)
        .taint_map()
        .unwrap()
        .taints_for(&gids)
        .unwrap();
    for (i, t) in resolved.iter().enumerate() {
        assert_eq!(cluster.vm(1).store().tag_values(*t), vec![i.to_string()]);
    }

    // The arc is visible in the event stream: the scheduled crash bit a
    // migration side, the split healed from its checkpoint, and both
    // classes cut over.
    let mut crashes = 0;
    let mut heals = 0;
    let mut splits = Vec::new();
    for e in cluster.obs_events() {
        match e.kind {
            ObsEventKind::ShardCrashed { .. } => crashes += 1,
            ObsEventKind::SplitHealed { .. } => heals += 1,
            ObsEventKind::ShardSplit { class, epoch, .. } => splits.push((class, epoch)),
            _ => {}
        }
    }
    assert!(crashes >= 1, "the schedule crashed a migration side");
    assert!(heals >= 1, "the interrupted split healed");
    assert_eq!(splits, vec![(0, 1), (1, 1)]);

    // Deployment-level counters are mirrored under node="taintmap".
    let dump = cluster.metrics_dump();
    assert_eq!(
        dump.gauge_value("taintmap_splits_completed", &[("node", "taintmap")]),
        Some(2.0)
    );
    assert!(
        dump.gauge_value("taintmap_records_transferred", &[("node", "taintmap")])
            .unwrap()
            >= 48.0
    );

    // Compaction bounds the restart cost and surfaces its own events.
    let folded = cluster.compact_taint_map().unwrap();
    assert!(folded >= 96);
    assert!(
        cluster
            .obs_events()
            .iter()
            .any(|e| matches!(e.kind, ObsEventKind::WalCompacted { .. })),
        "compaction events recorded"
    );
    cluster.shutdown();
}

#[test]
fn crashed_vm_is_unreachable_until_restarted() {
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("w", 2)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let (w1, w2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let addr = NodeAddr::new(RX_IP, 7200);
    let server = ServerSocket::bind(&w2, addr).unwrap();

    let ok = Socket::connect(&w1, addr).unwrap();
    drop(server.accept().unwrap());
    drop(ok);

    cluster.crash_vm("w2");
    assert!(
        Socket::connect(&w1, addr).is_err(),
        "a crashed VM must be unreachable"
    );

    cluster.restart_vm("w2");
    let back = Socket::connect(&w1, addr).unwrap();
    drop(server.accept().unwrap());
    drop(back);

    // Both injections were mirrored into the chaos event stream.
    cluster.poll_chaos().unwrap();
    let faults: Vec<String> = cluster
        .obs_events()
        .iter()
        .filter_map(|e| match &e.kind {
            ObsEventKind::FaultInjected { fault } => Some(fault.clone()),
            _ => None,
        })
        .collect();
    assert!(faults.iter().any(|f| f.contains("Isolate")), "{faults:?}");
    assert!(faults.iter().any(|f| f.contains("Rejoin")), "{faults:?}");
    cluster.shutdown();
}

#[test]
fn scheduled_vm_crash_and_restart_fire_from_the_plan() {
    let plan = FaultPlan::builder(9)
        .crash_vm_at(2, "s2")
        .restart_vm_at(5, "s2")
        .build();
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("s", 2)
        .observability(ObsConfig::default())
        .chaos(plan)
        .build()
        .unwrap();
    let (s1, s2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let addr = NodeAddr::new(RX_IP, 7300);
    let server = ServerSocket::bind(&s2, addr).unwrap();

    // Each connect attempt advances the fault clock; the crash trigger
    // fires, cuts the node, and the restart trigger later rejoins it.
    let mut saw_outage = false;
    let mut recovered = false;
    for _ in 0..12 {
        cluster.poll_chaos().unwrap();
        match Socket::connect(&s1, addr) {
            Ok(conn) => {
                drop(server.accept().unwrap());
                drop(conn);
                if saw_outage {
                    recovered = true;
                    break;
                }
            }
            Err(_) => saw_outage = true,
        }
    }
    assert!(saw_outage, "the scheduled crash never cut the node");
    assert!(recovered, "the scheduled restart never rejoined the node");
    cluster.shutdown();
}

//! Cluster-level chaos: a seeded `FaultPlan` drives partitions and a
//! primary crash through a live workload. The same seed must replay the
//! same fault schedule bit-for-bit (determinism witness: the applied
//! fault log and the chaos event stream), and degraded mode must stay
//! sound — every delivered byte either carries its real taint or a
//! `pending-gid` sentinel that reconciles after heal, never a silent
//! clean.

use dista_repro::core::{Cluster, FaultPlan, Mode};
use dista_repro::jre::{InputStream, OutputStream, ServerSocket, Socket};
use dista_repro::obs::{ObsConfig, ObsEventKind};
use dista_repro::simnet::NodeAddr;
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

const RX_IP: [u8; 4] = [10, 0, 0, 2];
const TM_IP: [u8; 4] = [10, 0, 0, 99];

/// Everything two runs of the same seed must agree on.
#[derive(Debug, PartialEq, Eq)]
struct ChaosWitness {
    fault_log: Vec<String>,
    chaos_events: Vec<String>,
    degraded_gids: Vec<u32>,
    replayed: u64,
}

/// Stands up a 2-node cluster under a seeded schedule: the receiver is
/// cut off from every Taint Map shard at step 1, the shard 0 primary is
/// crashed and restarted from its snapshot mid-run, and the link heals
/// late. Eight request rounds flow through the whole arc.
fn run_chaos_scenario(seed: u64) -> ChaosWitness {
    let plan = FaultPlan::builder(seed)
        .partition_both_at(1, RX_IP, TM_IP)
        .crash_shard_at(8, 0)
        .restart_shard_at(8, 0)
        .heal_both_at(24, RX_IP, TM_IP)
        .build();
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("c", 2)
        .observability(ObsConfig::default())
        .taint_map_snapshots(true)
        .chaos(plan)
        .build()
        .unwrap();
    let (tx, rx) = (cluster.vm(0).clone(), cluster.vm(1).clone());

    for round in 0..8u16 {
        let addr = NodeAddr::new(RX_IP, 7100 + round);
        let server = ServerSocket::bind(&rx, addr).unwrap();
        let out = Socket::connect(&tx, addr).unwrap();
        let conn = server.accept().unwrap();
        let taint = tx
            .store()
            .mint_source_taint(TagValue::str(format!("r{round}")));
        out.output_stream()
            .write(&Payload::Tainted(TaintedBytes::uniform(b"chaos!", taint)))
            .unwrap();
        let got = conn.input_stream().read_exact(6).unwrap();
        assert_eq!(got.data(), b"chaos!");

        // Soundness: delivered bytes are never silently clean. Under a
        // healthy link they carry the round's tag; under a cut they
        // carry that gid's pending sentinel.
        let tags = rx.store().tag_values(got.taint_union(rx.store()));
        assert_eq!(tags.len(), 1, "round {round} delivered untagged bytes");
        assert!(
            tags[0] == format!("r{round}") || tags[0].starts_with("pending-gid:"),
            "round {round} carried an unrelated tag: {tags:?}"
        );
        cluster.poll_chaos().unwrap();
    }

    // Heal (idempotent if the scheduled heal already fired) and drain
    // the pending backlog through the breaker's probe window.
    cluster.net().heal_both(RX_IP, TM_IP);
    for _ in 0..64 {
        if cluster.pending_gids() == 0 {
            break;
        }
        cluster.reconcile_pending().unwrap();
    }
    cluster.poll_chaos().unwrap();
    assert_eq!(cluster.pending_gids(), 0, "sentinels must drain after heal");

    let fault_log: Vec<String> = cluster
        .net()
        .fault_log()
        .iter()
        .map(|a| format!("step {}: {:?}", a.step, a.action))
        .collect();
    let mut degraded_gids = Vec::new();
    let mut replayed_total = 0;
    let chaos_events: Vec<String> = cluster
        .obs_events()
        .iter()
        .filter_map(|e| match &e.kind {
            ObsEventKind::FaultInjected { fault } => Some(format!("inject {fault}")),
            ObsEventKind::ShardCrashed { shard } => Some(format!("crash shard {shard}")),
            ObsEventKind::ShardRestarted { shard, replayed } => {
                replayed_total += *replayed;
                Some(format!("restart shard {shard} replayed {replayed}"))
            }
            ObsEventKind::DegradedLookup { gid, shard } => {
                degraded_gids.push(*gid);
                Some(format!("degraded gid {gid} shard {shard}"))
            }
            ObsEventKind::PendingResolved { gid, .. } => Some(format!("resolved gid {gid}")),
            _ => None,
        })
        .collect();

    // Every pending hop in the provenance of a degraded gid must be
    // closed by a reconciled resolution — the §4c soundness condition.
    for &gid in &degraded_gids {
        let trace = cluster.provenance(gid);
        assert!(trace.pending_hops() >= 1, "gid {gid} lost its pending hop");
        assert!(
            trace.pending_all_resolved(),
            "gid {gid} still pending after heal: {trace}"
        );
    }

    // The resilience counters surface in the metrics dump.
    let dump = cluster.metrics_dump();
    assert!(dump.counter_total("taintmap_degraded_lookups") as usize >= degraded_gids.len());
    assert!(dump.counter_total("taintmap_pending_resolved") as usize >= degraded_gids.len());
    assert!(dump.counter_total("taintmap_retries") > 0);
    assert_eq!(
        dump.gauge_value("taintmap_pending_gids", &[("node", "c2")]),
        Some(0.0)
    );

    cluster.shutdown();
    ChaosWitness {
        fault_log,
        chaos_events,
        degraded_gids,
        replayed: replayed_total,
    }
}

#[test]
fn same_seed_replays_an_identical_fault_schedule() {
    // ci.sh runs this suite under several fixed seeds.
    let seed = std::env::var("DISTA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let first = run_chaos_scenario(seed);

    // The schedule actually did something in every dimension.
    assert!(
        first.fault_log.iter().any(|l| l.contains("Partition")),
        "partition applied: {:?}",
        first.fault_log
    );
    assert!(
        first
            .chaos_events
            .iter()
            .any(|e| e.starts_with("crash shard")),
        "primary crashed: {:?}",
        first.chaos_events
    );
    assert!(
        first
            .chaos_events
            .iter()
            .any(|e| e.starts_with("restart shard")),
        "primary restarted: {:?}",
        first.chaos_events
    );
    assert!(
        first.replayed > 0,
        "the restarted primary replayed its snapshot"
    );
    assert!(
        !first.degraded_gids.is_empty(),
        "the cut produced degraded lookups"
    );

    // Determinism: a second run of the same seed produces the same
    // applied-fault log and the same chaos event sequence.
    let second = run_chaos_scenario(seed);
    assert_eq!(first, second, "chaos schedule must be replayable");
}

#[test]
fn crashed_vm_is_unreachable_until_restarted() {
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("w", 2)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let (w1, w2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let addr = NodeAddr::new(RX_IP, 7200);
    let server = ServerSocket::bind(&w2, addr).unwrap();

    let ok = Socket::connect(&w1, addr).unwrap();
    drop(server.accept().unwrap());
    drop(ok);

    cluster.crash_vm("w2");
    assert!(
        Socket::connect(&w1, addr).is_err(),
        "a crashed VM must be unreachable"
    );

    cluster.restart_vm("w2");
    let back = Socket::connect(&w1, addr).unwrap();
    drop(server.accept().unwrap());
    drop(back);

    // Both injections were mirrored into the chaos event stream.
    cluster.poll_chaos().unwrap();
    let faults: Vec<String> = cluster
        .obs_events()
        .iter()
        .filter_map(|e| match &e.kind {
            ObsEventKind::FaultInjected { fault } => Some(fault.clone()),
            _ => None,
        })
        .collect();
    assert!(faults.iter().any(|f| f.contains("Isolate")), "{faults:?}");
    assert!(faults.iter().any(|f| f.contains("Rejoin")), "{faults:?}");
    cluster.shutdown();
}

#[test]
fn scheduled_vm_crash_and_restart_fire_from_the_plan() {
    let plan = FaultPlan::builder(9)
        .crash_vm_at(2, "s2")
        .restart_vm_at(5, "s2")
        .build();
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("s", 2)
        .observability(ObsConfig::default())
        .chaos(plan)
        .build()
        .unwrap();
    let (s1, s2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let addr = NodeAddr::new(RX_IP, 7300);
    let server = ServerSocket::bind(&s2, addr).unwrap();

    // Each connect attempt advances the fault clock; the crash trigger
    // fires, cuts the node, and the restart trigger later rejoins it.
    let mut saw_outage = false;
    let mut recovered = false;
    for _ in 0..12 {
        cluster.poll_chaos().unwrap();
        match Socket::connect(&s1, addr) {
            Ok(conn) => {
                drop(server.accept().unwrap());
                drop(conn);
                if saw_outage {
                    recovered = true;
                    break;
                }
            }
            Err(_) => saw_outage = true,
        }
    }
    assert!(saw_outage, "the scheduled crash never cut the node");
    assert!(recovered, "the scheduled restart never rejoined the node");
    cluster.shutdown();
}

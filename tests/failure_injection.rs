//! Failure-injection tests: fragmented delivery, datagram truncation and
//! loss, concurrent clients, Taint Map contention — the §III-D corner
//! cases that motivated DisTA's wire format.

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{
    DatagramPacket, DatagramSocket, InputStream, OutputStream, ServerSocket, Socket,
};
use dista_repro::simnet::{FaultConfig, NodeAddr};
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

#[test]
fn taints_survive_pathological_fragmentation() {
    // Every TCP read returns at most 1 byte — the worst case for the
    // 5-byte wire records.
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("frag", 2)
        .build()
        .unwrap();
    cluster.net().set_faults(FaultConfig {
        max_read_chunk: 1,
        ..Default::default()
    });
    let (vm1, vm2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let server = ServerSocket::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 80)).unwrap();
    let reader = std::thread::spawn(move || {
        let conn = server.accept().unwrap();
        conn.input_stream().read_exact(100).unwrap()
    });
    let taint = vm1.store().mint_source_taint(TagValue::str("frag"));
    let client = Socket::connect(&vm1, NodeAddr::new([10, 0, 0, 2], 80)).unwrap();
    client
        .output_stream()
        .write(&Payload::Tainted(TaintedBytes::uniform([9u8; 100], taint)))
        .unwrap();
    let got = reader.join().unwrap();
    assert_eq!(got.data(), vec![9u8; 100]);
    assert_eq!(
        vm2.store().tag_values(got.taint_union(vm2.store())),
        vec!["frag".to_string()]
    );
    cluster.shutdown();
}

#[test]
fn truncated_datagram_keeps_prefix_taints_exactly() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("trunc", 2)
        .build()
        .unwrap();
    let (vm1, vm2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let a = DatagramSocket::bind(&vm1, NodeAddr::new([10, 0, 0, 1], 53)).unwrap();
    let b = DatagramSocket::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 53)).unwrap();

    // First half tainted "head", second half "tail".
    let head = vm1.store().mint_source_taint(TagValue::str("head"));
    let tail = vm1.store().mint_source_taint(TagValue::str("tail"));
    let mut data = TaintedBytes::uniform(vec![1u8; 50], head);
    data.extend_uniform(&[2u8; 50], tail);
    a.send(&DatagramPacket::for_send(
        Payload::Tainted(data),
        b.local_addr(),
    ))
    .unwrap();

    // The receiver only has room for the head.
    let mut packet = DatagramPacket::for_receive(50);
    b.receive(&mut packet).unwrap();
    let got = packet.into_data();
    assert_eq!(got.len(), 50);
    assert_eq!(
        vm2.store().tag_values(got.taint_union(vm2.store())),
        vec!["head".to_string()],
        "precision under truncation: the tail tag must NOT appear"
    );
    cluster.shutdown();
}

#[test]
fn dropped_datagrams_do_not_wedge_the_taint_map() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("drop", 2)
        .build()
        .unwrap();
    cluster.net().set_faults(FaultConfig {
        udp_drop_probability: 1.0,
        ..Default::default()
    });
    let (vm1, vm2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let a = DatagramSocket::bind(&vm1, NodeAddr::new([10, 0, 0, 1], 54)).unwrap();
    let _b = DatagramSocket::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 54)).unwrap();
    let taint = vm1.store().mint_source_taint(TagValue::str("lost"));
    a.send(&DatagramPacket::for_send(
        Payload::Tainted(TaintedBytes::uniform(b"gone", taint)),
        NodeAddr::new([10, 0, 0, 2], 54),
    ))
    .unwrap();
    // The taint was registered even though the datagram was dropped; the
    // service stays consistent and reusable.
    assert_eq!(cluster.taint_map().stats().global_taints, 1);
    cluster.net().set_faults(FaultConfig::default());
    let t2 = vm1.store().mint_source_taint(TagValue::str("works"));
    let gid = vm1.taint_map().unwrap().global_id_for(t2).unwrap();
    assert!(gid.is_tainted());
    cluster.shutdown();
}

#[test]
fn interleaved_connections_do_not_cross_taints() {
    // Two concurrent client connections with different taints; shadows
    // must stay with their own stream.
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("pair", 2)
        .build()
        .unwrap();
    let (vm1, vm2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let server = ServerSocket::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 81)).unwrap();
    let vm2_clone = vm2.clone();
    let serve = std::thread::spawn(move || {
        let mut results = Vec::new();
        for _ in 0..2 {
            let conn = server.accept().unwrap();
            let vm = vm2_clone.clone();
            results.push(std::thread::spawn(move || {
                let got = conn.input_stream().read_exact(1000).unwrap();
                vm.store().tag_values(got.taint_union(vm.store()))
            }));
        }
        results
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    let mut senders = Vec::new();
    for name in ["alpha", "beta"] {
        let vm1 = vm1.clone();
        senders.push(std::thread::spawn(move || {
            let taint = vm1.store().mint_source_taint(TagValue::str(name));
            let client = Socket::connect(&vm1, NodeAddr::new([10, 0, 0, 2], 81)).unwrap();
            client
                .output_stream()
                .write(&Payload::Tainted(TaintedBytes::uniform(
                    vec![0u8; 1000],
                    taint,
                )))
                .unwrap();
        }));
    }
    for s in senders {
        s.join().unwrap();
    }
    let mut seen = serve.join().unwrap();
    seen.sort();
    assert_eq!(
        seen,
        vec![vec!["alpha".to_string()], vec!["beta".to_string()]],
        "each connection carries exactly its own tag"
    );
    cluster.shutdown();
}

#[test]
fn many_concurrent_vms_share_one_taint_map() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("many", 8)
        .build()
        .unwrap();
    let mut handles = Vec::new();
    for (i, vm) in cluster.vms().iter().enumerate() {
        let vm = vm.clone();
        handles.push(std::thread::spawn(move || {
            let mut gids = Vec::new();
            for k in 0..10 {
                let t = vm
                    .store()
                    .mint_source_taint(TagValue::str(format!("t{i}-{k}")));
                gids.push(vm.taint_map().unwrap().global_id_for(t).unwrap());
            }
            gids
        }));
    }
    let mut all: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), 80, "80 distinct taints, 80 distinct global ids");
    assert_eq!(cluster.taint_map().stats().global_taints, 80);
    cluster.shutdown();
}

#[test]
fn server_eof_mid_wire_record_is_detected() {
    // A raw (uninstrumented) writer sends 3 bytes of a 5-byte record and
    // hangs up; the instrumented reader must fail loudly, not fabricate
    // data.
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("eof", 2)
        .build()
        .unwrap();
    let vm2 = cluster.vm(1).clone();
    let listener = cluster
        .net()
        .tcp_listen(NodeAddr::new([10, 0, 0, 2], 82))
        .unwrap();
    let raw = cluster
        .net()
        .tcp_connect(NodeAddr::new([10, 0, 0, 2], 82))
        .unwrap();
    let ep = listener.accept().unwrap();
    let stream = dista_repro::jre::BoundaryStream::new(vm2, ep);
    raw.write(&[1, 2, 3]).unwrap();
    raw.close();
    assert!(stream.read_payload(4).is_err());
    cluster.shutdown();
}

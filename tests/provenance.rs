//! Cross-node provenance reconstruction (the telemetry tentpole's
//! acceptance scenario): tainted bytes minted on `n1` relay through
//! `n2` and reach a `LOG.info` sink on `n3`. `Cluster::provenance(gid)`
//! must rebuild the whole ≥2-hop path — mint, Taint Map registration,
//! both socket crossings with byte ranges, per-node resolution, and the
//! sink — from flight-recorder events alone.

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{InputStream, OutputStream, ServerSocket, Socket};
use dista_repro::obs::{Hop, ObsConfig, ObsEventKind};
use dista_repro::simnet::NodeAddr;
use dista_repro::taint::{Payload, TagValue, TaintedBytes};

#[test]
fn provenance_reconstructs_two_hop_relay_path() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("n", 3)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let (src, relay, sink) = (cluster.vm(0), cluster.vm(1), cluster.vm(2));

    // n1 → n2 → n3 over two real socket connections.
    let relay_server = ServerSocket::bind(relay, NodeAddr::new([10, 0, 0, 2], 90)).unwrap();
    let sink_server = ServerSocket::bind(sink, NodeAddr::new([10, 0, 0, 3], 90)).unwrap();
    let src_out = Socket::connect(src, relay_server.local_addr()).unwrap();
    let relay_in = relay_server.accept().unwrap();
    let relay_out = Socket::connect(relay, sink_server.local_addr()).unwrap();
    let sink_in = sink_server.accept().unwrap();

    let creds = src.taint_source(TagValue::str("creds"));
    src_out
        .output_stream()
        .write(&Payload::Tainted(TaintedBytes::uniform(b"secret!!", creds)))
        .unwrap();
    let relayed = relay_in.input_stream().read_exact(8).unwrap();
    relay_out.output_stream().write(&relayed).unwrap();
    let received = sink_in.input_stream().read_exact(8).unwrap();
    let taint = received.taint_union(sink.store());
    assert!(sink.taint_sink("LOG.info", taint), "taint reached the sink");

    // The Global ID assigned at registration, read without side effects.
    let gid = src
        .taint_map()
        .unwrap()
        .cached_gid_for(creds)
        .expect("taint registered when it crossed the first socket")
        .0;

    let trace = cluster.provenance(gid);
    assert!(!trace.is_empty());
    assert_eq!(trace.crossings(), 2, "n1→n2 and n2→n3: {trace}");
    assert_eq!(trace.nodes(), vec!["n1", "n2", "n3"]);
    assert_eq!(trace.sinks(), vec![("n3", "LOG.info")]);

    // Hop order tells the full story: minted and registered on n1,
    // crossed to n2, resolved there, crossed to n3, resolved, sunk.
    let hops = &trace.hops;
    assert!(
        matches!(&hops[0], Hop::Minted { node, tag, .. } if node == "n1" && tag == "creds"),
        "first hop is the mint on n1: {trace}"
    );
    assert!(
        hops.iter()
            .any(|h| matches!(h, Hop::Registered { node, .. } if node == "n1")),
        "registration hop present: {trace}"
    );
    let crossed: Vec<(&str, Option<&str>, (usize, usize))> = hops
        .iter()
        .filter_map(|h| match h {
            Hop::Crossed {
                from_node,
                to_node,
                bytes,
                ..
            } => Some((from_node.as_str(), to_node.as_deref(), *bytes)),
            _ => None,
        })
        .collect();
    assert_eq!(
        crossed,
        vec![("n1", Some("n2"), (0, 8)), ("n2", Some("n3"), (0, 8)),],
        "both crossings carry the full byte range: {trace}"
    );
    assert!(
        matches!(hops.last().unwrap(), Hop::Sunk { node, sink, .. }
            if node == "n3" && sink == "LOG.info"),
        "last hop is the sink: {trace}"
    );

    // Sequence numbers come from one shared cluster clock, so the hop
    // order is a total order.
    let seqs: Vec<u64> = hops.iter().map(|h| h.seq()).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "hops strictly ordered"
    );

    // The same events drive the exporters.
    let jsonl = cluster.export_jsonl();
    assert!(jsonl.contains("\"event\":\"source_minted\""));
    assert!(jsonl.contains("\"event\":\"sink_hit\""));
    let chrome = cluster.export_chrome_trace();
    for node in ["n1", "n2", "n3"] {
        assert!(chrome.contains(node), "trace names process {node}");
    }
    cluster.shutdown();
}

#[test]
fn relay_register_and_lookup_events_name_the_same_gid() {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("m", 2)
        .observability(ObsConfig::default())
        .build()
        .unwrap();
    let (a, b) = (cluster.vm(0), cluster.vm(1));
    let server = ServerSocket::bind(b, NodeAddr::new([10, 0, 0, 2], 91)).unwrap();
    let out = Socket::connect(a, server.local_addr()).unwrap();
    let conn = server.accept().unwrap();
    let t = a.taint_source(TagValue::str("x"));
    out.output_stream()
        .write(&Payload::Tainted(TaintedBytes::uniform(b"abc", t)))
        .unwrap();
    conn.input_stream().read_exact(3).unwrap();

    let events = cluster.obs_events();
    let registered: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            ObsEventKind::TaintMapRegister { gid, .. } => Some(gid),
            _ => None,
        })
        .collect();
    let looked_up: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            ObsEventKind::TaintMapLookup { gid, .. } => Some(gid),
            _ => None,
        })
        .collect();
    assert_eq!(registered.len(), 1);
    assert_eq!(
        registered, looked_up,
        "receiver resolves what sender registered"
    );
    cluster.shutdown();
}

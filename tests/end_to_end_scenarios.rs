//! Cross-crate end-to-end tests: every Table III system under every
//! Table IV scenario, with exact soundness (expected tags present) and
//! precision (no unexpected tags) assertions — the RQ1 methodology of
//! §V-D applied to the whole reproduction.

use dista_repro::core::{Cluster, Mode};
use dista_repro::jre::{FILE_INPUT_STREAM_CLASS, LOGGER_CLASS};
use dista_repro::simnet::NodeAddr;
use dista_repro::taint::{MethodDesc, SourceSinkSpec, TaintedBytes};

fn sim_spec() -> SourceSinkSpec {
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
        .add_sink(MethodDesc::new(LOGGER_CLASS, "info"));
    spec
}

// ---------------------------------------------------------- ZooKeeper

#[test]
fn zookeeper_sdt_exact_tag_set_on_both_followers() {
    use dista_repro::zookeeper::{ZkEnsemble, ZkEnsembleConfig, FLE_CLASS};
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(FLE_CLASS, "getVote"))
        .add_sink(MethodDesc::new(FLE_CLASS, "checkLeader"));
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("zk", 3)
        .spec(spec)
        .build()
        .unwrap();
    let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
    assert_eq!(ensemble.leader(), 3);
    for follower in [0usize, 1] {
        let report = cluster.vm(follower).sink_report();
        assert!(
            report.saw_exactly("FastLeaderElection.checkLeader", vec!["vote3".into()]),
            "follower {follower} must see exactly {{vote3}}: {:?}",
            report.events
        );
    }
    ensemble.shutdown();
    cluster.shutdown();
}

#[test]
fn zookeeper_sim_only_last_file_taint_propagates() {
    use dista_repro::zookeeper::{ZkEnsemble, ZkEnsembleConfig};
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("zk", 3)
        .spec(sim_spec())
        .build()
        .unwrap();
    let ensemble = ZkEnsemble::start(
        cluster.vms(),
        ZkEnsembleConfig {
            txn_logs: vec![vec![1, 2, 9], vec![1], vec![1]],
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(ensemble.leader(), 1);
    for follower in [1usize, 2] {
        let report = cluster.vm(follower).sink_report();
        let events = report.at("LOG.info");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tags.len(), 1, "precision: exactly one tag");
        assert!(events[0].tags[0].starts_with("version-2/log.2#r"));
    }
    ensemble.shutdown();
    cluster.shutdown();
}

// ---------------------------------------------------------- MapReduce

#[test]
fn mapreduce_sdt_id_round_trip_and_correct_pi() {
    use dista_repro::mapreduce::{run_pi_job, YARN_CLIENT_CLASS};
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(YARN_CLIENT_CLASS, "createApplication"))
        .add_sink(MethodDesc::new(YARN_CLIENT_CLASS, "getApplicationReport"));
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("yarn", 3)
        .spec(spec)
        .build()
        .unwrap();
    let result = run_pi_job(cluster.vms(), 4, 25_000).unwrap();
    assert!((result.pi - std::f64::consts::PI).abs() < 0.05);
    let tags = cluster.vm(2).store().tag_values(result.sink_taint);
    assert_eq!(tags.len(), 1, "precision");
    assert!(tags[0].starts_with("application_"), "soundness");
    cluster.shutdown();
}

// --------------------------------------------------- message brokers

#[test]
fn activemq_sdt_message_tag_sound_and_precise() {
    use dista_repro::activemq::{seed_config, Broker, Consumer, Producer};
    use dista_repro::activemq::{CONSUMER_CLASS, PRODUCER_CLASS};
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(PRODUCER_CLASS, "createTextMessage"))
        .add_sink(MethodDesc::new(CONSUMER_CLASS, "receive"));
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("amq", 3)
        .spec(spec)
        .build()
        .unwrap();
    seed_config(cluster.vm(0), "b");
    let broker = Broker::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 61616)).unwrap();
    let consumer = Consumer::subscribe(cluster.vm(2), broker.addr(), "q").unwrap();
    let producer = Producer::connect(cluster.vm(1), broker.addr()).unwrap();
    let body = producer.create_text_message(&"payload ".repeat(1000));
    producer.send("q", body).unwrap();
    let message = consumer.receive().unwrap();
    let tags = cluster
        .vm(2)
        .store()
        .tag_values(message.taint(cluster.vm(2)));
    assert_eq!(tags.len(), 1);
    assert!(tags[0].starts_with("message_"));
    producer.close();
    consumer.close();
    broker.shutdown();
    cluster.shutdown();
}

#[test]
fn rocketmq_two_messages_keep_distinct_tags() {
    use dista_repro::rocketmq::{
        seed_config, BrokerServer, MqConsumer, MqProducer, NameServer, CONSUMER_CLASS,
        PRODUCER_CLASS,
    };
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(PRODUCER_CLASS, "createMessage"))
        .add_sink(MethodDesc::new(CONSUMER_CLASS, "consumeMessage"));
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("mq", 3)
        .spec(spec)
        .build()
        .unwrap();
    seed_config(cluster.vm(1), "b");
    let ns = NameServer::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 9876)).unwrap();
    let broker =
        BrokerServer::start(cluster.vm(1), NodeAddr::new([10, 0, 0, 2], 10911), &["T"]).unwrap();
    broker.register_with(ns.addr()).unwrap();
    let producer = MqProducer::start(cluster.vm(2), ns.addr(), "T").unwrap();
    let m1 = producer.create_message("first");
    producer.send("T", m1).unwrap();
    let m2 = producer.create_message("second");
    producer.send("T", m2).unwrap();
    let consumer = MqConsumer::start(cluster.vm(2), ns.addr(), "T").unwrap();
    let first = consumer.pull_blocking().unwrap();
    let second = consumer.pull_blocking().unwrap();
    let t1 = cluster.vm(2).store().tag_values(first.taint(cluster.vm(2)));
    let t2 = cluster
        .vm(2)
        .store()
        .tag_values(second.taint(cluster.vm(2)));
    assert_eq!(t1.len(), 1);
    assert_eq!(t2.len(), 1);
    assert_ne!(t1, t2, "per-message precision: distinct tags stay distinct");
    producer.close();
    consumer.close();
    broker.shutdown();
    ns.shutdown();
    cluster.shutdown();
}

// -------------------------------------------------------------- HBase

#[test]
fn hbase_cross_system_sim_and_sdt_combined() {
    use dista_repro::hbase::{seed_config, HMaster, HTable, RegionServer, HTABLE_CLASS};
    use dista_repro::zookeeper::{ZkClient, ZkEnsemble, ZkEnsembleConfig};
    let mut spec = sim_spec();
    spec.add_source(MethodDesc::new(HTABLE_CLASS, "tableName"))
        .add_sink(MethodDesc::new(HTABLE_CLASS, "getResult"));
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("hb", 4)
        .spec(spec)
        .build()
        .unwrap();
    let zk_vms: Vec<_> = cluster.vms()[..3].to_vec();
    let ensemble = ZkEnsemble::start(&zk_vms, ZkEnsembleConfig::default()).unwrap();
    let mut region_servers = Vec::new();
    for (i, vm) in cluster.vms()[1..3].iter().enumerate() {
        seed_config(vm, &format!("rs{i}"));
        let rs = RegionServer::start(vm, NodeAddr::new(vm.ip(), 16020)).unwrap();
        let zk = ZkClient::connect(vm, ensemble.any_client_addr()).unwrap();
        rs.register_in_zk(&zk, i).unwrap();
        zk.close();
        region_servers.push(rs);
    }
    let master = HMaster::start(cluster.vm(0), ensemble.any_client_addr()).unwrap();
    let servers = master.wait_for_region_servers(2).unwrap();
    master.assign_tables(&["users"], &servers).unwrap();

    let table = HTable::open(cluster.vm(3), ensemble.any_client_addr(), "users").unwrap();
    table
        .put(b"k", TaintedBytes::from_plain(b"v".to_vec()))
        .unwrap();
    let result = table.get(b"k").unwrap();
    assert!(result.found);

    // SDT: the TableName tag reached the client's Result, and nothing
    // else rode along with it at that sink.
    let client_report = cluster.vm(3).sink_report();
    let get_events = client_report.at("HTable.getResult");
    assert!(!get_events.is_empty());
    assert!(get_events
        .iter()
        .any(|e| e.tags == vec!["table:users".to_string()]));

    // SIM: both RS config taints reached the master's LOG.info through
    // ZooKeeper — the cross-system flow.
    let master_report = cluster.vm(0).sink_report();
    let tainted_logs: Vec<_> = master_report
        .at("LOG.info")
        .into_iter()
        .filter(|e| e.is_tainted())
        .cloned()
        .collect();
    assert_eq!(tainted_logs.len(), 2);

    table.close();
    master.shutdown();
    for rs in region_servers {
        rs.shutdown();
    }
    ensemble.shutdown();
    cluster.shutdown();
}

// -------------------------------------------------- negative control

#[test]
fn phosphor_mode_is_unsound_across_all_systems() {
    // The baseline comparison behind the paper's soundness argument:
    // intra-node-only tracking loses every inter-node flow.
    use dista_repro::zookeeper::{ZkEnsemble, ZkEnsembleConfig, FLE_CLASS};
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(FLE_CLASS, "getVote"))
        .add_sink(MethodDesc::new(FLE_CLASS, "checkLeader"));
    let cluster = Cluster::builder(Mode::Phosphor)
        .nodes("zk", 3)
        .spec(spec)
        .build()
        .unwrap();
    let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
    assert_eq!(ensemble.leader(), 3, "functionality is unaffected");
    assert_eq!(
        cluster.total_tainted_sink_events(),
        0,
        "but every cross-node taint is lost"
    );
    ensemble.shutdown();
    cluster.shutdown();
}

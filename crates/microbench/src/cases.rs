//! The 30 case definitions and their transports.

use std::sync::Arc;

use dista_jre::{
    AsyncServerSocketChannel, AsyncSocketChannel, DatagramPacket, DatagramSocket, DirectByteBuffer,
    HttpClient, HttpResponse, HttpServer, JreError, ServerSocket, ServerSocketChannel, Socket,
    SocketChannel, Vm,
};
use dista_netty::{
    decode_http_request, decode_http_response, encode_http_request, encode_http_response,
    Bootstrap, DatagramBootstrap, ServerBootstrap,
};
use dista_simnet::NodeAddr;
use dista_taint::Payload;

use crate::socket_codecs::{
    Buffered, BufferedData, BufferedObj, ChunkedExact, DataBool, DataByte, DataChars, DataDouble,
    DataFloat, DataInt, DataIntArray, DataLong, DataShort, DataUtf, LineWriter, ObjBytes, ObjList,
    ObjRecord, ObjString, RawArray, SingleByte, SocketCodec,
};

/// Protocol family of a case (the row groups of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// JRE `Socket` stream I/O (22 cases).
    JreSocket,
    /// JRE `DatagramSocket` (UDP).
    JreDatagram,
    /// JRE NIO `SocketChannel`.
    JreSocketChannel,
    /// JRE NIO `DatagramChannel`.
    JreDatagramChannel,
    /// JRE AIO `AsynchronousSocketChannel`.
    JreAsyncSocketChannel,
    /// JRE HTTP.
    JreHttp,
    /// Netty TCP.
    NettySocket,
    /// Netty UDP.
    NettyDatagram,
    /// Netty HTTP.
    NettyHttp,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            Family::JreSocket => "JRE Socket",
            Family::JreDatagram => "JRE Datagram",
            Family::JreSocketChannel => "JRE SocketChannel",
            Family::JreDatagramChannel => "JRE DatagramChannel",
            Family::JreAsyncSocketChannel => "JRE AsyncSocketChannel",
            Family::JreHttp => "JRE HTTP",
            Family::NettySocket => "Netty Socket",
            Family::NettyDatagram => "Netty DatagramSocket",
            Family::NettyHttp => "Netty HTTP",
        };
        f.write_str(label)
    }
}

/// Everything a case needs to run the Fig.-10 round trip.
#[derive(Debug)]
pub struct CaseCtx {
    /// Node 1 (the checker).
    pub vm1: Vm,
    /// Node 2 (the combiner).
    pub vm2: Vm,
    /// Port for the case's server on node 2's IP.
    pub port: u16,
    /// Node 1's source data (`Data1`-tainted in tracked modes).
    pub data1: Payload,
    /// Node 2's source data (`Data2`-tainted in tracked modes).
    pub data2: Payload,
}

/// One Table II test case.
pub trait MicroCase: Sync + Send {
    /// Case name (unique).
    fn name(&self) -> &'static str;
    /// Protocol family.
    fn family(&self) -> Family;
    /// Runs the round trip, returning what node 1 received back.
    ///
    /// # Errors
    ///
    /// Transport, Taint Map or protocol errors.
    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError>;
}

// ------------------------------------------------------- JRE Socket

struct SocketCase {
    name: &'static str,
    codec: &'static dyn SocketCodec,
}

impl MicroCase for SocketCase {
    fn name(&self) -> &'static str {
        self.name
    }

    fn family(&self) -> Family {
        Family::JreSocket
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let server = ServerSocket::bind(&ctx.vm2, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let codec = self.codec;
        let data2 = ctx.data2.clone();
        let server_thread = std::thread::spawn(move || -> Result<(), JreError> {
            let conn = server.accept()?;
            let mut combined = codec.recv(&conn)?;
            combined.append(data2);
            codec.send(&conn, &combined)?;
            conn.close();
            server.close();
            Ok(())
        });
        let client = Socket::connect(&ctx.vm1, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        codec.send(&client, &ctx.data1)?;
        let back = codec.recv(&client)?;
        client.close();
        server_thread.join().expect("server thread panicked")?;
        Ok(back)
    }
}

// ------------------------------------------------------ JRE Datagram

struct DatagramCase;

impl MicroCase for DatagramCase {
    fn name(&self) -> &'static str {
        "jre_datagram"
    }

    fn family(&self) -> Family {
        Family::JreDatagram
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let capacity = ctx.data1.len() + ctx.data2.len() + 64;
        let server = DatagramSocket::bind(&ctx.vm2, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let data2 = ctx.data2.clone();
        let server_thread = std::thread::spawn(move || -> Result<(), JreError> {
            let mut packet = DatagramPacket::for_receive(capacity);
            server.receive(&mut packet)?;
            let from = packet.addr().expect("receive sets sender");
            let mut combined = packet.into_data();
            combined.append(data2);
            server.send(&DatagramPacket::for_send(combined, from))?;
            server.close();
            Ok(())
        });
        let client = DatagramSocket::bind(&ctx.vm1, NodeAddr::new(ctx.vm1.ip(), ctx.port))?;
        client.send(&DatagramPacket::for_send(
            ctx.data1.clone(),
            NodeAddr::new(ctx.vm2.ip(), ctx.port),
        ))?;
        let mut reply = DatagramPacket::for_receive(capacity);
        client.receive(&mut reply)?;
        client.close();
        server_thread.join().expect("server thread panicked")?;
        Ok(reply.into_data())
    }
}

// ------------------------------------------------- JRE SocketChannel

fn frame_payload(vm: &Vm, body: &Payload) -> Payload {
    let mut framed = match vm.mode().tracks_taints() {
        true => Payload::Tainted(dista_taint::TaintedBytes::with_capacity(4 + body.len())),
        false => Payload::Plain(Vec::with_capacity(4 + body.len())),
    };
    framed.append(Payload::Plain((body.len() as u32).to_be_bytes().to_vec()));
    framed.append(body.clone());
    framed
}

fn channel_send(vm: &Vm, channel: &SocketChannel, body: &Payload) -> Result<(), JreError> {
    let framed = frame_payload(vm, body);
    let mut buf = DirectByteBuffer::allocate_direct(vm, framed.len());
    buf.put(&framed)?;
    buf.flip();
    while buf.remaining() > 0 {
        channel.write(&mut buf)?;
    }
    Ok(())
}

fn channel_recv(vm: &Vm, channel: &SocketChannel) -> Result<Payload, JreError> {
    let header = channel.read_exact_payload(4)?;
    let d = header.data();
    let len = u32::from_be_bytes([d[0], d[1], d[2], d[3]]) as usize;
    let mut buf = DirectByteBuffer::allocate_direct(vm, len);
    while buf.position() < len {
        if channel.read(&mut buf)? == 0 {
            return Err(JreError::Eof);
        }
    }
    buf.flip();
    Ok(buf.get(len))
}

struct SocketChannelCase;

impl MicroCase for SocketChannelCase {
    fn name(&self) -> &'static str {
        "jre_socket_channel"
    }

    fn family(&self) -> Family {
        Family::JreSocketChannel
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let server = ServerSocketChannel::bind(&ctx.vm2, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let vm2 = ctx.vm2.clone();
        let data2 = ctx.data2.clone();
        let server_thread = std::thread::spawn(move || -> Result<(), JreError> {
            let channel = server.accept()?;
            let mut combined = channel_recv(&vm2, &channel)?;
            combined.append(data2);
            channel_send(&vm2, &channel, &combined)?;
            channel.close();
            server.close();
            Ok(())
        });
        let channel = SocketChannel::connect(&ctx.vm1, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        channel_send(&ctx.vm1, &channel, &ctx.data1)?;
        let back = channel_recv(&ctx.vm1, &channel)?;
        channel.close();
        server_thread.join().expect("server thread panicked")?;
        Ok(back)
    }
}

// ----------------------------------------------- JRE DatagramChannel

struct DatagramChannelCase;

impl MicroCase for DatagramChannelCase {
    fn name(&self) -> &'static str {
        "jre_datagram_channel"
    }

    fn family(&self) -> Family {
        Family::JreDatagramChannel
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let capacity = ctx.data1.len() + ctx.data2.len() + 64;
        let server =
            dista_jre::DatagramChannel::bind(&ctx.vm2, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let vm2 = ctx.vm2.clone();
        let data2 = ctx.data2.clone();
        let server_thread = std::thread::spawn(move || -> Result<(), JreError> {
            let mut inbuf = DirectByteBuffer::allocate_direct(&vm2, capacity);
            let from = server.receive(&mut inbuf)?;
            inbuf.flip();
            let mut combined = inbuf.get(capacity);
            combined.append(data2);
            let mut outbuf = DirectByteBuffer::allocate_direct(&vm2, combined.len());
            outbuf.put(&combined)?;
            outbuf.flip();
            server.send(&mut outbuf, from)?;
            server.close();
            Ok(())
        });
        let client =
            dista_jre::DatagramChannel::bind(&ctx.vm1, NodeAddr::new(ctx.vm1.ip(), ctx.port))?;
        let mut outbuf = DirectByteBuffer::allocate_direct(&ctx.vm1, ctx.data1.len());
        outbuf.put(&ctx.data1)?;
        outbuf.flip();
        client.send(&mut outbuf, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let mut inbuf = DirectByteBuffer::allocate_direct(&ctx.vm1, capacity);
        client.receive(&mut inbuf)?;
        inbuf.flip();
        let back = inbuf.get(capacity);
        client.close();
        server_thread.join().expect("server thread panicked")?;
        Ok(back)
    }
}

// ------------------------------------------------------------ JRE AIO

struct AioCase;

impl MicroCase for AioCase {
    fn name(&self) -> &'static str {
        "jre_async_socket_channel"
    }

    fn family(&self) -> Family {
        Family::JreAsyncSocketChannel
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let server =
            AsyncServerSocketChannel::bind(&ctx.vm2, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let accept = server.accept_async();
        let client =
            AsyncSocketChannel::connect(&ctx.vm1, NodeAddr::new(ctx.vm2.ip(), ctx.port)).get()?;
        let served = accept.get()?;

        let vm1 = ctx.vm1.clone();
        let data2 = ctx.data2.clone();
        let server_side = std::thread::spawn(move || -> Result<(), JreError> {
            let header = served.read_exact_async(4).get()?;
            let d = header.data();
            let len = u32::from_be_bytes([d[0], d[1], d[2], d[3]]) as usize;
            let mut combined = served.read_exact_async(len).get()?;
            combined.append(data2);
            let vm = served.vm().clone();
            served.write_async(frame_payload(&vm, &combined)).get()?;
            served.close();
            Ok(())
        });

        client.write_async(frame_payload(&vm1, &ctx.data1)).get()?;
        let header = client.read_exact_async(4).get()?;
        let d = header.data();
        let len = u32::from_be_bytes([d[0], d[1], d[2], d[3]]) as usize;
        let back = client.read_exact_async(len).get()?;
        client.close();
        server.close();
        server_side.join().expect("server side panicked")?;
        Ok(back)
    }
}

// ----------------------------------------------------------- JRE HTTP

struct HttpCase;

impl MicroCase for HttpCase {
    fn name(&self) -> &'static str {
        "jre_http"
    }

    fn family(&self) -> Family {
        Family::JreHttp
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let server = HttpServer::bind(&ctx.vm2, NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let addr = server.local_addr();
        let data2 = ctx.data2.clone();
        let server_thread = std::thread::spawn(move || -> Result<(), JreError> {
            server.serve_once(move |request| {
                let mut combined = request.body;
                combined.append(data2);
                HttpResponse::ok(combined)
            })?;
            server.close();
            Ok(())
        });
        let response = HttpClient::new(&ctx.vm1).post(addr, "/combine", ctx.data1.clone())?;
        server_thread.join().expect("server thread panicked")?;
        if response.status != 200 {
            return Err(JreError::Protocol("http case failed"));
        }
        Ok(response.body)
    }
}

// -------------------------------------------------------------- Netty

struct NettySocketCase;

impl MicroCase for NettySocketCase {
    fn name(&self) -> &'static str {
        "netty_socket"
    }

    fn family(&self) -> Family {
        Family::NettySocket
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let data2 = Arc::new(ctx.data2.clone());
        let server = ServerBootstrap::new(&ctx.vm2)
            .child_handler(move |handler_ctx, msg| {
                let mut combined = msg;
                combined.append((*data2).clone());
                let _ = handler_ctx.write(&combined);
            })
            .bind(NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let channel = Bootstrap::new(&ctx.vm1).connect(server.local_addr())?;
        let back = channel.call(&ctx.data1)?;
        channel.close();
        server.shutdown();
        Ok(back)
    }
}

struct NettyDatagramCase;

impl MicroCase for NettyDatagramCase {
    fn name(&self) -> &'static str {
        "netty_datagram"
    }

    fn family(&self) -> Family {
        Family::NettyDatagram
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let capacity = ctx.data1.len() + ctx.data2.len() + 64;
        let server = DatagramBootstrap::bind(&ctx.vm2, NodeAddr::new(ctx.vm2.ip(), ctx.port))?
            .recv_capacity(capacity);
        let data2 = ctx.data2.clone();
        let server_thread = std::thread::spawn(move || -> Result<(), JreError> {
            let (msg, from) = server.receive()?;
            let mut combined = msg;
            combined.append(data2);
            server.send(from, &combined)?;
            server.close();
            Ok(())
        });
        let client = DatagramBootstrap::bind(&ctx.vm1, NodeAddr::new(ctx.vm1.ip(), ctx.port))?
            .recv_capacity(capacity);
        client.send(NodeAddr::new(ctx.vm2.ip(), ctx.port), &ctx.data1)?;
        let (back, _) = client.receive()?;
        client.close();
        server_thread.join().expect("server thread panicked")?;
        Ok(back)
    }
}

struct NettyHttpCase;

impl MicroCase for NettyHttpCase {
    fn name(&self) -> &'static str {
        "netty_http"
    }

    fn family(&self) -> Family {
        Family::NettyHttp
    }

    fn round_trip(&self, ctx: &CaseCtx) -> Result<Payload, JreError> {
        let data2 = Arc::new(ctx.data2.clone());
        let server = ServerBootstrap::new(&ctx.vm2)
            .child_handler(move |handler_ctx, frame| {
                let Ok(request) = decode_http_request(&frame) else {
                    return;
                };
                let mut combined = request.body;
                combined.append((*data2).clone());
                let response = encode_http_response(&HttpResponse::ok(combined));
                let _ = handler_ctx.write(&response);
            })
            .bind(NodeAddr::new(ctx.vm2.ip(), ctx.port))?;
        let channel = Bootstrap::new(&ctx.vm1).connect(server.local_addr())?;
        let request = dista_jre::HttpRequest::post("/combine", ctx.data1.clone());
        let reply = channel.call(&encode_http_request(&request))?;
        let response = decode_http_response(&reply)?;
        channel.close();
        server.shutdown();
        if response.status != 200 {
            return Err(JreError::Protocol("netty http case failed"));
        }
        Ok(response.body)
    }
}

// ------------------------------------------------------------ roster

macro_rules! socket_case {
    ($name:literal, $codec:expr) => {
        Box::new(SocketCase {
            name: $name,
            codec: &$codec,
        }) as Box<dyn MicroCase>
    };
}

/// All 30 micro-benchmark cases, in Table II order: the 22 JRE Socket
/// variants first, then one case per remaining protocol family.
pub fn all_cases() -> Vec<Box<dyn MicroCase>> {
    vec![
        socket_case!("socket_raw_array", RawArray),
        socket_case!("socket_single_byte", SingleByte),
        socket_case!("socket_buffered_8k", Buffered(8192)),
        socket_case!("socket_buffered_64", Buffered(64)),
        socket_case!("socket_data_int", DataInt),
        socket_case!("socket_data_long", DataLong),
        socket_case!("socket_data_short", DataShort),
        socket_case!("socket_data_byte", DataByte),
        socket_case!("socket_data_bool", DataBool),
        socket_case!("socket_data_float", DataFloat),
        socket_case!("socket_data_double", DataDouble),
        socket_case!("socket_data_utf", DataUtf),
        socket_case!("socket_data_chars", DataChars),
        socket_case!("socket_data_int_array", DataIntArray),
        socket_case!("socket_obj_string", ObjString),
        socket_case!("socket_obj_record", ObjRecord),
        socket_case!("socket_obj_list", ObjList),
        socket_case!("socket_obj_bytes", ObjBytes),
        socket_case!("socket_buffered_data", BufferedData),
        socket_case!("socket_buffered_obj", BufferedObj),
        socket_case!("socket_chunked_exact", ChunkedExact),
        socket_case!("socket_line_writer", LineWriter),
        Box::new(DatagramCase),
        Box::new(SocketChannelCase),
        Box::new(DatagramChannelCase),
        Box::new(AioCase),
        Box::new(HttpCase),
        Box::new(NettySocketCase),
        Box::new(NettyDatagramCase),
        Box::new(NettyHttpCase),
    ]
}

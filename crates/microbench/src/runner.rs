//! Case execution and verification.

use std::sync::atomic::{AtomicU16, Ordering};
use std::time::{Duration, Instant};

use dista_core::{Cluster, DistaError};
use dista_jre::{JreError, Mode, Vm};
use dista_taint::{Payload, TagValue, TaintedBytes};

use crate::cases::{CaseCtx, Family, MicroCase};
use crate::{DATA1_TAG, DATA2_TAG};

/// Outcome of one case execution.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name.
    pub name: &'static str,
    /// Protocol family.
    pub family: Family,
    /// Mode the case ran in.
    pub mode: Mode,
    /// Wall-clock duration of the round trip.
    pub duration: Duration,
    /// Tag values observed by `check()` at node 1, sorted.
    pub tags_at_check: Vec<String>,
    /// Whether the returned bytes equal `Data1 ++ Data2`.
    pub data_ok: bool,
    /// The data bytes actually delivered back to node 1 — what a
    /// differential check compares across modes (tracking must never
    /// change a single payload byte).
    pub delivered: Vec<u8>,
    /// Payload size used for `Data1` (bytes).
    pub size: usize,
}

impl CaseResult {
    /// The paper's RQ1 criterion: in DisTA mode, `check()` must observe
    /// exactly `{Data1, Data2}` — no tag dropped (sound), none invented
    /// (precise) — and the data must be intact. In Phosphor/Original
    /// modes the data must be intact and no taint may appear.
    pub fn sound_and_precise(&self) -> bool {
        if !self.data_ok {
            return false;
        }
        match self.mode {
            Mode::Dista => self.tags_at_check == vec![DATA1_TAG.to_string(), DATA2_TAG.to_string()],
            _ => self.tags_at_check.is_empty(),
        }
    }
}

/// Deterministic ASCII payload (valid UTF-8 for the text codecs).
fn generate_ascii(size: usize) -> Vec<u8> {
    const ALPHABET: &[u8] = b"the quick brown fox jumps over the lazy dog 0123456789 ";
    (0..size).map(|i| ALPHABET[i % ALPHABET.len()]).collect()
}

fn make_data(vm: &Vm, tag: &str, size: usize) -> Payload {
    let bytes = generate_ascii(size);
    if vm.mode().tracks_taints() {
        let taint = vm.taint_source(TagValue::str(tag));
        Payload::Tainted(TaintedBytes::uniform(bytes, taint))
    } else {
        Payload::Plain(bytes)
    }
}

static NEXT_PORT: AtomicU16 = AtomicU16::new(20_000);

/// Runs one case on an existing two-node cluster (used by benches to
/// amortize cluster setup). `size` is the `Data1` byte count; `Data2`
/// has the same size.
///
/// # Errors
///
/// The case's transport/protocol errors.
pub fn run_case_on(
    case: &dyn MicroCase,
    vm1: &Vm,
    vm2: &Vm,
    size: usize,
) -> Result<CaseResult, JreError> {
    let port = NEXT_PORT.fetch_add(1, Ordering::Relaxed);
    let ctx = CaseCtx {
        vm1: vm1.clone(),
        vm2: vm2.clone(),
        port,
        data1: make_data(vm1, DATA1_TAG, size),
        data2: make_data(vm2, DATA2_TAG, size),
    };
    let expected: Vec<u8> = {
        let mut e = generate_ascii(size);
        e.extend(generate_ascii(size));
        e
    };
    let start = Instant::now();
    let back = case.round_trip(&ctx)?;
    let duration = start.elapsed();

    // check(): the sink point on node 1.
    let taint = back.taint_union(vm1.store());
    vm1.taint_sink("check", taint);
    let mut tags = vm1.store().tag_values(taint);
    tags.sort();
    Ok(CaseResult {
        name: case.name(),
        family: case.family(),
        mode: vm1.mode(),
        duration,
        tags_at_check: tags,
        data_ok: back.data() == expected,
        delivered: back.into_plain(),
        size,
    })
}

/// Runs one case on a fresh two-node cluster in the given mode.
///
/// # Errors
///
/// Cluster setup or case errors.
pub fn run_case(case: &dyn MicroCase, mode: Mode, size: usize) -> Result<CaseResult, DistaError> {
    run_case_with(case, mode, size, dista_simnet::FaultConfig::default())
}

/// Runs one case on a fresh two-node cluster pinned to the given wire
/// protocol (homogeneous across both nodes — pinned v2 is
/// homogeneous-only by construction).
///
/// # Errors
///
/// Cluster setup or case errors.
pub fn run_case_wire(
    case: &dyn MicroCase,
    mode: Mode,
    size: usize,
    protocol: dista_jre::WireProtocol,
) -> Result<CaseResult, DistaError> {
    let cluster = Cluster::builder(mode)
        .nodes("micro", 2)
        .wire_protocol(protocol)
        .build()?;
    let result = run_case_on(case, cluster.vm(0), cluster.vm(1), size);
    cluster.shutdown();
    Ok(result?)
}

/// Runs one case on a fresh two-node cluster with an explicit network
/// model (fragmentation, drops, link bandwidth).
///
/// # Errors
///
/// Cluster setup or case errors.
pub fn run_case_with(
    case: &dyn MicroCase,
    mode: Mode,
    size: usize,
    faults: dista_simnet::FaultConfig,
) -> Result<CaseResult, DistaError> {
    let cluster = Cluster::builder(mode).nodes("micro", 2).build()?;
    cluster.net().set_faults(faults);
    let result = run_case_on(case, cluster.vm(0), cluster.vm(1), size);
    cluster.shutdown();
    Ok(result?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_cases;

    #[test]
    fn raw_case_sound_in_dista_mode() {
        let cases = all_cases();
        let result = run_case(cases[0].as_ref(), Mode::Dista, 2048).unwrap();
        assert!(result.data_ok);
        assert_eq!(result.tags_at_check, vec!["Data1", "Data2"]);
        assert!(result.sound_and_precise());
    }

    #[test]
    fn raw_case_unsound_in_phosphor_mode() {
        let cases = all_cases();
        let result = run_case(cases[0].as_ref(), Mode::Phosphor, 2048).unwrap();
        assert!(result.data_ok);
        assert!(result.tags_at_check.is_empty());
        assert!(result.sound_and_precise(), "phosphor criterion: no taint");
    }

    #[test]
    fn original_mode_moves_plain_data() {
        let cases = all_cases();
        let result = run_case(cases[0].as_ref(), Mode::Original, 2048).unwrap();
        assert!(result.data_ok);
        assert!(result.tags_at_check.is_empty());
    }

    #[test]
    fn generated_payload_is_ascii() {
        let data = generate_ascii(1000);
        assert!(std::str::from_utf8(&data).is_ok());
        assert_eq!(data.len(), 1000);
    }
}

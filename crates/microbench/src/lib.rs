//! # dista-microbench — the 30-case micro benchmark (paper Table II)
//!
//! "We implement 30 test cases for different network communication APIs
//! and protocols" (§V-A): 22 JRE Socket cases exercising different
//! stream classes and data kinds, plus JRE Datagram, JRE SocketChannel,
//! JRE DatagramChannel, JRE AsyncSocketChannel (AIO), JRE HTTP, and three
//! Netty cases (Socket, DatagramSocket, HTTP).
//!
//! Every case runs the Fig.-10 workload: Node 1 sends `Data1` to Node 2;
//! Node 2 combines it with its own `Data2` and sends the combination
//! back; Node 1 runs `check()` on what it received. `Data1`/`Data2` are
//! the taint sources and `check()` is the sink — a sound and precise run
//! observes exactly the two tags `{Data1, Data2}` at the sink.
//!
//! # Example
//!
//! ```rust
//! use dista_microbench::{all_cases, run_case, Mode};
//!
//! let cases = all_cases();
//! assert_eq!(cases.len(), 30);
//! let result = run_case(cases[0].as_ref(), Mode::Dista, 4 * 1024)?;
//! assert!(result.sound_and_precise());
//! # Ok::<(), dista_core::DistaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cases;
mod runner;
mod socket_codecs;

pub use cases::{all_cases, Family, MicroCase};
pub use runner::{run_case, run_case_on, run_case_wire, run_case_with, CaseResult};

pub use dista_jre::{Mode, WireProtocol};

/// The tag value given to Node 1's source data.
pub const DATA1_TAG: &str = "Data1";
/// The tag value given to Node 2's source data.
pub const DATA2_TAG: &str = "Data2";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_30_cases() {
        // Table II: 22 JRE Socket + 8 other protocol cases.
        let cases = all_cases();
        assert_eq!(cases.len(), 30);
        let sockets = cases
            .iter()
            .filter(|c| c.family() == Family::JreSocket)
            .count();
        assert_eq!(sockets, 22);
        for family in [
            Family::JreDatagram,
            Family::JreSocketChannel,
            Family::JreDatagramChannel,
            Family::JreAsyncSocketChannel,
            Family::JreHttp,
            Family::NettySocket,
            Family::NettyDatagram,
            Family::NettyHttp,
        ] {
            assert_eq!(
                cases.iter().filter(|c| c.family() == family).count(),
                1,
                "{family:?} should have exactly one case"
            );
        }
    }

    #[test]
    fn case_names_are_unique() {
        let cases = all_cases();
        let mut names: Vec<&str> = cases.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}

//! The 22 JRE-Socket codecs: each sends/receives the case payload
//! through a different stream-class / data-kind combination, mirroring
//! Table II's "users can invoke different I/O interfaces in different
//! stream classes to read / write different kinds of data".
//!
//! All payloads are ASCII text (the paper uses large int arrays, long
//! text strings and HTML pages), so every codec can round-trip the same
//! generator output.

use dista_jre::{
    BufferedInputStream, BufferedOutputStream, InputStream, JreError, ObjValue, ObjectInputStream,
    ObjectOutputStream, OutputStream, Socket, Vm,
};
use dista_taint::Tainted;
use dista_taint::{Payload, Taint, TaintedBytes};

pub(crate) use dista_jre::{DataInputStream, DataOutputStream};

/// A strategy for moving one payload across a socket.
pub(crate) trait SocketCodec: Sync + Send {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError>;
    fn recv(&self, socket: &Socket) -> Result<Payload, JreError>;
}

/// Mode-aware payload accumulator: plain runs never allocate shadows.
struct PayloadBuilder {
    tracked: bool,
    tainted: TaintedBytes,
    plain: Vec<u8>,
}

impl PayloadBuilder {
    fn new(vm: &Vm, capacity: usize) -> Self {
        let tracked = vm.mode().tracks_taints();
        PayloadBuilder {
            tracked,
            tainted: if tracked {
                TaintedBytes::with_capacity(capacity)
            } else {
                TaintedBytes::new()
            },
            plain: if tracked {
                Vec::new()
            } else {
                Vec::with_capacity(capacity)
            },
        }
    }

    fn push(&mut self, bytes: &[u8], taint: Taint) {
        if self.tracked {
            self.tainted.extend_uniform(bytes, taint);
        } else {
            self.plain.extend_from_slice(bytes);
        }
    }

    fn push_payload(&mut self, payload: Payload) {
        if self.tracked {
            match payload {
                Payload::Plain(d) => self.tainted.extend_plain(&d),
                Payload::Tainted(t) => self.tainted.extend_tainted(&t),
            }
        } else {
            self.plain.extend_from_slice(payload.data());
        }
    }

    fn finish(self) -> Payload {
        if self.tracked {
            Payload::Tainted(self.tainted)
        } else {
            Payload::Plain(self.plain)
        }
    }
}

/// Taint of `data[start..end]` (empty for plain payloads).
fn span_taint(data: &Payload, start: usize, end: usize, vm: &Vm) -> Taint {
    match data {
        Payload::Plain(_) => Taint::EMPTY,
        Payload::Tainted(t) => t.slice(start, end).taint_union(vm.store()),
    }
}

fn write_len(out: &impl OutputStream, len: usize) -> Result<(), JreError> {
    out.write(&Payload::Plain((len as u32).to_be_bytes().to_vec()))
}

fn read_len(input: &impl InputStream) -> Result<usize, JreError> {
    let header = input.read_exact(4)?;
    let d = header.data();
    Ok(u32::from_be_bytes([d[0], d[1], d[2], d[3]]) as usize)
}

// ---------------------------------------------------------------- raw

/// `OutputStream.write(byte[])` / `InputStream.read(byte[])`.
pub(crate) struct RawArray;

impl SocketCodec for RawArray {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = socket.output_stream();
        write_len(&out, data.len())?;
        out.write(data)
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = socket.input_stream();
        let len = read_len(&input)?;
        input.read_exact(len)
    }
}

/// `OutputStream.write(int)` — one byte per call.
pub(crate) struct SingleByte;

impl SocketCodec for SingleByte {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = socket.output_stream();
        write_len(&out, data.len())?;
        match data {
            Payload::Plain(d) => {
                for &b in d {
                    out.write_u8(Tainted::untainted(b))?;
                }
            }
            Payload::Tainted(t) => {
                for (b, taint) in t.iter() {
                    out.write_u8(Tainted::new(b, taint))?;
                }
            }
        }
        Ok(())
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = socket.input_stream();
        let len = read_len(&input)?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        for _ in 0..len {
            let byte = input.read_u8()?.ok_or(JreError::Eof)?;
            builder.push(&[*byte.value()], byte.taint());
        }
        Ok(builder.finish())
    }
}

/// Buffered writes/reads with a configurable buffer size.
pub(crate) struct Buffered(pub usize);

impl SocketCodec for Buffered {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = BufferedOutputStream::with_capacity(socket.output_stream(), self.0);
        write_len(&out, data.len())?;
        // Write in 1 KiB slices so the buffer actually coalesces.
        let mut pos = 0;
        while pos < data.len() {
            let end = (pos + 1024).min(data.len());
            out.write(&data.slice(pos, end))?;
            pos = end;
        }
        out.flush()
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = BufferedInputStream::with_capacity(socket.input_stream(), self.0);
        let len = read_len(&input)?;
        input.read_exact(len)
    }
}

// ------------------------------------------------------ data streams

macro_rules! numeric_codec {
    ($name:ident, $width:literal, $write:ident, $read:ident, $to:expr, $from:expr) => {
        /// `DataOutputStream` numeric codec (fixed-width chunks).
        pub(crate) struct $name;

        impl SocketCodec for $name {
            fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
                let out = DataOutputStream::new(socket.output_stream());
                let vm = socket.vm();
                write_len(&out, data.len())?;
                let bytes = data.data();
                let mut pos = 0;
                while pos < bytes.len() {
                    let end = (pos + $width).min(bytes.len());
                    let mut chunk = [0u8; $width];
                    chunk[..end - pos].copy_from_slice(&bytes[pos..end]);
                    let taint = span_taint(data, pos, end, vm);
                    #[allow(clippy::redundant_closure_call)]
                    out.$write(Tainted::new(($to)(chunk), taint))?;
                    pos = end;
                }
                Ok(())
            }

            fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
                let input = DataInputStream::new(socket.input_stream());
                let len = read_len(&input)?;
                let mut builder = PayloadBuilder::new(socket.vm(), len);
                let mut remaining = len;
                while remaining > 0 {
                    let value = input.$read()?;
                    #[allow(clippy::redundant_closure_call)]
                    let chunk: [u8; $width] = ($from)(*value.value());
                    let take = remaining.min($width);
                    builder.push(&chunk[..take], value.taint());
                    remaining -= take;
                }
                Ok(builder.finish())
            }
        }
    };
}

numeric_codec!(
    DataInt,
    4,
    write_i32,
    read_i32,
    |c: [u8; 4]| i32::from_be_bytes(c),
    |v: i32| v.to_be_bytes()
);
numeric_codec!(
    DataLong,
    8,
    write_i64,
    read_i64,
    |c: [u8; 8]| i64::from_be_bytes(c),
    |v: i64| v.to_be_bytes()
);
numeric_codec!(
    DataShort,
    2,
    write_i16,
    read_i16,
    |c: [u8; 2]| i16::from_be_bytes(c),
    |v: i16| v.to_be_bytes()
);
numeric_codec!(
    DataFloat,
    4,
    write_f32,
    read_f32,
    |c: [u8; 4]| f32::from_bits(u32::from_be_bytes(c)),
    |v: f32| v.to_bits().to_be_bytes()
);
numeric_codec!(
    DataDouble,
    8,
    write_f64,
    read_f64,
    |c: [u8; 8]| f64::from_bits(u64::from_be_bytes(c)),
    |v: f64| v.to_bits().to_be_bytes()
);

/// `DataOutputStream.writeByte` per byte.
pub(crate) struct DataByte;

impl SocketCodec for DataByte {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = DataOutputStream::new(socket.output_stream());
        let vm = socket.vm();
        write_len(&out, data.len())?;
        for (i, &b) in data.data().iter().enumerate() {
            out.write_u8(Tainted::new(b, span_taint(data, i, i + 1, vm)))?;
        }
        Ok(())
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = DataInputStream::new(socket.input_stream());
        let len = read_len(&input)?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        for _ in 0..len {
            let b = input.read_u8()?;
            builder.push(&[*b.value()], b.taint());
        }
        Ok(builder.finish())
    }
}

/// `DataOutputStream.writeBoolean` — eight booleans per data byte.
pub(crate) struct DataBool;

impl SocketCodec for DataBool {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = DataOutputStream::new(socket.output_stream());
        let vm = socket.vm();
        write_len(&out, data.len())?;
        for (i, &b) in data.data().iter().enumerate() {
            let taint = span_taint(data, i, i + 1, vm);
            for bit in 0..8 {
                out.write_bool(Tainted::new(b & (1 << bit) != 0, taint))?;
            }
        }
        Ok(())
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = DataInputStream::new(socket.input_stream());
        let len = read_len(&input)?;
        let vm = socket.vm().clone();
        let mut builder = PayloadBuilder::new(&vm, len);
        for _ in 0..len {
            let mut byte = 0u8;
            let mut taint = Taint::EMPTY;
            for bit in 0..8 {
                let flag = input.read_bool()?;
                if *flag.value() {
                    byte |= 1 << bit;
                }
                taint = vm.store().union(taint, flag.taint());
            }
            builder.push(&[byte], taint);
        }
        Ok(builder.finish())
    }
}

const TEXT_CHUNK: usize = 4096;

/// `DataOutputStream.writeUTF` in ≤4 KiB chunks.
pub(crate) struct DataUtf;

impl SocketCodec for DataUtf {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = DataOutputStream::new(socket.output_stream());
        let vm = socket.vm();
        write_len(&out, data.len())?;
        let bytes = data.data();
        let mut pos = 0;
        while pos < bytes.len() {
            let end = (pos + TEXT_CHUNK).min(bytes.len());
            let text = std::str::from_utf8(&bytes[pos..end])
                .map_err(|_| JreError::Protocol("payload is not utf-8"))?
                .to_string();
            out.write_utf(&Tainted::new(text, span_taint(data, pos, end, vm)))?;
            pos = end;
        }
        Ok(())
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = DataInputStream::new(socket.input_stream());
        let len = read_len(&input)?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        let mut got = 0;
        while got < len {
            let chunk = input.read_utf()?;
            got += chunk.value().len();
            builder.push(chunk.value().as_bytes(), chunk.taint());
        }
        Ok(builder.finish())
    }
}

/// `DataOutputStream.writeChars` — the whole payload as one char run.
pub(crate) struct DataChars;

impl SocketCodec for DataChars {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = DataOutputStream::new(socket.output_stream());
        let vm = socket.vm();
        let text = std::str::from_utf8(data.data())
            .map_err(|_| JreError::Protocol("payload is not utf-8"))?
            .to_string();
        write_len(&out, text.len())?; // ASCII: chars == bytes
        out.write_chars(&Tainted::new(text, span_taint(data, 0, data.len(), vm)))
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = DataInputStream::new(socket.input_stream());
        let len = read_len(&input)?;
        let chunk = input.read_chars(len)?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        builder.push(chunk.value().as_bytes(), chunk.taint());
        Ok(builder.finish())
    }
}

/// `DataOutputStream.writeInt` on an int array (`write_i32_array`).
pub(crate) struct DataIntArray;

impl SocketCodec for DataIntArray {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = DataOutputStream::new(socket.output_stream());
        let vm = socket.vm();
        write_len(&out, data.len())?;
        let bytes = data.data();
        let mut values = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut pos = 0;
        while pos < bytes.len() {
            let end = (pos + 4).min(bytes.len());
            let mut chunk = [0u8; 4];
            chunk[..end - pos].copy_from_slice(&bytes[pos..end]);
            values.push(Tainted::new(
                i32::from_be_bytes(chunk),
                span_taint(data, pos, end, vm),
            ));
            pos = end;
        }
        out.write_i32_array(&values)
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = DataInputStream::new(socket.input_stream());
        let len = read_len(&input)?;
        let values = input.read_i32_array()?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        let mut remaining = len;
        for value in values {
            let chunk = value.value().to_be_bytes();
            let take = remaining.min(4);
            builder.push(&chunk[..take], value.taint());
            remaining -= take;
        }
        Ok(builder.finish())
    }
}

// ---------------------------------------------------- object streams

fn payload_to_obj_bytes(data: &Payload) -> TaintedBytes {
    match data {
        Payload::Plain(d) => TaintedBytes::from_plain(d.clone()),
        Payload::Tainted(t) => t.clone(),
    }
}

fn obj_bytes_to_payload(bytes: TaintedBytes, vm: &Vm) -> Payload {
    if vm.mode().tracks_taints() {
        Payload::Tainted(bytes)
    } else {
        Payload::Plain(bytes.into_plain())
    }
}

/// `ObjectOutputStream.writeObject` of a single String.
pub(crate) struct ObjString;

impl SocketCodec for ObjString {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = ObjectOutputStream::new(socket.output_stream());
        let vm = socket.vm();
        let text = String::from_utf8(data.data().to_vec())
            .map_err(|_| JreError::Protocol("payload is not utf-8"))?;
        out.write_object(&ObjValue::Str(text, span_taint(data, 0, data.len(), vm)))
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = ObjectInputStream::new(socket.input_stream());
        let obj = input.read_object()?;
        match obj {
            ObjValue::Str(s, taint) => {
                let mut builder = PayloadBuilder::new(socket.vm(), s.len());
                builder.push(s.as_bytes(), taint);
                Ok(builder.finish())
            }
            _ => Err(JreError::Protocol("expected a String object")),
        }
    }
}

/// `writeObject` of a record with a long text field (the paper's
/// "object with a long text String field").
pub(crate) struct ObjRecord;

impl SocketCodec for ObjRecord {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = ObjectOutputStream::new(socket.output_stream());
        out.write_object(&ObjValue::Record(
            "Document".into(),
            vec![
                ("title".into(), ObjValue::str_plain("micro-benchmark")),
                ("body".into(), ObjValue::Bytes(payload_to_obj_bytes(data))),
            ],
        ))
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = ObjectInputStream::new(socket.input_stream());
        let obj = input.read_object()?;
        match obj.field("body") {
            Some(ObjValue::Bytes(b)) => Ok(obj_bytes_to_payload(b.clone(), socket.vm())),
            _ => Err(JreError::Protocol("expected a Document record")),
        }
    }
}

/// `writeObject` of a list of String chunks.
pub(crate) struct ObjList;

impl SocketCodec for ObjList {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = ObjectOutputStream::new(socket.output_stream());
        let vm = socket.vm();
        let bytes = data.data();
        let mut items = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let end = (pos + TEXT_CHUNK).min(bytes.len());
            let text = std::str::from_utf8(&bytes[pos..end])
                .map_err(|_| JreError::Protocol("payload is not utf-8"))?
                .to_string();
            items.push(ObjValue::Str(text, span_taint(data, pos, end, vm)));
            pos = end;
        }
        out.write_object(&ObjValue::List(items))
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = ObjectInputStream::new(socket.input_stream());
        let obj = input.read_object()?;
        let ObjValue::List(items) = obj else {
            return Err(JreError::Protocol("expected a List object"));
        };
        let mut builder = PayloadBuilder::new(socket.vm(), items.len() * TEXT_CHUNK);
        for item in items {
            match item {
                ObjValue::Str(s, taint) => builder.push(s.as_bytes(), taint),
                _ => return Err(JreError::Protocol("expected String items")),
            }
        }
        Ok(builder.finish())
    }
}

/// `writeObject` of a raw byte-array object.
pub(crate) struct ObjBytes;

impl SocketCodec for ObjBytes {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = ObjectOutputStream::new(socket.output_stream());
        out.write_object(&ObjValue::Bytes(payload_to_obj_bytes(data)))
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = ObjectInputStream::new(socket.input_stream());
        match input.read_object()? {
            ObjValue::Bytes(b) => Ok(obj_bytes_to_payload(b, socket.vm())),
            _ => Err(JreError::Protocol("expected a byte-array object")),
        }
    }
}

// --------------------------------------------------- stacked streams

/// `DataOutputStream` over `BufferedOutputStream` (stacked wrappers).
pub(crate) struct BufferedData;

impl SocketCodec for BufferedData {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = DataOutputStream::new(BufferedOutputStream::new(socket.output_stream()));
        let vm = socket.vm();
        write_len(&out, data.len())?;
        let bytes = data.data();
        let mut pos = 0;
        while pos < bytes.len() {
            let end = (pos + 4).min(bytes.len());
            let mut chunk = [0u8; 4];
            chunk[..end - pos].copy_from_slice(&bytes[pos..end]);
            out.write_i32(Tainted::new(
                i32::from_be_bytes(chunk),
                span_taint(data, pos, end, vm),
            ))?;
            pos = end;
        }
        out.flush()
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = DataInputStream::new(BufferedInputStream::new(socket.input_stream()));
        let len = read_len(&input)?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        let mut remaining = len;
        while remaining > 0 {
            let value = input.read_i32()?;
            let chunk = value.value().to_be_bytes();
            let take = remaining.min(4);
            builder.push(&chunk[..take], value.taint());
            remaining -= take;
        }
        Ok(builder.finish())
    }
}

/// `ObjectOutputStream` over `BufferedOutputStream`.
pub(crate) struct BufferedObj;

impl SocketCodec for BufferedObj {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = ObjectOutputStream::new(BufferedOutputStream::new(socket.output_stream()));
        out.write_object(&ObjValue::Bytes(payload_to_obj_bytes(data)))
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = ObjectInputStream::new(BufferedInputStream::new(socket.input_stream()));
        match input.read_object()? {
            ObjValue::Bytes(b) => Ok(obj_bytes_to_payload(b, socket.vm())),
            _ => Err(JreError::Protocol("expected a byte-array object")),
        }
    }
}

/// Many small `write(byte[], off, len)` slices; reads in ≤512-byte
/// chunks (partial-read heavy).
pub(crate) struct ChunkedExact;

impl SocketCodec for ChunkedExact {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = socket.output_stream();
        write_len(&out, data.len())?;
        let mut pos = 0;
        while pos < data.len() {
            let end = (pos + 1024).min(data.len());
            out.write(&data.slice(pos, end))?;
            pos = end;
        }
        Ok(())
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = socket.input_stream();
        let len = read_len(&input)?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        let mut got = 0;
        while got < len {
            let chunk = input.read((len - got).min(512))?;
            if chunk.is_empty() {
                return Err(JreError::Eof);
            }
            got += chunk.len();
            builder.push_payload(chunk);
        }
        Ok(builder.finish())
    }
}

/// Newline-terminated text lines (PrintWriter-style I/O).
pub(crate) struct LineWriter;

impl SocketCodec for LineWriter {
    fn send(&self, socket: &Socket, data: &Payload) -> Result<(), JreError> {
        let out = socket.output_stream();
        let vm = socket.vm();
        write_len(&out, data.len())?;
        let bytes = data.data();
        let mut pos = 0;
        while pos < bytes.len() {
            let end = (pos + 80).min(bytes.len());
            let taint = span_taint(data, pos, end, vm);
            let mut line = bytes[pos..end].to_vec();
            line.push(b'\n');
            if vm.mode().tracks_taints() {
                let mut tb = TaintedBytes::uniform(line, taint);
                // The terminator itself is protocol scaffolding.
                tb.truncate(end - pos);
                tb.extend_plain(b"\n");
                out.write(&Payload::Tainted(tb))?;
            } else {
                out.write(&Payload::Plain(line))?;
            }
            pos = end;
        }
        Ok(())
    }

    fn recv(&self, socket: &Socket) -> Result<Payload, JreError> {
        let input = socket.input_stream();
        let len = read_len(&input)?;
        let mut builder = PayloadBuilder::new(socket.vm(), len);
        let mut got = 0;
        while got < len {
            // Read one line byte-by-byte (readLine semantics).
            loop {
                let byte = input.read_u8()?.ok_or(JreError::Eof)?;
                if *byte.value() == b'\n' {
                    break;
                }
                builder.push(&[*byte.value()], byte.taint());
                got += 1;
            }
        }
        Ok(builder.finish())
    }
}

//! RQ1 over the whole micro benchmark (paper Table II / §V-D): every
//! case must be sound and precise in DisTA mode, must lose inter-node
//! taints in Phosphor mode, and must move data intact in Original mode.

use dista_microbench::{all_cases, run_case, Mode};

const SIZE: usize = 4 * 1024;

#[test]
fn all_30_cases_sound_and_precise_in_dista_mode() {
    for case in all_cases() {
        let result = run_case(case.as_ref(), Mode::Dista, SIZE)
            .unwrap_or_else(|e| panic!("{} failed: {e}", case.name()));
        assert!(result.data_ok, "{}: data corrupted", result.name);
        assert_eq!(
            result.tags_at_check,
            vec!["Data1".to_string(), "Data2".to_string()],
            "{}: wrong tag set at check()",
            result.name
        );
    }
}

#[test]
fn all_30_cases_lose_taints_in_phosphor_mode() {
    for case in all_cases() {
        let result = run_case(case.as_ref(), Mode::Phosphor, SIZE)
            .unwrap_or_else(|e| panic!("{} failed: {e}", case.name()));
        assert!(result.data_ok, "{}: data corrupted", result.name);
        assert!(
            result.tags_at_check.is_empty(),
            "{}: phosphor should drop inter-node taints, saw {:?}",
            result.name,
            result.tags_at_check
        );
    }
}

#[test]
fn all_30_cases_run_clean_in_original_mode() {
    for case in all_cases() {
        let result = run_case(case.as_ref(), Mode::Original, SIZE)
            .unwrap_or_else(|e| panic!("{} failed: {e}", case.name()));
        assert!(result.data_ok, "{}: data corrupted", result.name);
        assert!(
            result.tags_at_check.is_empty(),
            "{}: untracked mode",
            result.name
        );
    }
}

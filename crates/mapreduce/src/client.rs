//! The Yarn client and the end-to-end Pi workload.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

use dista_jre::{JreError, ObjValue, Vm};
use dista_simnet::NodeAddr;
use dista_taint::{TagValue, Taint, Tainted};

use crate::node_manager::NodeManager;
use crate::resource_manager::ResourceManager;
use crate::rpc::RpcClient;
use crate::wordcount::{decode_cells, WordCount};
use crate::YARN_CLIENT_CLASS;
use dista_taint::TaintedBytes;

static NEXT_APP_ID: AtomicI64 = AtomicI64::new(1);

/// The application report returned by `getApplicationReport`.
#[derive(Debug, Clone)]
pub struct ApplicationReport {
    /// The application id, with whatever taint survived the round trip.
    pub app_id: Tainted<i64>,
    /// `RUNNING` or `FINISHED`.
    pub state: String,
    /// The π estimate (taint mirrors the application's).
    pub pi: Tainted<String>,
    /// WordCount results (empty for Pi jobs).
    pub word_counts: Vec<WordCount>,
}

/// A client session against a ResourceManager.
#[derive(Debug)]
pub struct YarnClient {
    vm: Vm,
    rpc: RpcClient,
}

impl YarnClient {
    /// Connects to the RM.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect(vm: &Vm, rm_addr: NodeAddr) -> Result<Self, JreError> {
        Ok(YarnClient {
            vm: vm.clone(),
            rpc: RpcClient::connect(vm, rm_addr)?,
        })
    }

    /// `createApplication`: allocates a fresh ApplicationID — the SDT
    /// source point ("ApplicationID of the job generated on the client",
    /// Table IV).
    pub fn create_application(&self) -> Tainted<i64> {
        let id = NEXT_APP_ID.fetch_add(1, Ordering::Relaxed);
        let taint = self.vm.source_point(
            YARN_CLIENT_CLASS,
            "createApplication",
            TagValue::str(format!("application_{id}")),
        );
        Tainted::new(id, taint)
    }

    /// Submits a WordCount job over `input` (tainted bytes flow through
    /// map, shuffle and reduce back into the report).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn submit_wordcount(
        &self,
        app_id: &Tainted<i64>,
        input: TaintedBytes,
        maps: u64,
        reducers: u64,
    ) -> Result<(), JreError> {
        self.rpc.call(&ObjValue::Record(
            "SubmitApplication".into(),
            vec![
                (
                    "appId".into(),
                    ObjValue::Int(*app_id.value(), app_id.taint()),
                ),
                ("jobType".into(), ObjValue::str_plain("wordcount")),
                ("input".into(), ObjValue::Bytes(input)),
                ("maps".into(), ObjValue::int_plain(maps as i64)),
                ("reducers".into(), ObjValue::int_plain(reducers as i64)),
            ],
        ))?;
        Ok(())
    }

    /// Submits a Pi job.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn submit_pi(
        &self,
        app_id: &Tainted<i64>,
        maps: u64,
        samples: u64,
    ) -> Result<(), JreError> {
        self.rpc.call(&ObjValue::Record(
            "SubmitApplication".into(),
            vec![
                (
                    "appId".into(),
                    ObjValue::Int(*app_id.value(), app_id.taint()),
                ),
                ("maps".into(), ObjValue::int_plain(maps as i64)),
                ("samples".into(), ObjValue::int_plain(samples as i64)),
            ],
        ))?;
        Ok(())
    }

    /// `getApplicationReport` — the SDT sink point: the received report's
    /// taint is checked before the report is returned.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`JreError::Protocol`] on a malformed report.
    pub fn get_application_report(
        &self,
        app_id: &Tainted<i64>,
    ) -> Result<ApplicationReport, JreError> {
        let response = self.rpc.call(&ObjValue::Record(
            "GetApplicationReport".into(),
            vec![(
                "appId".into(),
                ObjValue::Int(*app_id.value(), app_id.taint()),
            )],
        ))?;
        if response.class_name() != Some("ApplicationReport") {
            return Err(JreError::Protocol("bad application report"));
        }
        let (id, id_taint) = match response.field("appId") {
            Some(ObjValue::Int(v, t)) => (*v, *t),
            _ => return Err(JreError::Protocol("report missing appId")),
        };
        let state = response
            .field("state")
            .and_then(ObjValue::as_str)
            .ok_or(JreError::Protocol("report missing state"))?
            .to_string();
        let (pi, pi_taint) = match response.field("pi") {
            Some(ObjValue::Str(s, t)) => (s.clone(), *t),
            _ => return Err(JreError::Protocol("report missing pi")),
        };
        let word_counts = match response.field("wordCounts") {
            Some(cells) => decode_cells(cells)?,
            None => Vec::new(),
        };
        // Sink: check the report's taint (Table IV row 2) — the id, the
        // result value and any word-count taints that arrived with it.
        let mut combined = self.vm.store().union(id_taint, pi_taint);
        for cell in &word_counts {
            combined = self.vm.store().union(combined, cell.word.taint());
        }
        self.vm
            .sink_point(YARN_CLIENT_CLASS, "getApplicationReport", combined);
        Ok(ApplicationReport {
            app_id: Tainted::new(id, id_taint),
            state,
            pi: Tainted::new(pi, pi_taint),
            word_counts,
        })
    }

    /// Polls until the application finishes.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`JreError::Protocol`] if the job never
    /// finishes within the poll budget.
    pub fn await_finished(&self, app_id: &Tainted<i64>) -> Result<ApplicationReport, JreError> {
        for _ in 0..5000 {
            let report = self.get_application_report(app_id)?;
            if report.state == "FINISHED" {
                return Ok(report);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        Err(JreError::Protocol("pi job never finished"))
    }

    /// Closes the session.
    pub fn close(&self) {
        self.rpc.close();
    }
}

/// Result of the end-to-end Pi workload.
#[derive(Debug, Clone)]
pub struct PiJobResult {
    /// The final report.
    pub report: ApplicationReport,
    /// Parsed π estimate.
    pub pi: f64,
    /// The taint observed at the sink, for assertions.
    pub sink_taint: Taint,
}

/// Runs the full Table III workload: stand up RM + NMs, register them,
/// submit the Pi job from the client, poll to completion, tear down.
///
/// `vms` layout: `vms[0]` = ResourceManager, `vms[1..n-1]` = NodeManagers,
/// `vms[n-1]` = client (matching the paper's "1 RM, 1 NM, 1 task
/// container + an extra client node" deployment).
///
/// # Errors
///
/// Any role's transport or protocol error.
///
/// # Panics
///
/// Panics if fewer than three VMs are supplied.
pub fn run_pi_job(vms: &[Vm], maps: u64, samples: u64) -> Result<PiJobResult, JreError> {
    assert!(vms.len() >= 3, "need RM, >=1 NM and a client VM");
    let rm_vm = &vms[0];
    let nm_vms = &vms[1..vms.len() - 1];
    let client_vm = &vms[vms.len() - 1];

    let rm = ResourceManager::start(rm_vm, NodeAddr::new(rm_vm.ip(), 8032))?;
    let mut nms = Vec::new();
    for (i, nm_vm) in nm_vms.iter().enumerate() {
        let nm = NodeManager::start(nm_vm, NodeAddr::new(nm_vm.ip(), 8041 + i as u16))?;
        nm.register_with(rm.addr())?;
        rm.attach_nm(RpcClient::connect(rm_vm, nm.addr())?, nm.addr());
        nms.push(nm);
    }

    let client = YarnClient::connect(client_vm, rm.addr())?;
    let app_id = client.create_application();
    client.submit_pi(&app_id, maps, samples)?;
    let report = client.await_finished(&app_id)?;
    let pi: f64 = report
        .pi
        .value()
        .parse()
        .map_err(|_| JreError::Protocol("unparsable pi"))?;
    let sink_taint = client_vm
        .store()
        .union(report.app_id.taint(), report.pi.taint());

    client.close();
    for nm in nms {
        nm.shutdown();
    }
    rm.shutdown();
    Ok(PiJobResult {
        report,
        pi,
        sink_taint,
    })
}

/// Result of the end-to-end WordCount workload.
#[derive(Debug, Clone)]
pub struct WordCountJobResult {
    /// The final report (including `word_counts`).
    pub report: ApplicationReport,
    /// The taint observed at the sink.
    pub sink_taint: Taint,
}

/// Runs a WordCount job end-to-end: RM + NMs + client, map → NM↔NM
/// shuffle → reduce → report. Same VM layout as [`run_pi_job`].
///
/// # Errors
///
/// Any role's transport or protocol error.
///
/// # Panics
///
/// Panics if fewer than three VMs are supplied.
pub fn run_wordcount_job(
    vms: &[Vm],
    input: TaintedBytes,
    maps: u64,
    reducers: u64,
) -> Result<WordCountJobResult, JreError> {
    assert!(vms.len() >= 3, "need RM, >=1 NM and a client VM");
    let rm_vm = &vms[0];
    let nm_vms = &vms[1..vms.len() - 1];
    let client_vm = &vms[vms.len() - 1];

    let rm = ResourceManager::start(rm_vm, NodeAddr::new(rm_vm.ip(), 8032))?;
    let mut nms = Vec::new();
    for (i, nm_vm) in nm_vms.iter().enumerate() {
        let nm = NodeManager::start(nm_vm, NodeAddr::new(nm_vm.ip(), 8041 + i as u16))?;
        nm.register_with(rm.addr())?;
        rm.attach_nm(RpcClient::connect(rm_vm, nm.addr())?, nm.addr());
        nms.push(nm);
    }

    let client = YarnClient::connect(client_vm, rm.addr())?;
    let app_id = client.create_application();
    client.submit_wordcount(&app_id, input, maps, reducers)?;
    let report = client.await_finished(&app_id)?;
    let mut sink_taint = report.app_id.taint();
    for cell in &report.word_counts {
        sink_taint = client_vm.store().union(sink_taint, cell.word.taint());
    }
    client.close();
    for nm in nms {
        nm.shutdown();
    }
    rm.shutdown();
    Ok(WordCountJobResult { report, sink_taint })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_core::{Cluster, Mode};
    use dista_jre::{FILE_INPUT_STREAM_CLASS, LOGGER_CLASS};
    use dista_taint::{MethodDesc, SourceSinkSpec};

    fn sdt_spec() -> SourceSinkSpec {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(YARN_CLIENT_CLASS, "createApplication"))
            .add_sink(MethodDesc::new(YARN_CLIENT_CLASS, "getApplicationReport"));
        spec
    }

    #[test]
    fn pi_job_computes_pi() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("yarn", 3)
            .build()
            .unwrap();
        let result = run_pi_job(cluster.vms(), 4, 20_000).unwrap();
        assert!(
            (result.pi - std::f64::consts::PI).abs() < 0.05,
            "pi ≈ {}",
            result.pi
        );
        assert_eq!(result.report.state, "FINISHED");
        cluster.shutdown();
    }

    #[test]
    fn sdt_application_id_taint_round_trips() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("yarn", 3)
            .spec(sdt_spec())
            .build()
            .unwrap();
        let result = run_pi_job(cluster.vms(), 2, 5_000).unwrap();
        let client_vm = cluster.vm(2);
        let tags = client_vm.store().tag_values(result.sink_taint);
        assert_eq!(tags.len(), 1);
        assert!(tags[0].starts_with("application_"), "got {tags:?}");
        // The sink recorded the observation.
        let report = client_vm.sink_report();
        let events = report.at("YarnClient.getApplicationReport");
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| e.is_tainted()));
        cluster.shutdown();
    }

    #[test]
    fn phosphor_loses_the_application_id_taint() {
        let cluster = Cluster::builder(Mode::Phosphor)
            .nodes("yarn", 3)
            .spec(sdt_spec())
            .build()
            .unwrap();
        let result = run_pi_job(cluster.vms(), 2, 5_000).unwrap();
        assert!((result.pi - std::f64::consts::PI).abs() < 0.1);
        assert!(
            result.sink_taint.is_empty(),
            "intra-node tracking cannot carry the id across RPC"
        );
        cluster.shutdown();
    }

    #[test]
    fn sim_config_taint_reaches_rm_log() {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
            .add_sink(MethodDesc::new(LOGGER_CLASS, "info"));
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("yarn", 3)
            .spec(spec)
            .build()
            .unwrap();
        // NM's config file.
        cluster
            .vm(1)
            .fs()
            .write("etc/hadoop/yarn-site.xml", b"hostname=worker-1".to_vec());
        run_pi_job(cluster.vms(), 1, 1_000).unwrap();
        // The RM's LOG.info observed the NM's file taint.
        let rm_report = cluster.vm(0).sink_report();
        let events = rm_report.at("LOG.info");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tags.len(), 1);
        assert!(events[0].tags[0].starts_with("etc/hadoop/yarn-site.xml#r"));
        cluster.shutdown();
    }

    #[test]
    fn wordcount_job_counts_words_through_shuffle() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("yarn", 4)
            .build()
            .unwrap();
        let input = TaintedBytes::from_plain(
            b"the quick brown fox jumps over the lazy dog the fox".to_vec(),
        );
        let result = run_wordcount_job(cluster.vms(), input, 3, 2).unwrap();
        let counts: std::collections::HashMap<&str, u64> = result
            .report
            .word_counts
            .iter()
            .map(|c| (c.word.value().as_str(), c.count))
            .collect();
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["fox"], 2);
        assert_eq!(counts["dog"], 1);
        cluster.shutdown();
    }

    #[test]
    fn wordcount_taint_survives_map_shuffle_reduce() {
        // The Kakute contrast: the input's taint reaches the reducer
        // output with no shuffle-specific instrumentation — it crossed
        // client→RM→mapper-NM→reducer-NM→RM→client.
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(YARN_CLIENT_CLASS, "createApplication"))
            .add_sink(MethodDesc::new(YARN_CLIENT_CLASS, "getApplicationReport"));
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("yarn", 4)
            .spec(spec)
            .build()
            .unwrap();
        let client_vm = cluster.vm(3).clone();
        let secret = client_vm
            .store()
            .mint_source_taint(dista_taint::TagValue::str("secret-doc"));
        let mut input = TaintedBytes::uniform(b"classified report ", secret);
        input.extend_plain(b"public appendix public notes");
        let result = run_wordcount_job(cluster.vms(), input, 2, 2).unwrap();

        let find = |w: &str| {
            result
                .report
                .word_counts
                .iter()
                .find(|c| c.word.value() == w)
                .unwrap_or_else(|| panic!("{w} missing"))
                .clone()
        };
        // Soundness: words from the tainted span carry the tag...
        assert_eq!(
            client_vm
                .store()
                .tag_values(find("classified").word.taint()),
            vec!["secret-doc"]
        );
        assert_eq!(
            client_vm.store().tag_values(find("report").word.taint()),
            vec!["secret-doc"]
        );
        // ...precision: words from the plain span do not.
        assert!(find("public").word.taint().is_empty());
        assert!(find("appendix").word.taint().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn wordcount_loses_taint_in_phosphor_mode() {
        let cluster = Cluster::builder(Mode::Phosphor)
            .nodes("yarn", 4)
            .build()
            .unwrap();
        let client_vm = cluster.vm(3).clone();
        let secret = client_vm
            .store()
            .mint_source_taint(dista_taint::TagValue::str("gone"));
        let input = TaintedBytes::uniform(b"secret words here", secret);
        let result = run_wordcount_job(cluster.vms(), input, 2, 2).unwrap();
        assert!(result
            .report
            .word_counts
            .iter()
            .all(|c| c.word.taint().is_empty()));
        cluster.shutdown();
    }
}

//! The Pi estimator — Hadoop's `QuasiMonteCarlo` example, which the
//! paper uses as the MapReduce workload ("a job to calculate the value
//! of Pi").
//!
//! Each map task draws points from a 2-D Halton sequence and counts how
//! many fall inside the unit circle; the reduce step combines the counts
//! into `4 * inside / total`. Deterministic by construction — no RNG.

/// One dimension of the Halton low-discrepancy sequence.
fn halton(index: u64, base: u64) -> f64 {
    let mut f = 1.0;
    let mut r = 0.0;
    let mut i = index + 1; // skip the origin
    while i > 0 {
        f /= base as f64;
        r += f * (i % base) as f64;
        i /= base;
    }
    r
}

/// Result of one map task: points inside / outside the quarter circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MapResult {
    /// Points that landed inside.
    pub inside: u64,
    /// Points that landed outside.
    pub outside: u64,
}

/// Runs one map task: `samples` Halton points starting at `offset`.
pub fn run_map_task(offset: u64, samples: u64) -> MapResult {
    let mut result = MapResult::default();
    for i in offset..offset + samples {
        let x = halton(i, 2) - 0.5;
        let y = halton(i, 3) - 0.5;
        if x * x + y * y <= 0.25 {
            result.inside += 1;
        } else {
            result.outside += 1;
        }
    }
    result
}

/// The reduce step: combine map outputs into an estimate of π.
pub fn reduce(results: &[MapResult]) -> f64 {
    let inside: u64 = results.iter().map(|r| r.inside).sum();
    let total: u64 = results.iter().map(|r| r.inside + r.outside).sum();
    if total == 0 {
        return 0.0;
    }
    4.0 * inside as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halton_is_in_unit_interval() {
        for i in 0..1000 {
            let h2 = halton(i, 2);
            let h3 = halton(i, 3);
            assert!((0.0..1.0).contains(&h2));
            assert!((0.0..1.0).contains(&h3));
        }
    }

    #[test]
    fn estimate_converges_to_pi() {
        let maps: Vec<MapResult> = (0..4).map(|m| run_map_task(m * 25_000, 25_000)).collect();
        let pi = reduce(&maps);
        assert!((pi - std::f64::consts::PI).abs() < 0.01, "pi ≈ {pi}");
    }

    #[test]
    fn map_tasks_are_deterministic() {
        assert_eq!(run_map_task(0, 1000), run_map_task(0, 1000));
        assert_ne!(run_map_task(0, 1000), run_map_task(1000, 1000));
    }

    #[test]
    fn reduce_of_nothing_is_zero() {
        assert_eq!(reduce(&[]), 0.0);
    }

    #[test]
    fn split_equals_whole() {
        let whole = run_map_task(0, 2000);
        let a = run_map_task(0, 1000);
        let b = run_map_task(1000, 1000);
        assert_eq!(whole.inside, a.inside + b.inside);
        assert_eq!(whole.outside, a.outside + b.outside);
    }
}

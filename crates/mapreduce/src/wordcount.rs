//! WordCount with a real shuffle phase.
//!
//! The paper positions DisTA against Kakute, which instruments Spark's
//! *shuffle APIs* specifically; DisTA needs no such system-specific hooks
//! because shuffle traffic bottoms out in the same JNI methods as
//! everything else. This job makes that point executable: map tasks
//! partition their output by word hash, reducers fetch partitions
//! **directly from the mapper NodeManagers** over the instrumented RPC
//! channel, and the input's taints arrive at the reducers' output with
//! no shuffle-specific instrumentation anywhere.

use std::collections::HashMap;

use dista_jre::{JreError, ObjValue, Vm};
use dista_taint::{Taint, Tainted, TaintedBytes};

/// One `(word, count)` output cell, with the taint the word carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordCount {
    /// The word.
    pub word: Tainted<String>,
    /// Number of occurrences.
    pub count: u64,
}

fn word_partition(word: &str, reducers: u64) -> u64 {
    // Deterministic FNV-1a so mappers and the scheduler always agree.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in word.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash % reducers
}

/// Runs one map task: tokenizes the split and partitions `(word, count)`
/// pairs by hash. Each word's taint is the union of its bytes' taints in
/// the split (byte-level precision all the way into the shuffle).
pub fn run_wordcount_map(
    split: &TaintedBytes,
    reducers: u64,
    vm: &Vm,
) -> HashMap<u64, Vec<WordCount>> {
    let mut per_word: HashMap<String, (u64, Taint)> = HashMap::new();
    let data = split.data();
    let mut start = None;
    for i in 0..=data.len() {
        let boundary = i == data.len() || !data[i].is_ascii_alphanumeric();
        match (start, boundary) {
            (None, false) => start = Some(i),
            (Some(s), true) => {
                let word = String::from_utf8_lossy(&data[s..i]).to_ascii_lowercase();
                let taint = split.slice(s, i).taint_union(vm.store());
                let entry = per_word.entry(word).or_insert((0, Taint::EMPTY));
                entry.0 += 1;
                entry.1 = vm.store().union(entry.1, taint);
                start = None;
            }
            _ => {}
        }
    }
    let mut partitions: HashMap<u64, Vec<WordCount>> = HashMap::new();
    for (word, (count, taint)) in per_word {
        partitions
            .entry(word_partition(&word, reducers))
            .or_default()
            .push(WordCount {
                word: Tainted::new(word, taint),
                count,
            });
    }
    partitions
}

/// The reduce step: merges fetched partition fragments.
pub fn run_wordcount_reduce(fragments: Vec<Vec<WordCount>>, vm: &Vm) -> Vec<WordCount> {
    let mut merged: HashMap<String, (u64, Taint)> = HashMap::new();
    for fragment in fragments {
        for cell in fragment {
            let (word, taint) = cell.word.into_parts();
            let entry = merged.entry(word).or_insert((0, Taint::EMPTY));
            entry.0 += cell.count;
            entry.1 = vm.store().union(entry.1, taint);
        }
    }
    let mut out: Vec<WordCount> = merged
        .into_iter()
        .map(|(word, (count, taint))| WordCount {
            word: Tainted::new(word, taint),
            count,
        })
        .collect();
    out.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(a.word.value().cmp(b.word.value()))
    });
    out
}

/// Encodes a partition fragment for the shuffle wire.
pub fn encode_cells(cells: &[WordCount]) -> ObjValue {
    ObjValue::List(
        cells
            .iter()
            .map(|cell| {
                ObjValue::Record(
                    "Cell".into(),
                    vec![
                        (
                            "word".into(),
                            ObjValue::Str(cell.word.value().clone(), cell.word.taint()),
                        ),
                        ("count".into(), ObjValue::int_plain(cell.count as i64)),
                    ],
                )
            })
            .collect(),
    )
}

/// Decodes a partition fragment from the shuffle wire.
///
/// # Errors
///
/// [`JreError::Protocol`] on malformed fragments.
pub fn decode_cells(obj: &ObjValue) -> Result<Vec<WordCount>, JreError> {
    let ObjValue::List(items) = obj else {
        return Err(JreError::Protocol("expected a cell list"));
    };
    items
        .iter()
        .map(|item| {
            let word = match item.field("word") {
                Some(ObjValue::Str(s, t)) => Tainted::new(s.clone(), *t),
                _ => return Err(JreError::Protocol("cell missing word")),
            };
            let count = item
                .field("count")
                .and_then(ObjValue::as_int)
                .ok_or(JreError::Protocol("cell missing count"))? as u64;
            Ok(WordCount { word, count })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_jre::Mode;
    use dista_simnet::SimNet;
    use dista_taint::TagValue;

    fn vm() -> Vm {
        Vm::builder("t", &SimNet::new())
            .mode(Mode::Phosphor)
            .build()
            .unwrap()
    }

    #[test]
    fn map_counts_and_partitions() {
        let vm = vm();
        let t = vm.store().mint_source_taint(TagValue::str("doc"));
        let split = TaintedBytes::uniform(b"the cat and the hat", t);
        let partitions = run_wordcount_map(&split, 4, &vm);
        let all: Vec<&WordCount> = partitions.values().flatten().collect();
        let the = all.iter().find(|c| c.word.value() == "the").unwrap();
        assert_eq!(the.count, 2);
        assert_eq!(vm.store().tag_values(the.word.taint()), vec!["doc"]);
        // Every word landed in its hash partition.
        for (p, cells) in &partitions {
            for cell in cells {
                assert_eq!(word_partition(cell.word.value(), 4), *p);
            }
        }
    }

    #[test]
    fn reduce_merges_fragments() {
        let vm = vm();
        let ta = vm.store().mint_source_taint(TagValue::str("a"));
        let tb = vm.store().mint_source_taint(TagValue::str("b"));
        let out = run_wordcount_reduce(
            vec![
                vec![WordCount {
                    word: Tainted::new("x".into(), ta),
                    count: 2,
                }],
                vec![WordCount {
                    word: Tainted::new("x".into(), tb),
                    count: 3,
                }],
            ],
            &vm,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, 5);
        assert_eq!(vm.store().tag_values(out[0].word.taint()), vec!["a", "b"]);
    }

    #[test]
    fn cells_roundtrip_through_wire_encoding() {
        let vm = vm();
        let t = vm.store().mint_source_taint(TagValue::str("w"));
        let cells = vec![
            WordCount {
                word: Tainted::new("alpha".into(), t),
                count: 7,
            },
            WordCount {
                word: Tainted::new("beta".into(), Taint::EMPTY),
                count: 1,
            },
        ];
        let decoded = decode_cells(&encode_cells(&cells)).unwrap();
        assert_eq!(decoded, cells);
    }

    #[test]
    fn split_then_merge_equals_whole() {
        let vm = vm();
        let text = b"a b c a b a";
        let whole = run_wordcount_map(&TaintedBytes::from_plain(text.to_vec()), 1, &vm);
        let left = run_wordcount_map(&TaintedBytes::from_plain(b"a b c".to_vec()), 1, &vm);
        let right = run_wordcount_map(&TaintedBytes::from_plain(b"a b a".to_vec()), 1, &vm);
        let merged = run_wordcount_reduce(
            vec![
                left.into_values().flatten().collect(),
                right.into_values().flatten().collect(),
            ],
            &vm,
        );
        let whole_reduced =
            run_wordcount_reduce(vec![whole.into_values().flatten().collect()], &vm);
        assert_eq!(merged, whole_reduced);
    }
}

//! The NodeManager: registers with the RM, launches task containers —
//! Pi map tasks, WordCount map tasks (whose partitioned output it serves
//! to reducers), and WordCount reduce tasks (which fetch partitions from
//! other NodeManagers: the shuffle).

use std::collections::HashMap;
use std::sync::Arc;

use dista_jre::{FileInputStream, JreError, ObjValue, Vm};
use dista_simnet::NodeAddr;
use dista_taint::{Taint, Tainted, TaintedBytes};
use parking_lot::Mutex;

use crate::pi::run_map_task;
use crate::rpc::{RpcClient, RpcServer};
use crate::wordcount::{decode_cells, encode_cells, run_wordcount_map, run_wordcount_reduce};

/// Map-output store: `(app, map, partition)` → encoded cells.
type MapOutputs = Arc<Mutex<HashMap<(i64, i64, i64), ObjValue>>>;

/// A running NodeManager.
pub struct NodeManager {
    vm: Vm,
    server: Option<RpcServer>,
    hostname: Tainted<String>,
}

impl std::fmt::Debug for NodeManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeManager")
            .field("vm", &self.vm.name())
            .field("hostname", self.hostname.value())
            .finish()
    }
}

impl NodeManager {
    /// Starts the NM's container-launch service at `addr`.
    ///
    /// Boot reads `etc/hadoop/yarn-site.xml` from the node's disk — the
    /// SIM source point. If the file is missing, a default hostname is
    /// used (untainted).
    ///
    /// # Errors
    ///
    /// Transport errors (address in use).
    pub fn start(vm: &Vm, addr: NodeAddr) -> Result<Self, JreError> {
        let hostname = match FileInputStream::open(vm, "etc/hadoop/yarn-site.xml") {
            Ok(file) => {
                let contents = file.read_to_string()?;
                let taint = contents.taint();
                let host = contents
                    .value()
                    .lines()
                    .find_map(|l| l.strip_prefix("hostname="))
                    .unwrap_or("nm")
                    .to_string();
                Tainted::new(host, taint)
            }
            Err(_) => Tainted::untainted(vm.name().to_string()),
        };
        let handler_vm = vm.clone();
        let outputs: MapOutputs = Arc::new(Mutex::new(HashMap::new()));
        let server = RpcServer::start(vm, addr, move |request| {
            dispatch(&handler_vm, &outputs, &request)
        })?;
        Ok(NodeManager {
            vm: vm.clone(),
            server: Some(server),
            hostname,
        })
    }

    /// The NM's RPC address.
    pub fn addr(&self) -> NodeAddr {
        self.server.as_ref().expect("server running").addr()
    }

    /// The configured hostname (file-tainted in SIM runs).
    pub fn hostname(&self) -> &Tainted<String> {
        &self.hostname
    }

    /// Registers this NM with the ResourceManager over RPC; the host
    /// string carries the config file's taint to the RM's `LOG.info`.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn register_with(&self, rm_addr: NodeAddr) -> Result<(), JreError> {
        let client = RpcClient::connect(&self.vm, rm_addr)?;
        client.call(&ObjValue::Record(
            "RegisterNode".into(),
            vec![(
                "host".into(),
                ObjValue::Str(self.hostname.value().clone(), self.hostname.taint()),
            )],
        ))?;
        client.close();
        Ok(())
    }

    /// Stops the container-launch service.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

fn dispatch(vm: &Vm, outputs: &MapOutputs, request: &ObjValue) -> ObjValue {
    match request.class_name() {
        Some("LaunchContainer") => handle_pi_container(vm, request),
        Some("LaunchWordCountMap") => handle_wordcount_map(vm, outputs, request),
        Some("FetchPartition") => handle_fetch_partition(outputs, request),
        Some("LaunchWordCountReduce") => handle_wordcount_reduce(vm, request),
        _ => ObjValue::Record(
            "Error".into(),
            vec![("message".into(), ObjValue::str_plain("unknown rpc"))],
        ),
    }
}

fn app_fields(request: &ObjValue) -> (i64, Taint) {
    match request.field("appId") {
        Some(ObjValue::Int(v, t)) => (*v, *t),
        _ => (0, Taint::EMPTY),
    }
}

/// Runs one Pi map task in a "container" and reports back. The app id
/// (and its taint) is echoed to the RM — the container-side hop of the
/// SDT flow.
fn handle_pi_container(vm: &Vm, request: &ObjValue) -> ObjValue {
    let (app_id, id_taint) = app_fields(request);
    let offset = request
        .field("offset")
        .and_then(ObjValue::as_int)
        .unwrap_or(0)
        .max(0) as u64;
    let samples = request
        .field("samples")
        .and_then(ObjValue::as_int)
        .unwrap_or(0)
        .max(0) as u64;
    let result = run_map_task(offset, samples);
    // Real containers ship task logs and counters back with the result.
    // The log starts from the container's stdout template file when one
    // exists — a per-container file read, i.e. a SIM source point whose
    // taint then crosses NM → RM.
    let mut task_log = match FileInputStream::open(vm, "container/stdout.template") {
        Ok(file) => file
            .read()
            .map(dista_taint::Payload::into_tainted)
            .unwrap_or_default(),
        Err(_) => TaintedBytes::new(),
    };
    task_log.extend_plain(
        format!(
            "container for app {app_id}: offset={offset} samples={samples}\n{}",
            "map progress 100.00% reduce 0.00%\n".repeat(256)
        )
        .as_bytes(),
    );
    ObjValue::Record(
        "ContainerResult".into(),
        vec![
            ("appId".into(), ObjValue::Int(app_id, id_taint)),
            ("inside".into(), ObjValue::int_plain(result.inside as i64)),
            ("outside".into(), ObjValue::int_plain(result.outside as i64)),
            ("taskLog".into(), ObjValue::Bytes(task_log)),
        ],
    )
}

fn handle_wordcount_map(vm: &Vm, outputs: &MapOutputs, request: &ObjValue) -> ObjValue {
    let (app_id, id_taint) = app_fields(request);
    let map_id = request
        .field("mapId")
        .and_then(ObjValue::as_int)
        .unwrap_or(0);
    let reducers = request
        .field("reducers")
        .and_then(ObjValue::as_int)
        .unwrap_or(1)
        .max(1) as u64;
    let split = match request.field("split") {
        Some(ObjValue::Bytes(b)) => b.clone(),
        _ => TaintedBytes::new(),
    };
    let partitions = run_wordcount_map(&split, reducers, vm);
    let mut store = outputs.lock();
    for partition in 0..reducers {
        let cells = partitions
            .get(&partition)
            .map(|cells| encode_cells(cells))
            .unwrap_or(ObjValue::List(Vec::new()));
        store.insert((app_id, map_id, partition as i64), cells);
    }
    ObjValue::Record(
        "MapDone".into(),
        vec![
            ("appId".into(), ObjValue::Int(app_id, id_taint)),
            ("mapId".into(), ObjValue::int_plain(map_id)),
        ],
    )
}

fn handle_fetch_partition(outputs: &MapOutputs, request: &ObjValue) -> ObjValue {
    let (app_id, _) = app_fields(request);
    let map_id = request
        .field("mapId")
        .and_then(ObjValue::as_int)
        .unwrap_or(0);
    let partition = request
        .field("partition")
        .and_then(ObjValue::as_int)
        .unwrap_or(0);
    let cells = outputs
        .lock()
        .get(&(app_id, map_id, partition))
        .cloned()
        .unwrap_or(ObjValue::List(Vec::new()));
    ObjValue::Record("Fragment".into(), vec![("cells".into(), cells)])
}

fn handle_wordcount_reduce(vm: &Vm, request: &ObjValue) -> ObjValue {
    let (app_id, id_taint) = app_fields(request);
    let partition = request
        .field("partition")
        .and_then(ObjValue::as_int)
        .unwrap_or(0);
    let Some(ObjValue::List(mappers)) = request.field("mappers") else {
        return ObjValue::Record(
            "Error".into(),
            vec![("message".into(), ObjValue::str_plain("missing mappers"))],
        );
    };
    // The shuffle: fetch this partition from every mapper NodeManager.
    let mut fragments = Vec::new();
    for mapper in mappers {
        let map_id = mapper
            .field("mapId")
            .and_then(ObjValue::as_int)
            .unwrap_or(0);
        let Some(addr_text) = mapper.field("addr").and_then(ObjValue::as_str) else {
            continue;
        };
        let Ok(addr) = crate::resource_manager::parse_addr(addr_text) else {
            continue;
        };
        let Ok(peer) = RpcClient::connect(vm, addr) else {
            continue;
        };
        let fetch = ObjValue::Record(
            "FetchPartition".into(),
            vec![
                ("appId".into(), ObjValue::Int(app_id, id_taint)),
                ("mapId".into(), ObjValue::int_plain(map_id)),
                ("partition".into(), ObjValue::int_plain(partition)),
            ],
        );
        if let Ok(response) = peer.call(&fetch) {
            if let Some(cells_obj) = response.field("cells") {
                if let Ok(cells) = decode_cells(cells_obj) {
                    fragments.push(cells);
                }
            }
        }
        peer.close();
    }
    let merged = run_wordcount_reduce(fragments, vm);
    ObjValue::Record(
        "ReduceDone".into(),
        vec![
            ("appId".into(), ObjValue::Int(app_id, id_taint)),
            ("partition".into(), ObjValue::int_plain(partition)),
            ("cells".into(), encode_cells(&merged)),
        ],
    )
}

//! Yarn-style RPC: object records over length-framed NIO channels.
//!
//! Requests and responses are [`ObjValue`]s; the frame layer is a `u32`
//! length prefix over [`SocketChannel`], so every RPC byte passes the
//! instrumented dispatcher methods (Type 3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dista_jre::{JreError, ObjValue, ServerSocketChannel, SocketChannel, Vm};
use dista_simnet::{NetError, NodeAddr};
use dista_taint::{Payload, TaintedBytes};
use parking_lot::Mutex;

fn write_obj(channel: &SocketChannel, obj: &ObjValue) -> Result<(), JreError> {
    let encoded = obj.encode();
    let framed = if channel.vm().mode().tracks_taints() {
        let mut f = TaintedBytes::with_capacity(4 + encoded.len());
        f.extend_plain(&(encoded.len() as u32).to_be_bytes());
        f.extend_tainted(&encoded);
        Payload::Tainted(f)
    } else {
        let mut f = Vec::with_capacity(4 + encoded.len());
        f.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
        f.extend_from_slice(encoded.data());
        Payload::Plain(f)
    };
    channel.write_payload(&framed)
}

fn read_obj(channel: &SocketChannel) -> Result<Option<ObjValue>, JreError> {
    let first = channel.read_payload(1)?;
    if first.is_empty() {
        return Ok(None);
    }
    let mut header = first.into_plain();
    while header.len() < 4 {
        header.extend_from_slice(channel.read_exact_payload(4 - header.len())?.data());
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let body = channel.read_exact_payload(len)?;
    Ok(Some(ObjValue::decode(&body.into_tainted(), channel.vm())?))
}

type Handler = Arc<dyn Fn(ObjValue) -> ObjValue + Send + Sync>;

/// A running RPC server.
#[derive(Debug)]
pub struct RpcServer {
    vm: Vm,
    addr: NodeAddr,
    running: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl RpcServer {
    /// Binds at `addr`; every inbound request record is passed to
    /// `handler` and its return value sent back.
    ///
    /// # Errors
    ///
    /// Transport errors (address in use).
    pub fn start(
        vm: &Vm,
        addr: NodeAddr,
        handler: impl Fn(ObjValue) -> ObjValue + Send + Sync + 'static,
    ) -> Result<Self, JreError> {
        let listener = ServerSocketChannel::bind(vm, addr)?;
        let handler: Handler = Arc::new(handler);
        let running = Arc::new(AtomicBool::new(true));
        let accept_running = running.clone();
        let acceptor = std::thread::Builder::new()
            .name(format!("rpc-server-{addr}"))
            .spawn(move || {
                while accept_running.load(Ordering::Relaxed) {
                    let channel = match listener.accept() {
                        Ok(c) => c,
                        Err(JreError::Net(NetError::Timeout(_))) => continue,
                        Err(_) => break,
                    };
                    let handler = handler.clone();
                    std::thread::spawn(move || loop {
                        match read_obj(&channel) {
                            Ok(Some(request)) => {
                                let response = handler(request);
                                if write_obj(&channel, &response).is_err() {
                                    return;
                                }
                            }
                            Ok(None) | Err(_) => return,
                        }
                    });
                }
            })
            .expect("spawn rpc acceptor");
        Ok(RpcServer {
            vm: vm.clone(),
            addr,
            running,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Stops accepting connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            self.running.store(false, Ordering::Relaxed);
            if let Ok(c) = SocketChannel::connect(&self.vm, self.addr) {
                c.close();
            }
            self.vm.net().tcp_unlisten(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A synchronous RPC client over one persistent channel.
#[derive(Debug, Clone)]
pub struct RpcClient {
    channel: Arc<Mutex<SocketChannel>>,
}

impl RpcClient {
    /// Connects to an [`RpcServer`].
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect(vm: &Vm, addr: NodeAddr) -> Result<Self, JreError> {
        Ok(RpcClient {
            channel: Arc::new(Mutex::new(SocketChannel::connect(vm, addr)?)),
        })
    }

    /// Sends one request and awaits its response.
    ///
    /// # Errors
    ///
    /// [`JreError::Eof`] if the server closes mid-call.
    pub fn call(&self, request: &ObjValue) -> Result<ObjValue, JreError> {
        let channel = self.channel.lock();
        write_obj(&channel, request)?;
        read_obj(&channel)?.ok_or(JreError::Eof)
    }

    /// Closes the connection.
    pub fn close(&self) {
        self.channel.lock().close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_core::{Cluster, Mode};
    use dista_taint::TagValue;

    #[test]
    fn rpc_roundtrip_preserves_taints() {
        let cluster = Cluster::builder(Mode::Dista).nodes("n", 2).build().unwrap();
        let server_vm = cluster.vm(1).clone();
        let server = RpcServer::start(
            &server_vm,
            NodeAddr::new([10, 0, 0, 2], 8030),
            move |request| {
                // Echo the request's "arg" field back as "result".
                let arg = request
                    .field("arg")
                    .cloned()
                    .unwrap_or(ObjValue::int_plain(0));
                ObjValue::Record("Response".into(), vec![("result".into(), arg)])
            },
        )
        .unwrap();

        let client_vm = cluster.vm(0);
        let client = RpcClient::connect(client_vm, server.addr()).unwrap();
        let t = client_vm.store().mint_source_taint(TagValue::str("arg"));
        let response = client
            .call(&ObjValue::Record(
                "Request".into(),
                vec![("arg".into(), ObjValue::Int(42, t))],
            ))
            .unwrap();
        match response.field("result") {
            Some(ObjValue::Int(42, taint)) => {
                assert_eq!(client_vm.store().tag_values(*taint), vec!["arg"]);
            }
            other => panic!("bad response: {other:?}"),
        }
        client.close();
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn sequential_calls_on_one_connection() {
        let cluster = Cluster::builder(Mode::Dista).nodes("n", 2).build().unwrap();
        let server = RpcServer::start(
            cluster.vm(1),
            NodeAddr::new([10, 0, 0, 2], 8031),
            |request| {
                let v = request.as_int().unwrap_or(0);
                ObjValue::int_plain(v * 2)
            },
        )
        .unwrap();
        let client = RpcClient::connect(cluster.vm(0), server.addr()).unwrap();
        for i in 0..10 {
            let r = client.call(&ObjValue::int_plain(i)).unwrap();
            assert_eq!(r.as_int(), Some(i * 2));
        }
        client.close();
        server.shutdown();
        cluster.shutdown();
    }
}

//! The ResourceManager: accepts applications, schedules tasks onto
//! registered NodeManagers, aggregates results, serves reports.
//!
//! Two job types: the Pi estimator (map-only) and WordCount (map +
//! NM↔NM shuffle + reduce).

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;

use dista_jre::{JreError, Logger, ObjValue, Vm};
use dista_simnet::NodeAddr;
use dista_taint::{Taint, TaintedBytes};
use parking_lot::Mutex;

use crate::pi::{reduce, MapResult};
use crate::rpc::{RpcClient, RpcServer};
use crate::wordcount::{decode_cells, encode_cells, WordCount};

#[derive(Debug, Clone)]
struct AppState {
    app_id: i64,
    /// The application id's taint as received from the client — it must
    /// ride through the whole pipeline and back into the report.
    id_taint: Taint,
    finished: bool,
    /// Pi job accumulator.
    pi_results: Vec<MapResult>,
    /// WordCount result (top cells).
    word_counts: Vec<WordCount>,
}

struct NodeManagerLink {
    client: RpcClient,
    addr: NodeAddr,
}

struct RmInner {
    vm: Vm,
    log: Logger,
    node_managers: Mutex<Vec<Arc<NodeManagerLink>>>,
    apps: Mutex<HashMap<i64, AppState>>,
}

/// A running ResourceManager.
pub struct ResourceManager {
    inner: Arc<RmInner>,
    server: Option<RpcServer>,
}

impl std::fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceManager")
            .field("vm", &self.inner.vm.name())
            .finish()
    }
}

impl ResourceManager {
    /// Starts the RM's RPC service at `addr` on `vm`.
    ///
    /// # Errors
    ///
    /// Transport errors (address in use).
    pub fn start(vm: &Vm, addr: NodeAddr) -> Result<Self, JreError> {
        let inner = Arc::new(RmInner {
            vm: vm.clone(),
            log: Logger::new(vm),
            node_managers: Mutex::new(Vec::new()),
            apps: Mutex::new(HashMap::new()),
        });
        let handler_inner = inner.clone();
        let server = RpcServer::start(vm, addr, move |request| handle(&handler_inner, request))?;
        Ok(ResourceManager {
            inner,
            server: Some(server),
        })
    }

    /// The RM's RPC address.
    pub fn addr(&self) -> NodeAddr {
        self.server.as_ref().expect("server running").addr()
    }

    /// Wires up a NodeManager the RM can schedule onto. (Registration
    /// over RPC — `RegisterNode` — carries the SIM taint; this call adds
    /// the RM-side scheduling connection.)
    pub(crate) fn attach_nm(&self, client: RpcClient, addr: NodeAddr) {
        self.inner
            .node_managers
            .lock()
            .push(Arc::new(NodeManagerLink { client, addr }));
    }

    /// Stops the RPC service.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

fn int_field(obj: &ObjValue, name: &str) -> Option<(i64, Taint)> {
    match obj.field(name) {
        Some(ObjValue::Int(v, t)) => Some((*v, *t)),
        _ => None,
    }
}

fn handle(rm: &Arc<RmInner>, request: ObjValue) -> ObjValue {
    match request.class_name() {
        Some("RegisterNode") => {
            // SIM flow: the host string carries the NM's config-file
            // taint; LOG.info is the registered sink.
            if let Some(ObjValue::Str(host, taint)) = request.field("host") {
                rm.log
                    .info_taint(&format!("registered node manager {host}"), *taint);
            }
            ObjValue::Record("RegisterAck".into(), vec![])
        }
        Some("SubmitApplication") => {
            let Some((app_id, id_taint)) = int_field(&request, "appId") else {
                return error_response("missing appId");
            };
            let job_type = request
                .field("jobType")
                .and_then(ObjValue::as_str)
                .unwrap_or("pi")
                .to_string();
            rm.apps.lock().insert(
                app_id,
                AppState {
                    app_id,
                    id_taint,
                    finished: false,
                    pi_results: Vec::new(),
                    word_counts: Vec::new(),
                },
            );
            // Schedule asynchronously, like Yarn: the submit RPC returns
            // immediately and the client polls for the report.
            let rm = rm.clone();
            match job_type.as_str() {
                "wordcount" => {
                    let input = match request.field("input") {
                        Some(ObjValue::Bytes(b)) => b.clone(),
                        _ => TaintedBytes::new(),
                    };
                    let maps = int_field(&request, "maps").map_or(1, |(v, _)| v).max(1) as u64;
                    let reducers =
                        int_field(&request, "reducers").map_or(1, |(v, _)| v).max(1) as u64;
                    std::thread::spawn(move || {
                        schedule_wordcount(&rm, app_id, id_taint, input, maps, reducers)
                    });
                }
                _ => {
                    let maps = int_field(&request, "maps").map_or(1, |(v, _)| v).max(1) as u64;
                    let samples = int_field(&request, "samples")
                        .map_or(1000, |(v, _)| v)
                        .max(1) as u64;
                    std::thread::spawn(move || schedule_pi(&rm, app_id, id_taint, maps, samples));
                }
            }
            ObjValue::Record("SubmitAck".into(), vec![])
        }
        Some("GetApplicationReport") => {
            let Some((app_id, _)) = int_field(&request, "appId") else {
                return error_response("missing appId");
            };
            let apps = rm.apps.lock();
            let Some(app) = apps.get(&app_id) else {
                return error_response("unknown application");
            };
            let state = if app.finished { "FINISHED" } else { "RUNNING" };
            let pi = if app.finished {
                reduce(&app.pi_results)
            } else {
                0.0
            };
            ObjValue::Record(
                "ApplicationReport".into(),
                vec![
                    ("appId".into(), ObjValue::Int(app.app_id, app.id_taint)),
                    ("state".into(), ObjValue::str_plain(state)),
                    ("pi".into(), ObjValue::Str(format!("{pi:.6}"), app.id_taint)),
                    ("wordCounts".into(), encode_cells(&app.word_counts)),
                ],
            )
        }
        _ => error_response("unknown rpc"),
    }
}

fn error_response(message: &str) -> ObjValue {
    ObjValue::Record(
        "Error".into(),
        vec![("message".into(), ObjValue::str_plain(message))],
    )
}

fn schedule_pi(rm: &Arc<RmInner>, app_id: i64, id_taint: Taint, maps: u64, samples: u64) {
    let nms = rm.node_managers.lock().clone();
    if nms.is_empty() {
        return;
    }
    for m in 0..maps {
        let nm = &nms[(m as usize) % nms.len()];
        let request = ObjValue::Record(
            "LaunchContainer".into(),
            vec![
                ("appId".into(), ObjValue::Int(app_id, id_taint)),
                ("offset".into(), ObjValue::int_plain((m * samples) as i64)),
                ("samples".into(), ObjValue::int_plain(samples as i64)),
            ],
        );
        let Ok(response) = nm.client.call(&request) else {
            return;
        };
        let inside = int_field(&response, "inside").map_or(0, |(v, _)| v) as u64;
        let outside = int_field(&response, "outside").map_or(0, |(v, _)| v) as u64;
        // The container echoed the app id back; keep its taint alive on
        // the RM (this is the NM→RM hop of the SDT flow).
        let echoed_taint = int_field(&response, "appId").map_or(Taint::EMPTY, |(_, t)| t);
        let mut apps = rm.apps.lock();
        if let Some(app) = apps.get_mut(&app_id) {
            app.pi_results.push(MapResult { inside, outside });
            app.id_taint = rm.vm.store().union(app.id_taint, echoed_taint);
            if app.pi_results.len() as u64 == maps {
                app.finished = true;
            }
        }
    }
}

/// Splits input at whitespace boundaries into roughly equal chunks so no
/// word straddles two map tasks.
fn split_input(input: &TaintedBytes, maps: u64) -> Vec<TaintedBytes> {
    let data = input.data();
    let target = data.len().div_ceil(maps as usize).max(1);
    let mut splits = Vec::new();
    let mut start = 0;
    while start < data.len() {
        let mut end = (start + target).min(data.len());
        while end < data.len() && data[end].is_ascii_alphanumeric() {
            end += 1;
        }
        splits.push(input.slice(start, end));
        start = end;
    }
    splits
}

fn schedule_wordcount(
    rm: &Arc<RmInner>,
    app_id: i64,
    id_taint: Taint,
    input: TaintedBytes,
    maps: u64,
    reducers: u64,
) {
    let nms = rm.node_managers.lock().clone();
    if nms.is_empty() {
        return;
    }
    // Map phase: one split per task, round-robin over NodeManagers.
    let splits = split_input(&input, maps);
    let mut mappers: Vec<(i64, NodeAddr)> = Vec::new();
    for (map_id, split) in splits.into_iter().enumerate() {
        let nm = &nms[map_id % nms.len()];
        let request = ObjValue::Record(
            "LaunchWordCountMap".into(),
            vec![
                ("appId".into(), ObjValue::Int(app_id, id_taint)),
                ("mapId".into(), ObjValue::int_plain(map_id as i64)),
                ("reducers".into(), ObjValue::int_plain(reducers as i64)),
                ("split".into(), ObjValue::Bytes(split)),
            ],
        );
        let Ok(response) = nm.client.call(&request) else {
            return;
        };
        if response.class_name() != Some("MapDone") {
            return;
        }
        mappers.push((map_id as i64, nm.addr));
    }
    // Reduce phase: each reducer fetches its partition from every mapper
    // NM (the NM↔NM shuffle) and returns merged cells.
    let mapper_list = ObjValue::List(
        mappers
            .iter()
            .map(|(map_id, addr)| {
                ObjValue::Record(
                    "Mapper".into(),
                    vec![
                        ("mapId".into(), ObjValue::int_plain(*map_id)),
                        ("addr".into(), ObjValue::str_plain(addr.to_string())),
                    ],
                )
            })
            .collect(),
    );
    let mut all_cells: Vec<WordCount> = Vec::new();
    for partition in 0..reducers {
        let nm = &nms[(partition as usize) % nms.len()];
        let request = ObjValue::Record(
            "LaunchWordCountReduce".into(),
            vec![
                ("appId".into(), ObjValue::Int(app_id, id_taint)),
                ("partition".into(), ObjValue::int_plain(partition as i64)),
                ("mappers".into(), mapper_list.clone()),
            ],
        );
        let Ok(response) = nm.client.call(&request) else {
            return;
        };
        let Some(cells_obj) = response.field("cells") else {
            return;
        };
        let Ok(cells) = decode_cells(cells_obj) else {
            return;
        };
        all_cells.extend(cells);
    }
    all_cells.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(a.word.value().cmp(b.word.value()))
    });
    all_cells.truncate(50);
    let mut apps = rm.apps.lock();
    if let Some(app) = apps.get_mut(&app_id) {
        app.word_counts = all_cells;
        app.finished = true;
    }
}

/// Parses a `NodeAddr` rendered with `Display` (shuffle mapper lists).
pub(crate) fn parse_addr(text: &str) -> Result<NodeAddr, JreError> {
    NodeAddr::from_str(text).map_err(|_| JreError::Protocol("malformed node address"))
}

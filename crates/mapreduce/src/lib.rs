//! # dista-mapreduce — a mini MapReduce/Yarn on the instrumented mini-JRE
//!
//! The paper's computing-framework subject (Table III): "MapReduce/Yarn —
//! JRE NIO, Yarn RPC — Calculate the value of Pi". This crate reproduces
//! the moving parts the evaluation touches:
//!
//! * **Yarn-style RPC** over NIO socket channels with length-prefixed
//!   object frames ([`rpc`]).
//! * **ResourceManager / NodeManager / Task Container** roles: the client
//!   submits a job to the RM, the RM schedules map tasks onto registered
//!   NMs, containers execute and report back, and the client polls
//!   `getApplicationReport` until the job finishes.
//! * **The Pi job**: Hadoop's quasi-Monte-Carlo estimator with a
//!   deterministic Halton sequence ([`pi`]).
//!
//! Taint scenarios (Table IV):
//! * **SDT** — source: the `ApplicationID` generated on the client
//!   (`YarnClient.createApplication`); sink: `getApplicationReport`. The
//!   id rides client → RM → NM → container → RM → client.
//! * **SIM** — source: `FileInputStream.read` (the NM's configuration
//!   file); sink: `LOG.info` (the RM logs node registrations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pi;
pub mod rpc;
pub mod wordcount;

mod client;
mod node_manager;
mod resource_manager;

pub use client::{
    run_pi_job, run_wordcount_job, ApplicationReport, PiJobResult, WordCountJobResult, YarnClient,
};
pub use node_manager::NodeManager;
pub use resource_manager::ResourceManager;

/// Descriptor class for the SDT source and sink points.
pub const YARN_CLIENT_CLASS: &str = "YarnClient";

//! Property tests for the protobuf-style wire codec.

use dista_hbase::pbrpc::PbMessage;
use dista_jre::{Mode, Vm};
use dista_simnet::SimNet;
use dista_taint::{TagValue, TaintedBytes};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum FieldSpec {
    Varint(u64),
    Bytes(Vec<u8>, Option<u8>),
}

fn field_strategy() -> impl Strategy<Value = (u64, FieldSpec)> {
    let field_no = 1u64..64;
    let value = prop_oneof![
        any::<u64>().prop_map(FieldSpec::Varint),
        (
            prop::collection::vec(any::<u8>(), 0..64),
            prop::option::of(0u8..4)
        )
            .prop_map(|(b, t)| FieldSpec::Bytes(b, t)),
    ];
    (field_no, value)
}

proptest! {
    /// Arbitrary field sequences round-trip exactly, values and taints.
    #[test]
    fn pb_roundtrip(fields in prop::collection::vec(field_strategy(), 0..16)) {
        let vm = Vm::builder("t", &SimNet::new())
            .mode(Mode::Phosphor)
            .build()
            .unwrap();
        let mut msg = PbMessage::new();
        for (field, spec) in &fields {
            match spec {
                FieldSpec::Varint(v) => {
                    msg.push_varint(*field, *v);
                }
                FieldSpec::Bytes(bytes, tag) => {
                    let taint = match tag {
                        Some(t) => vm.store().mint_source_taint(TagValue::Int(i64::from(*t))),
                        None => dista_taint::Taint::EMPTY,
                    };
                    msg.push_bytes(*field, TaintedBytes::uniform(bytes.clone(), taint));
                }
            }
        }
        let decoded = PbMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(&decoded, &msg);
        // Spot-check taints survived for every bytes field.
        for (field, spec) in &fields {
            if let FieldSpec::Bytes(bytes, Some(tag)) = spec {
                if !bytes.is_empty() {
                    let got = decoded
                        .bytes_repeated(*field)
                        .iter()
                        .any(|b| {
                            vm.store()
                                .tag_values(b.taint_union(vm.store()))
                                .contains(&tag.to_string())
                        });
                    prop_assert!(got, "taint {tag} lost on field {field}");
                }
            }
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn pb_decode_never_panics(junk in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = PbMessage::decode(&TaintedBytes::from_plain(junk));
    }
}

//! Protobuf-style wire encoding: tag/length/value fields with varints,
//! carried over length-framed NIO channels.
//!
//! Only the two wire types HBase's Get/Put RPCs need are implemented:
//! varint (`0`) and length-delimited (`2`). Field *values* keep their
//! per-byte taints; tags, lengths and varints are protocol scaffolding.

use dista_jre::{JreError, SocketChannel, Vm};
use dista_taint::{Payload, Taint, TaintedBytes};

const WIRE_VARINT: u64 = 0;
const WIRE_LEN: u64 = 2;

/// A decoded field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbValue {
    /// Wire type 0.
    Varint(u64),
    /// Wire type 2 (bytes/strings/sub-messages), taints preserved.
    Bytes(TaintedBytes),
}

/// An in-order list of `(field_number, value)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PbMessage {
    fields: Vec<(u64, PbValue)>,
}

impl PbMessage {
    /// An empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a varint field.
    pub fn push_varint(&mut self, field: u64, value: u64) -> &mut Self {
        self.fields.push((field, PbValue::Varint(value)));
        self
    }

    /// Appends a length-delimited field.
    pub fn push_bytes(&mut self, field: u64, value: TaintedBytes) -> &mut Self {
        self.fields.push((field, PbValue::Bytes(value)));
        self
    }

    /// Appends a string field with a uniform taint.
    pub fn push_str(&mut self, field: u64, value: &str, taint: Taint) -> &mut Self {
        self.push_bytes(
            field,
            TaintedBytes::uniform(value.as_bytes().to_vec(), taint),
        )
    }

    /// First varint with the given field number.
    pub fn varint(&self, field: u64) -> Option<u64> {
        self.fields.iter().find_map(|(f, v)| match v {
            PbValue::Varint(n) if *f == field => Some(*n),
            _ => None,
        })
    }

    /// First bytes field with the given field number.
    pub fn bytes(&self, field: u64) -> Option<&TaintedBytes> {
        self.fields.iter().find_map(|(f, v)| match v {
            PbValue::Bytes(b) if *f == field => Some(b),
            _ => None,
        })
    }

    /// All bytes fields with the given field number (repeated fields).
    pub fn bytes_repeated(&self, field: u64) -> Vec<&TaintedBytes> {
        self.fields
            .iter()
            .filter_map(|(f, v)| match v {
                PbValue::Bytes(b) if *f == field => Some(b),
                _ => None,
            })
            .collect()
    }

    /// Encodes to tainted bytes.
    pub fn encode(&self) -> TaintedBytes {
        let mut out = TaintedBytes::new();
        for (field, value) in &self.fields {
            match value {
                PbValue::Varint(n) => {
                    push_varint_plain(&mut out, field << 3 | WIRE_VARINT);
                    push_varint_plain(&mut out, *n);
                }
                PbValue::Bytes(bytes) => {
                    push_varint_plain(&mut out, field << 3 | WIRE_LEN);
                    push_varint_plain(&mut out, bytes.len() as u64);
                    out.extend_tainted(bytes);
                }
            }
        }
        out
    }

    /// Decodes from tainted bytes.
    ///
    /// # Errors
    ///
    /// [`JreError::Protocol`] on malformed wire data.
    pub fn decode(bytes: &TaintedBytes) -> Result<PbMessage, JreError> {
        let mut message = PbMessage::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let (key, next) = read_varint(bytes, pos)?;
            pos = next;
            let field = key >> 3;
            match key & 0x7 {
                WIRE_VARINT => {
                    let (value, next) = read_varint(bytes, pos)?;
                    pos = next;
                    message.push_varint(field, value);
                }
                WIRE_LEN => {
                    let (len, next) = read_varint(bytes, pos)?;
                    pos = next;
                    let end = pos + len as usize;
                    if end > bytes.len() {
                        return Err(JreError::Protocol("pb field overruns buffer"));
                    }
                    message.push_bytes(field, bytes.slice(pos, end));
                    pos = end;
                }
                _ => return Err(JreError::Protocol("unsupported pb wire type")),
            }
        }
        Ok(message)
    }
}

fn push_varint_plain(out: &mut TaintedBytes, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte, Taint::EMPTY);
            return;
        }
        out.push(byte | 0x80, Taint::EMPTY);
    }
}

fn read_varint(bytes: &TaintedBytes, mut pos: usize) -> Result<(u64, usize), JreError> {
    let mut value = 0u64;
    let mut shift = 0;
    loop {
        let Some(&byte) = bytes.data().get(pos) else {
            return Err(JreError::Protocol("truncated varint"));
        };
        pos += 1;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
        if shift > 63 {
            return Err(JreError::Protocol("varint too long"));
        }
    }
}

/// Sends one pb message as a length-prefixed frame on an NIO channel.
///
/// # Errors
///
/// Transport or Taint Map errors.
pub fn write_message(channel: &SocketChannel, message: &PbMessage) -> Result<(), JreError> {
    let encoded = message.encode();
    let tracks = channel.vm().mode().tracks_taints();
    let framed = if tracks {
        let mut f = TaintedBytes::with_capacity(4 + encoded.len());
        f.extend_plain(&(encoded.len() as u32).to_be_bytes());
        f.extend_tainted(&encoded);
        Payload::Tainted(f)
    } else {
        let mut f = Vec::with_capacity(4 + encoded.len());
        f.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
        f.extend_from_slice(encoded.data());
        Payload::Plain(f)
    };
    channel.write_payload(&framed)
}

/// Reads one pb message frame; `None` on clean EOF.
///
/// # Errors
///
/// Transport, Taint Map or decode errors.
pub fn read_message(channel: &SocketChannel, _vm: &Vm) -> Result<Option<PbMessage>, JreError> {
    let first = channel.read_payload(1)?;
    if first.is_empty() {
        return Ok(None);
    }
    let mut header = first.into_plain();
    while header.len() < 4 {
        header.extend_from_slice(channel.read_exact_payload(4 - header.len())?.data());
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let body = channel.read_exact_payload(len)?;
    Ok(Some(PbMessage::decode(&body.into_tainted())?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_jre::{Mode, Vm};
    use dista_simnet::SimNet;
    use dista_taint::TagValue;

    fn vm() -> Vm {
        Vm::builder("t", &SimNet::new())
            .mode(Mode::Phosphor)
            .build()
            .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let vm = vm();
        let t = vm.store().mint_source_taint(TagValue::str("tbl"));
        let mut msg = PbMessage::new();
        msg.push_varint(1, 300)
            .push_str(2, "users", t)
            .push_bytes(3, TaintedBytes::from_plain(b"row1".to_vec()))
            .push_bytes(3, TaintedBytes::from_plain(b"row2".to_vec()));
        let decoded = PbMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.varint(1), Some(300));
        assert_eq!(decoded.bytes(2).unwrap().data(), b"users");
        assert_eq!(
            vm.store()
                .tag_values(decoded.bytes(2).unwrap().taint_union(vm.store())),
            vec!["tbl"]
        );
        let rows = decoded.bytes_repeated(3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].data(), b"row2");
    }

    #[test]
    fn varint_edge_values() {
        for n in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut msg = PbMessage::new();
            msg.push_varint(7, n);
            assert_eq!(PbMessage::decode(&msg.encode()).unwrap().varint(7), Some(n));
        }
    }

    #[test]
    fn malformed_input_errors() {
        // Truncated varint.
        let bad = TaintedBytes::from_plain(vec![0x80]);
        assert!(PbMessage::decode(&bad).is_err());
        // Length field overrunning the buffer.
        let mut msg = TaintedBytes::from_plain(vec![0x12, 0x05, b'a']);
        assert!(PbMessage::decode(&msg).is_err());
        msg.truncate(0);
        assert!(PbMessage::decode(&msg).unwrap().fields.is_empty());
    }

    #[test]
    fn missing_fields_are_none() {
        let msg = PbMessage::new();
        assert!(msg.varint(1).is_none());
        assert!(msg.bytes(1).is_none());
        assert!(msg.bytes_repeated(1).is_empty());
    }
}

//! The HMaster: discovers RegionServers through ZooKeeper and assigns
//! tables to them.

use std::time::Duration;

use dista_jre::{JreError, Logger, Vm};
use dista_taint::{Payload, TaintedBytes};
use dista_zookeeper::{ZkClient, ZkError};

/// A running HMaster (stateless after assignment: all cluster state
/// lives in ZooKeeper, like real HBase).
#[derive(Debug)]
pub struct HMaster {
    vm: Vm,
    log: Logger,
    zk: ZkClient,
}

impl HMaster {
    /// Connects the master to ZooKeeper.
    ///
    /// # Errors
    ///
    /// ZooKeeper connection errors.
    pub fn start(vm: &Vm, zk_addr: dista_simnet::NodeAddr) -> Result<Self, ZkError> {
        Ok(HMaster {
            vm: vm.clone(),
            log: Logger::new(vm),
            zk: ZkClient::connect(vm, zk_addr)?,
        })
    }

    /// Waits for `expected` RegionServers to register in ZooKeeper,
    /// logging each discovery (`LOG.info` — the SIM sink; the logged
    /// value carries the RS's config-file taint *through ZooKeeper*).
    ///
    /// Returns the registered RS addresses as stored (taints intact).
    ///
    /// # Errors
    ///
    /// ZooKeeper errors, or [`JreError::Protocol`] on timeout.
    pub fn wait_for_region_servers(&self, expected: usize) -> Result<Vec<TaintedBytes>, JreError> {
        let mut servers = Vec::new();
        for index in 0..expected {
            let path = format!("/hbase/rs/{index}");
            let mut found = None;
            for _ in 0..1000 {
                match self.zk.get(&path) {
                    Ok(value) => {
                        found = Some(value);
                        break;
                    }
                    Err(ZkError::NoNode(_)) => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(_) => return Err(JreError::Protocol("zookeeper unavailable")),
                }
            }
            let value = found.ok_or(JreError::Protocol("region server never registered"))?;
            self.log.info_payload(
                &format!("region server {index} registered"),
                &Payload::Tainted(value.clone()),
            );
            servers.push(value);
        }
        Ok(servers)
    }

    /// Assigns each table to a RegionServer (round-robin) by writing
    /// `/hbase/table/<name>` — the assignment value is the RS address
    /// bytes as read from the registration, so any taint they carry
    /// continues through ZooKeeper to clients.
    ///
    /// # Errors
    ///
    /// ZooKeeper errors.
    pub fn assign_tables(&self, tables: &[&str], servers: &[TaintedBytes]) -> Result<(), JreError> {
        if servers.is_empty() {
            return Err(JreError::Protocol("no region servers to assign to"));
        }
        for (i, table) in tables.iter().enumerate() {
            let rs = &servers[i % servers.len()];
            self.zk
                .create(&format!("/hbase/table/{table}"), rs.clone())
                .map_err(|_| JreError::Protocol("table assignment failed"))?;
        }
        Ok(())
    }

    /// The master's VM.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Closes the ZooKeeper session.
    pub fn shutdown(self) {
        self.zk.close();
    }
}

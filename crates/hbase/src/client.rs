//! The HBase client: table handle resolved through ZooKeeper, Get/Put
//! over protobuf RPC.

use std::str::FromStr;

use dista_jre::{JreError, Logger, SocketChannel, Vm};
use dista_simnet::NodeAddr;
use dista_taint::{Payload, TagValue, Taint, Tainted, TaintedBytes};
use dista_zookeeper::ZkClient;

use crate::pbrpc::{read_message, write_message, PbMessage};
use crate::region_server::{METHOD_GET, METHOD_PUT, METHOD_SCAN};
use crate::HTABLE_CLASS;

/// One cell of a result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyValue {
    /// Row key.
    pub row: Vec<u8>,
    /// Cell value with per-byte taints.
    pub value: TaintedBytes,
}

/// The `Result` of a get — the SDT sink variable.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Whether the row existed.
    pub found: bool,
    /// The cells (empty when not found).
    pub cells: Vec<KeyValue>,
    /// Union of every taint in the result, as checked at the sink.
    pub taint: Taint,
}

/// A client-side table handle.
#[derive(Debug)]
pub struct HTable {
    vm: Vm,
    log: Logger,
    table_name: Tainted<String>,
    channel: SocketChannel,
}

impl HTable {
    /// Opens a table: taints the `TableName` (the SDT source point),
    /// resolves the owning RegionServer **through ZooKeeper** (the
    /// cross-system hop, logged via `LOG.info`), then connects to it.
    ///
    /// # Errors
    ///
    /// ZooKeeper, transport or protocol errors.
    pub fn open(vm: &Vm, zk_addr: NodeAddr, table: &str) -> Result<Self, JreError> {
        // SDT source: "we set a TableName variable as the source".
        let name_taint = vm.source_point(
            HTABLE_CLASS,
            "tableName",
            TagValue::str(format!("table:{table}")),
        );
        let table_name = Tainted::new(table.to_string(), name_taint);

        let zk = ZkClient::connect(vm, zk_addr)
            .map_err(|_| JreError::Protocol("zookeeper unreachable"))?;
        let route = zk
            .get(&format!("/hbase/table/{table}"))
            .map_err(|_| JreError::Protocol("table not assigned"))?;
        zk.close();
        let log = Logger::new(vm);
        // SIM visibility: route discovery is logged; the route bytes may
        // carry the RS's config taint (via master via ZooKeeper).
        log.info_payload("located region server", &Payload::Tainted(route.clone()));

        let rs_addr = NodeAddr::from_str(
            std::str::from_utf8(route.data()).map_err(|_| JreError::Protocol("malformed route"))?,
        )
        .map_err(|_| JreError::Protocol("malformed route"))?;
        Ok(HTable {
            vm: vm.clone(),
            log,
            table_name,
            channel: SocketChannel::connect(vm, rs_addr)?,
        })
    }

    /// The (tainted) table name.
    pub fn table_name(&self) -> &Tainted<String> {
        &self.table_name
    }

    /// Stores a cell.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn put(&self, row: &[u8], value: TaintedBytes) -> Result<(), JreError> {
        let mut request = PbMessage::new();
        request
            .push_varint(1, METHOD_PUT)
            .push_str(2, self.table_name.value(), self.table_name.taint())
            .push_bytes(3, TaintedBytes::from_plain(row.to_vec()))
            .push_bytes(4, value);
        write_message(&self.channel, &request)?;
        let response = read_message(&self.channel, &self.vm)?.ok_or(JreError::Eof)?;
        if response.varint(1) != Some(1) {
            return Err(JreError::Protocol("put rejected"));
        }
        Ok(())
    }

    /// Fetches a row — `getResult` is the SDT sink point: the returned
    /// `Result`'s taint is checked before it is handed to the caller.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn get(&self, row: &[u8]) -> Result<ResultRow, JreError> {
        let mut request = PbMessage::new();
        request
            .push_varint(1, METHOD_GET)
            .push_str(2, self.table_name.value(), self.table_name.taint())
            .push_bytes(3, TaintedBytes::from_plain(row.to_vec()));
        write_message(&self.channel, &request)?;
        let response = read_message(&self.channel, &self.vm)?.ok_or(JreError::Eof)?;

        let found = response.varint(1) == Some(1);
        let store = self.vm.store();
        let mut taint = response
            .bytes(2)
            .map_or(Taint::EMPTY, |t| t.taint_union(store));
        let mut cells = Vec::new();
        if found {
            let row_bytes = response.bytes(3).cloned().unwrap_or_default();
            let value = response.bytes(4).cloned().unwrap_or_default();
            taint = store.union(taint, value.taint_union(store));
            cells.push(KeyValue {
                row: row_bytes.into_plain(),
                value,
            });
        }
        // SDT sink: check the Result.
        self.vm.sink_point(HTABLE_CLASS, "getResult", taint);
        self.log.info_taint("get served", taint);
        Ok(ResultRow {
            found,
            cells,
            taint,
        })
    }

    /// Range-scans `[start, stop)` (empty `stop` = to the end). Each
    /// returned cell keeps its stored per-byte taints; the scan result is
    /// checked at the same `getResult` sink as gets.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn scan(&self, start: &[u8], stop: &[u8]) -> Result<Vec<KeyValue>, JreError> {
        let mut request = PbMessage::new();
        request
            .push_varint(1, METHOD_SCAN)
            .push_str(2, self.table_name.value(), self.table_name.taint())
            .push_bytes(3, TaintedBytes::from_plain(start.to_vec()))
            .push_bytes(4, TaintedBytes::from_plain(stop.to_vec()));
        write_message(&self.channel, &request)?;
        let response = read_message(&self.channel, &self.vm)?.ok_or(JreError::Eof)?;
        let store = self.vm.store();
        let mut taint = Taint::EMPTY;
        let mut cells = Vec::new();
        for encoded in response.bytes_repeated(5) {
            let cell = PbMessage::decode(encoded)?;
            let row = cell.bytes(1).cloned().unwrap_or_default();
            let value = cell.bytes(2).cloned().unwrap_or_default();
            taint = store.union(taint, value.taint_union(store));
            cells.push(KeyValue {
                row: row.into_plain(),
                value,
            });
        }
        self.vm.sink_point(HTABLE_CLASS, "getResult", taint);
        Ok(cells)
    }

    /// Closes the RegionServer channel.
    pub fn close(&self) {
        self.channel.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::HMaster;
    use crate::region_server::{seed_config, RegionServer};
    use dista_core::{Cluster, Mode};
    use dista_jre::{FILE_INPUT_STREAM_CLASS, LOGGER_CLASS};
    use dista_taint::{MethodDesc, SourceSinkSpec};
    use dista_zookeeper::{ZkEnsemble, ZkEnsembleConfig};

    fn sdt_spec() -> SourceSinkSpec {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(HTABLE_CLASS, "tableName"))
            .add_sink(MethodDesc::new(HTABLE_CLASS, "getResult"));
        spec
    }

    fn sim_spec() -> SourceSinkSpec {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
            .add_sink(MethodDesc::new(LOGGER_CLASS, "info"));
        spec
    }

    struct Stack {
        cluster: Cluster,
        ensemble: ZkEnsemble,
        master: HMaster,
        region_servers: Vec<RegionServer>,
    }

    /// Paper deployment: 1 HMaster + 2 HRegionServers, each node with a
    /// ZooKeeper process, plus a client node. VM layout: 0 = master,
    /// 1..2 = region servers, 3 = client; ZK runs on VMs 0-2.
    fn stack(mode: Mode, spec: SourceSinkSpec) -> Stack {
        let cluster = Cluster::builder(mode)
            .nodes("hb", 4)
            .spec(spec)
            .build()
            .unwrap();
        let zk_vms: Vec<_> = cluster.vms()[..3].to_vec();
        let ensemble = ZkEnsemble::start(&zk_vms, ZkEnsembleConfig::default()).unwrap();

        let mut region_servers = Vec::new();
        for (i, vm) in cluster.vms()[1..3].iter().enumerate() {
            seed_config(vm, &format!("rs-host-{i}"));
            let rs = RegionServer::start(vm, NodeAddr::new(vm.ip(), 16020)).unwrap();
            let zk = ZkClient::connect(vm, ensemble.any_client_addr()).unwrap();
            rs.register_in_zk(&zk, i).unwrap();
            zk.close();
            region_servers.push(rs);
        }
        let master = HMaster::start(cluster.vm(0), ensemble.any_client_addr()).unwrap();
        let servers = master.wait_for_region_servers(2).unwrap();
        master.assign_tables(&["users"], &servers).unwrap();
        Stack {
            cluster,
            ensemble,
            master,
            region_servers,
        }
    }

    fn teardown(stack: Stack) {
        stack.master.shutdown();
        for rs in stack.region_servers {
            rs.shutdown();
        }
        stack.ensemble.shutdown();
        stack.cluster.shutdown();
    }

    #[test]
    fn get_from_table_end_to_end() {
        let stack = stack(Mode::Dista, sdt_spec());
        let client_vm = stack.cluster.vm(3);
        let table = HTable::open(client_vm, stack.ensemble.any_client_addr(), "users").unwrap();
        table
            .put(b"row1", TaintedBytes::from_plain(b"alice".to_vec()))
            .unwrap();
        let result = table.get(b"row1").unwrap();
        assert!(result.found);
        assert_eq!(result.cells[0].value.data(), b"alice");
        // SDT: the TableName taint crossed client -> RS -> client.
        let tags = client_vm.store().tag_values(result.taint);
        assert_eq!(tags, vec!["table:users".to_string()]);
        let report = client_vm.sink_report();
        assert!(report.at("HTable.getResult").iter().any(|e| e.is_tainted()));
        table.close();
        teardown(stack);
    }

    #[test]
    fn missing_row_is_not_found_but_still_checked() {
        let stack = stack(Mode::Dista, sdt_spec());
        let client_vm = stack.cluster.vm(3);
        let table = HTable::open(client_vm, stack.ensemble.any_client_addr(), "users").unwrap();
        let result = table.get(b"ghost").unwrap();
        assert!(!result.found);
        assert!(result.cells.is_empty());
        // The echoed table name still carries the taint.
        assert_eq!(
            client_vm.store().tag_values(result.taint),
            vec!["table:users".to_string()]
        );
        table.close();
        teardown(stack);
    }

    #[test]
    fn phosphor_loses_the_table_name_taint() {
        let stack = stack(Mode::Phosphor, sdt_spec());
        let client_vm = stack.cluster.vm(3);
        let table = HTable::open(client_vm, stack.ensemble.any_client_addr(), "users").unwrap();
        table
            .put(b"row1", TaintedBytes::from_plain(b"bob".to_vec()))
            .unwrap();
        let result = table.get(b"row1").unwrap();
        assert!(result.found);
        assert!(result.taint.is_empty(), "taint died at the RPC boundary");
        table.close();
        teardown(stack);
    }

    #[test]
    fn sim_config_taint_crosses_two_systems() {
        // RS config file -> ZooKeeper (system 1) -> HMaster LOG.info and
        // onward to the client's route lookup (system 2) — the paper's
        // cross-system taint tracking scenario.
        let stack = stack(Mode::Dista, sim_spec());
        // Master logged both registrations with the RS file taints.
        let master_report = stack.cluster.vm(0).sink_report();
        let registrations: Vec<_> = master_report
            .events
            .iter()
            .filter(|e| e.sink == "LOG.info" && e.is_tainted())
            .collect();
        assert_eq!(registrations.len(), 2);
        for event in &registrations {
            assert_eq!(event.tags.len(), 1);
            assert!(event.tags[0].starts_with("conf/hbase-site.xml#r"));
        }

        // The client's route lookup sees the taint through ZK as well.
        let client_vm = stack.cluster.vm(3);
        let table = HTable::open(client_vm, stack.ensemble.any_client_addr(), "users").unwrap();
        let client_report = client_vm.sink_report();
        let located: Vec<_> = client_report
            .events
            .iter()
            .filter(|e| e.sink == "LOG.info" && e.is_tainted())
            .collect();
        assert!(
            !located.is_empty(),
            "route bytes should carry the RS config taint to the client"
        );
        table.close();
        teardown(stack);
    }

    #[test]
    fn scan_returns_range_with_taints() {
        let stack = stack(Mode::Dista, sdt_spec());
        let client_vm = stack.cluster.vm(3);
        let table = HTable::open(client_vm, stack.ensemble.any_client_addr(), "users").unwrap();
        let secret = client_vm
            .store()
            .mint_source_taint(dista_taint::TagValue::str("pii"));
        for (row, tainted) in [("a1", false), ("b2", true), ("b9", true), ("c3", false)] {
            let value = if tainted {
                TaintedBytes::uniform(format!("v-{row}").into_bytes(), secret)
            } else {
                TaintedBytes::from_plain(format!("v-{row}").into_bytes())
            };
            table.put(row.as_bytes(), value).unwrap();
        }
        // Scan the b-range only.
        let cells = table.scan(b"b", b"c").unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].row, b"b2");
        assert_eq!(cells[1].row, b"b9");
        for cell in &cells {
            assert_eq!(
                client_vm
                    .store()
                    .tag_values(cell.value.taint_union(client_vm.store())),
                vec!["pii".to_string()],
                "stored taints come back out of the scan"
            );
        }
        // Full scan sees all four rows.
        assert_eq!(table.scan(b"", b"").unwrap().len(), 4);
        table.close();
        teardown(stack);
    }
}

//! RegionServers: table storage and the Get/Put protobuf RPC service.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dista_jre::{FileInputStream, JreError, ServerSocketChannel, SocketChannel, Vm};
use dista_simnet::{NetError, NodeAddr};
use dista_taint::{Tainted, TaintedBytes};
use dista_zookeeper::ZkClient;
use parking_lot::Mutex;

use crate::pbrpc::{read_message, write_message, PbMessage};

/// RPC method ids (field 1 of every request).
pub(crate) const METHOD_GET: u64 = 1;
pub(crate) const METHOD_PUT: u64 = 2;
pub(crate) const METHOD_SCAN: u64 = 3;

type Store = Arc<Mutex<HashMap<Vec<u8>, BTreeMap<Vec<u8>, TaintedBytes>>>>;

/// A running RegionServer.
pub struct RegionServer {
    vm: Vm,
    addr: NodeAddr,
    hostname: Tainted<String>,
    running: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RegionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionServer")
            .field("addr", &self.addr)
            .field("hostname", self.hostname.value())
            .finish()
    }
}

impl RegionServer {
    /// Starts the RS at `addr`, reading `conf/hbase-site.xml` for its
    /// hostname (the SIM source point; falls back to the VM name).
    ///
    /// # Errors
    ///
    /// Transport errors (address in use).
    pub fn start(vm: &Vm, addr: NodeAddr) -> Result<Self, JreError> {
        let hostname = match FileInputStream::open(vm, "conf/hbase-site.xml") {
            Ok(file) => {
                let contents = file.read_to_string()?;
                let taint = contents.taint();
                let host = contents
                    .value()
                    .lines()
                    .find_map(|l| l.strip_prefix("hostname="))
                    .unwrap_or("rs")
                    .to_string();
                Tainted::new(host, taint)
            }
            Err(_) => Tainted::untainted(vm.name().to_string()),
        };
        let store: Store = Arc::new(Mutex::new(HashMap::new()));
        let listener = ServerSocketChannel::bind(vm, addr)?;
        let running = Arc::new(AtomicBool::new(true));
        let accept_running = running.clone();
        let accept_vm = vm.clone();
        let acceptor = std::thread::Builder::new()
            .name(format!("hbase-rs-{addr}"))
            .spawn(move || {
                while accept_running.load(Ordering::Relaxed) {
                    let channel = match listener.accept() {
                        Ok(c) => c,
                        Err(JreError::Net(NetError::Timeout(_))) => continue,
                        Err(_) => break,
                    };
                    let store = store.clone();
                    let vm = accept_vm.clone();
                    std::thread::spawn(move || serve(channel, store, vm));
                }
            })
            .expect("spawn hbase rs acceptor");
        Ok(RegionServer {
            vm: vm.clone(),
            addr,
            hostname,
            running,
            acceptor: Some(acceptor),
        })
    }

    /// The RS's RPC address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The configured hostname (file-tainted in SIM runs).
    pub fn hostname(&self) -> &Tainted<String> {
        &self.hostname
    }

    /// Registers with the cluster by writing `/hbase/rs/<index>` into
    /// ZooKeeper. The node's *value* is this RS's RPC address, tainted
    /// with the hostname's config-file taint — the taint enters the
    /// second system here.
    ///
    /// # Errors
    ///
    /// ZooKeeper errors.
    pub fn register_in_zk(&self, zk: &ZkClient, index: usize) -> Result<(), JreError> {
        let value =
            TaintedBytes::uniform(self.addr.to_string().into_bytes(), self.hostname.taint());
        zk.create(&format!("/hbase/rs/{index}"), value)
            .map_err(|_| JreError::Protocol("zookeeper registration failed"))?;
        Ok(())
    }

    /// Stops the RPC service.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            self.running.store(false, Ordering::Relaxed);
            if let Ok(c) = SocketChannel::connect(&self.vm, self.addr) {
                c.close();
            }
            self.vm.net().tcp_unlisten(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for RegionServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(channel: SocketChannel, store: Store, vm: Vm) {
    loop {
        let request = match read_message(&channel, &vm) {
            Ok(Some(r)) => r,
            Ok(None) | Err(_) => return,
        };
        let method = request.varint(1).unwrap_or(0);
        let table = request.bytes(2).cloned().unwrap_or_default();
        let row = request.bytes(3).cloned().unwrap_or_default();
        let mut response = PbMessage::new();
        match method {
            METHOD_PUT => {
                let value = request.bytes(4).cloned().unwrap_or_default();
                store
                    .lock()
                    .entry(table.data().to_vec())
                    .or_default()
                    .insert(row.data().to_vec(), value);
                response.push_varint(1, 1);
            }
            METHOD_SCAN => {
                // Range scan: [startRow, stopRow); cells are nested pb
                // messages in repeated field 5.
                let start = request
                    .bytes(3)
                    .map(|b| b.data().to_vec())
                    .unwrap_or_default();
                let stop = request.bytes(4).map(|b| b.data().to_vec());
                response.push_varint(1, 1);
                let store = store.lock();
                if let Some(region) = store.get(table.data()) {
                    for (row_key, value) in region.range(start..) {
                        if let Some(stop) = &stop {
                            if !stop.is_empty() && row_key >= stop {
                                break;
                            }
                        }
                        let mut cell = PbMessage::new();
                        cell.push_bytes(1, TaintedBytes::from_plain(row_key.clone()));
                        cell.push_bytes(2, value.clone());
                        response.push_bytes(5, cell.encode());
                    }
                }
            }
            METHOD_GET => {
                let found = store
                    .lock()
                    .get(table.data())
                    .and_then(|region| region.get(row.data()))
                    .cloned();
                match found {
                    Some(value) => {
                        response.push_varint(1, 1);
                        // Echo the (possibly tainted) table name — real
                        // responses identify their region, and this is
                        // the hop that carries the TableName taint back.
                        response.push_bytes(2, table);
                        response.push_bytes(3, row);
                        response.push_bytes(4, value);
                    }
                    None => {
                        response.push_varint(1, 0);
                        response.push_bytes(2, table);
                    }
                }
            }
            _ => {
                response.push_varint(1, 0);
            }
        }
        if write_message(&channel, &response).is_err() {
            return;
        }
    }
}

/// Writes an RS config file onto `vm`'s disk so SIM runs taint the
/// hostname.
pub fn seed_config(vm: &Vm, hostname: &str) {
    vm.fs().write(
        "conf/hbase-site.xml",
        format!("hostname={hostname}").into_bytes(),
    );
}

//! # dista-hbase — a mini HBase coordinated through mini ZooKeeper
//!
//! The paper's database subject (Table III): "HBase — JRE NIO, protobuf
//! RPC — Get data from a table", explicitly a **cross-system** workload:
//! "HBase's workload must run within two systems, i.e., HBase and
//! ZooKeeper."
//!
//! The reproduction wires the same shape:
//! * Each HBase node co-hosts a mini-ZooKeeper peer
//!   ([`dista_zookeeper::ZkEnsemble`]); the [`HMaster`] records table →
//!   RegionServer assignments in the ZooKeeper data tree.
//! * [`RegionServer`]s store table regions and serve Get/Put over a
//!   protobuf-style tag/length/value RPC ([`pbrpc`]) on NIO channels.
//! * [`HTable`] clients resolve the table's RegionServer *through
//!   ZooKeeper* (the cross-system hop) and then issue the Get RPC.
//!
//! Taint scenarios (Table IV):
//! * **SDT** — source: the client's `TableName` variable
//!   (`HTable.tableName`); sink: the `Result` returned by the get
//!   (`HTable.getResult`). The taint crosses client → ZK → client →
//!   RegionServer → client.
//! * **SIM** — source: each RegionServer's `conf/hbase-site.xml` read;
//!   sink: `LOG.info` on the HMaster (which logs RS registrations it
//!   discovers through ZooKeeper — a two-system taint path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod master;
pub mod pbrpc;
mod region_server;

pub use client::{HTable, KeyValue, ResultRow};
pub use master::HMaster;
pub use region_server::{seed_config, RegionServer};

/// SDT source/sink descriptor class.
pub const HTABLE_CLASS: &str = "HTable";

//! Channel pipelines: ordered chains of message codecs.
//!
//! Netty applications compose behaviour by stacking handlers in a
//! `ChannelPipeline`. The reproduction models the codec portion: each
//! [`MessageCodec`] transforms outbound messages on the way down and
//! inbound frames on the way up (in reverse order). Codecs receive
//! [`Payload`]s, so taint shadows flow through every stage.

use std::sync::Arc;

use dista_jre::Vm;
use dista_taint::{Payload, TaintedBytes};

/// A bidirectional message transform stage.
pub trait MessageCodec: Send + Sync {
    /// Outbound transform (application → wire).
    fn encode(&self, msg: Payload, vm: &Vm) -> Payload;
    /// Inbound transform (wire → application).
    fn decode(&self, frame: Payload, vm: &Vm) -> Payload;
}

/// An ordered codec chain shared by all channels of a bootstrap.
#[derive(Clone, Default)]
pub struct Pipeline {
    codecs: Vec<Arc<dyn MessageCodec>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.codecs.len())
            .finish()
    }
}

impl Pipeline {
    /// An empty pipeline (messages pass through unchanged).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a codec stage.
    pub fn add_last(mut self, codec: impl MessageCodec + 'static) -> Self {
        self.codecs.push(Arc::new(codec));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.codecs.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.codecs.is_empty()
    }

    /// Runs the outbound direction (first stage first).
    pub fn run_outbound(&self, msg: Payload, vm: &Vm) -> Payload {
        count_message(vm, "netty_outbound_msgs");
        self.codecs
            .iter()
            .fold(msg, |acc, codec| codec.encode(acc, vm))
    }

    /// Runs the inbound direction (last stage first).
    pub fn run_inbound(&self, frame: Payload, vm: &Vm) -> Payload {
        count_message(vm, "netty_inbound_msgs");
        self.codecs
            .iter()
            .rev()
            .fold(frame, |acc, codec| codec.decode(acc, vm))
    }
}

/// Bumps a per-node message counter when the VM carries an enabled
/// observability context (nothing happens — and nothing is interned —
/// otherwise).
fn count_message(vm: &Vm, family: &str) {
    if let Some(reg) = vm.observability().registry() {
        reg.counter_with(family, &[("node", vm.name())]).inc();
    }
}

/// A demonstration codec that XORs every byte with a key — the kind of
/// lightweight obfuscation stage real pipelines contain. Taints ride
/// through untouched byte-for-byte (the transformation is 1:1).
#[derive(Debug, Clone, Copy)]
pub struct XorObfuscationCodec {
    key: u8,
}

impl XorObfuscationCodec {
    /// Creates a codec with the given key.
    pub fn new(key: u8) -> Self {
        XorObfuscationCodec { key }
    }

    fn apply(&self, msg: Payload) -> Payload {
        // In place: the codec owns the payload, so the bytes mutate where
        // they sit and the shadow is reused untouched — no allocation.
        match msg {
            Payload::Plain(mut d) => {
                for b in &mut d {
                    *b ^= self.key;
                }
                Payload::Plain(d)
            }
            Payload::Tainted(t) => {
                let (mut data, shadow) = t.into_runs_parts();
                for b in &mut data {
                    *b ^= self.key;
                }
                Payload::Tainted(TaintedBytes::from_runs(data, shadow))
            }
        }
    }
}

impl MessageCodec for XorObfuscationCodec {
    fn encode(&self, msg: Payload, _vm: &Vm) -> Payload {
        self.apply(msg)
    }

    fn decode(&self, frame: Payload, _vm: &Vm) -> Payload {
        self.apply(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_jre::Mode;
    use dista_simnet::SimNet;
    use dista_taint::TagValue;

    fn vm() -> Vm {
        Vm::builder("t", &SimNet::new())
            .mode(Mode::Phosphor)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_pipeline_passes_through() {
        let vm = vm();
        let p = Pipeline::new();
        assert!(p.is_empty());
        let msg = Payload::Plain(b"x".to_vec());
        assert_eq!(p.run_outbound(msg.clone(), &vm), msg);
        assert_eq!(p.run_inbound(msg.clone(), &vm), msg);
    }

    #[test]
    fn inbound_reverses_outbound() {
        let vm = vm();
        let p = Pipeline::new()
            .add_last(XorObfuscationCodec::new(0x5A))
            .add_last(XorObfuscationCodec::new(0x33));
        assert_eq!(p.len(), 2);
        let t = vm.store().mint_source_taint(TagValue::str("pipe"));
        let msg = Payload::Tainted(TaintedBytes::uniform(b"payload", t));
        let wire = p.run_outbound(msg.clone(), &vm);
        assert_ne!(wire.data(), msg.data(), "obfuscated on the wire");
        let back = p.run_inbound(wire, &vm);
        assert_eq!(back, msg, "decode inverts encode, taints intact");
    }

    #[test]
    fn observed_pipeline_counts_messages() {
        let net = SimNet::new();
        let obs = dista_obs::Observability::with_registry(
            dista_obs::ObsConfig::default(),
            net.registry().clone(),
        );
        let vm = Vm::builder("n1", &net)
            .mode(Mode::Phosphor)
            .observability(obs)
            .build()
            .unwrap();
        let p = Pipeline::new().add_last(XorObfuscationCodec::new(0x42));
        let msg = Payload::Plain(b"m".to_vec());
        let wire = p.run_outbound(msg.clone(), &vm);
        p.run_inbound(wire, &vm);
        p.run_outbound(msg, &vm);
        let dump = net.registry().snapshot();
        assert_eq!(dump.counter_total("netty_outbound_msgs"), 2);
        assert_eq!(dump.counter_total("netty_inbound_msgs"), 1);
    }

    #[test]
    fn xor_codec_keeps_shadows() {
        let vm = vm();
        let t = vm.store().mint_source_taint(TagValue::str("k"));
        let codec = XorObfuscationCodec::new(0xFF);
        let out = codec.encode(Payload::Tainted(TaintedBytes::uniform(b"\x00\x01", t)), &vm);
        assert_eq!(out.data(), &[0xFF, 0xFE]);
        assert_eq!(
            vm.store().tag_values(out.taint_union(vm.store())),
            vec!["k"]
        );
    }
}

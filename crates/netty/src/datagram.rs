//! Netty datagram channels (the "Netty DatagramSocket 3rd-party UDP"
//! micro-benchmark case).

use dista_jre::{DatagramPacket, DatagramSocket, JreError, Vm};
use dista_simnet::NodeAddr;
use dista_taint::Payload;

use crate::pipeline::Pipeline;

/// A bound Netty-style datagram endpoint with a codec pipeline.
#[derive(Debug, Clone)]
pub struct DatagramBootstrap {
    socket: DatagramSocket,
    pipeline: Pipeline,
    recv_capacity: usize,
}

impl DatagramBootstrap {
    /// Binds at `addr` with an empty pipeline and 64 KiB receive buffers.
    ///
    /// # Errors
    ///
    /// Transport errors (address in use).
    pub fn bind(vm: &Vm, addr: NodeAddr) -> Result<Self, JreError> {
        Ok(DatagramBootstrap {
            socket: DatagramSocket::bind(vm, addr)?,
            pipeline: Pipeline::new(),
            recv_capacity: 64 * 1024,
        })
    }

    /// Installs the codec pipeline.
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Overrides the receive buffer size in data bytes.
    pub fn recv_capacity(mut self, capacity: usize) -> Self {
        self.recv_capacity = capacity;
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> NodeAddr {
        self.socket.local_addr()
    }

    /// The VM that owns the endpoint.
    pub fn vm(&self) -> &Vm {
        self.socket.vm()
    }

    /// Sends one message to `dest` through the pipeline.
    ///
    /// # Errors
    ///
    /// Taint Map errors during wire wrapping.
    pub fn send(&self, dest: NodeAddr, msg: &Payload) -> Result<(), JreError> {
        let wire = self.pipeline.run_outbound(msg.clone(), self.vm());
        self.socket.send(&DatagramPacket::for_send(wire, dest))
    }

    /// Blocks for the next message; returns `(message, sender)`.
    ///
    /// # Errors
    ///
    /// Transport or Taint Map errors.
    pub fn receive(&self) -> Result<(Payload, NodeAddr), JreError> {
        let mut packet = DatagramPacket::for_receive(self.recv_capacity);
        self.socket.receive(&mut packet)?;
        let from = packet.addr().expect("receive sets the sender");
        let msg = self.pipeline.run_inbound(packet.into_data(), self.vm());
        Ok((msg, from))
    }

    /// Closes the endpoint.
    pub fn close(&self) {
        self.socket.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::XorObfuscationCodec;
    use dista_jre::Mode;
    use dista_simnet::SimNet;
    use dista_taint::{TagValue, TaintedBytes};
    use dista_taintmap::TaintMapEndpoint;

    #[test]
    fn datagram_pipeline_roundtrip() {
        let net = SimNet::new();
        let tm = TaintMapEndpoint::builder().connect(&net).unwrap();
        let mk = |n: &str, ip: [u8; 4]| {
            Vm::builder(n, &net)
                .mode(Mode::Dista)
                .ip(ip)
                .taint_map(tm.topology())
                .build()
                .unwrap()
        };
        let vm1 = mk("a", [10, 0, 0, 1]);
        let vm2 = mk("b", [10, 0, 0, 2]);
        let pipeline = || Pipeline::new().add_last(XorObfuscationCodec::new(0x11));
        let a = DatagramBootstrap::bind(&vm1, NodeAddr::new([10, 0, 0, 1], 5000))
            .unwrap()
            .pipeline(pipeline());
        let b = DatagramBootstrap::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 5000))
            .unwrap()
            .pipeline(pipeline());
        let t = vm1.store().mint_source_taint(TagValue::str("nd"));
        a.send(
            b.local_addr(),
            &Payload::Tainted(TaintedBytes::uniform(b"netty dgram", t)),
        )
        .unwrap();
        let (msg, from) = b.receive().unwrap();
        assert_eq!(msg.data(), b"netty dgram");
        assert_eq!(from, a.local_addr());
        assert_eq!(
            vm2.store().tag_values(msg.taint_union(vm2.store())),
            vec!["nd".to_string()]
        );
        tm.shutdown();
    }
}

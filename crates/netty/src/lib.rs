//! # dista-netty — a Netty-like framework on the instrumented mini-JRE
//!
//! Three of the paper's micro-benchmark cases (Netty Socket, Netty
//! DatagramSocket, Netty HTTP — Table II) and RocketMQ's transport run on
//! Netty, a third-party event-driven network framework. This crate is the
//! reproduction's Netty: channel pipelines of message codecs over
//! length-prefixed frames, server/client bootstraps with handler
//! callbacks, and a datagram flavour.
//!
//! Because every Netty channel ultimately reads and writes through the
//! mini-JRE's NIO classes (`dista_jre::SocketChannel`), DisTA's JNI-level
//! instrumentation covers Netty *without any Netty-specific work* — which
//! is the paper's genericity claim in miniature.
//!
//! # Example
//!
//! ```rust
//! use dista_simnet::{SimNet, NodeAddr};
//! use dista_taint::{Payload, TagValue, TaintedBytes};
//! use dista_taintmap::TaintMapEndpoint;
//! use dista_jre::{Vm, Mode};
//! use dista_netty::{ServerBootstrap, Bootstrap};
//!
//! let net = SimNet::new();
//! let tm = TaintMapEndpoint::builder().connect(&net)?;
//! let server_vm = Vm::builder("server", &net).mode(Mode::Dista)
//!     .ip([10, 0, 0, 2]).taint_map(tm.topology()).build()?;
//! let client_vm = Vm::builder("client", &net).mode(Mode::Dista)
//!     .ip([10, 0, 0, 1]).taint_map(tm.topology()).build()?;
//!
//! // Echo server: every inbound frame is written back.
//! let server = ServerBootstrap::new(&server_vm)
//!     .child_handler(|ctx, msg| { ctx.write(&msg).unwrap(); })
//!     .bind(NodeAddr::new([10, 0, 0, 2], 9000))?;
//!
//! let channel = Bootstrap::new(&client_vm).connect(server.local_addr())?;
//! let t = client_vm.store().mint_source_taint(TagValue::str("netty"));
//! channel.write(&Payload::Tainted(TaintedBytes::uniform(b"ping", t)))?;
//! let echoed = channel.read()?.expect("echo");
//! assert_eq!(echoed.data(), b"ping");
//! assert_eq!(client_vm.store().tag_values(echoed.taint_union(client_vm.store())),
//!            vec!["netty".to_string()]);
//! server.shutdown();
//! tm.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod datagram;
mod frame;
mod http;
mod pipeline;

pub use bootstrap::{Bootstrap, ChannelContext, NettyChannel, NettyServer, ServerBootstrap};
pub use datagram::DatagramBootstrap;
pub use frame::{read_frame, write_frame};
pub use http::{
    decode_http_request, decode_http_response, encode_http_request, encode_http_response,
};
pub use pipeline::{MessageCodec, Pipeline, XorObfuscationCodec};

//! `ServerBootstrap` / `Bootstrap` — channel setup and the event loop.
//!
//! A bound server accepts connections on a boss thread and serves each
//! channel on a worker thread: frames are decoded through the pipeline
//! and delivered to the child handler, whose [`ChannelContext`] can write
//! responses back through the same pipeline. Clients get a synchronous
//! [`NettyChannel`] handle (write + blocking read), which is all the
//! reproduced workloads need.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dista_jre::{JreError, ServerSocketChannel, SocketChannel, Vm};
use dista_simnet::{NetError, NodeAddr};
use dista_taint::Payload;

use crate::frame::{read_frame, write_frame};
use crate::pipeline::Pipeline;

/// Handler-side view of a channel: write responses, close, inspect peers.
#[derive(Debug, Clone)]
pub struct ChannelContext {
    channel: SocketChannel,
    pipeline: Pipeline,
}

impl ChannelContext {
    /// The VM serving this channel.
    pub fn vm(&self) -> &Vm {
        self.channel.vm()
    }

    /// The connected peer.
    pub fn peer_addr(&self) -> NodeAddr {
        self.channel.peer_addr()
    }

    /// Writes a message outbound through the pipeline.
    ///
    /// # Errors
    ///
    /// Transport or Taint Map errors.
    pub fn write(&self, msg: &Payload) -> Result<(), JreError> {
        let wire = self.pipeline.run_outbound(msg.clone(), self.vm());
        write_frame(&self.channel, &wire)
    }

    /// Closes the channel.
    pub fn close(&self) {
        self.channel.close();
    }
}

type ChildHandler = Arc<dyn Fn(&ChannelContext, Payload) + Send + Sync>;

/// Server-side bootstrap (`ServerBootstrap` in Netty).
pub struct ServerBootstrap {
    vm: Vm,
    pipeline: Pipeline,
    handler: Option<ChildHandler>,
}

impl ServerBootstrap {
    /// Starts configuring a server on `vm`.
    pub fn new(vm: &Vm) -> Self {
        ServerBootstrap {
            vm: vm.clone(),
            pipeline: Pipeline::new(),
            handler: None,
        }
    }

    /// Installs the codec pipeline.
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Installs the per-message child handler.
    pub fn child_handler(
        mut self,
        handler: impl Fn(&ChannelContext, Payload) + Send + Sync + 'static,
    ) -> Self {
        self.handler = Some(Arc::new(handler));
        self
    }

    /// Binds and starts the boss/worker threads.
    ///
    /// # Errors
    ///
    /// [`JreError::Protocol`] if no handler was installed; transport
    /// errors on bind.
    pub fn bind(self, addr: NodeAddr) -> Result<NettyServer, JreError> {
        let handler = self
            .handler
            .ok_or(JreError::Protocol("server bootstrap needs a child handler"))?;
        let listener = ServerSocketChannel::bind(&self.vm, addr)?;
        let running = Arc::new(AtomicBool::new(true));
        let boss_running = running.clone();
        let pipeline = self.pipeline.clone();
        let vm = self.vm.clone();
        let boss = std::thread::Builder::new()
            .name(format!("netty-boss-{addr}"))
            .spawn(move || {
                while boss_running.load(Ordering::Relaxed) {
                    let channel = match listener.accept() {
                        Ok(c) => c,
                        Err(JreError::Net(NetError::Timeout(_))) => continue,
                        Err(_) => break,
                    };
                    let ctx = ChannelContext {
                        channel: channel.clone(),
                        pipeline: pipeline.clone(),
                    };
                    let handler = handler.clone();
                    let pipeline = pipeline.clone();
                    let vm = vm.clone();
                    std::thread::spawn(move || loop {
                        match read_frame(&channel) {
                            Ok(Some(frame)) => {
                                let msg = pipeline.run_inbound(frame, &vm);
                                handler(&ctx, msg);
                            }
                            Ok(None) | Err(_) => return,
                        }
                    });
                }
            })
            .expect("spawn netty boss thread");
        Ok(NettyServer {
            vm: self.vm,
            addr,
            running,
            boss: Some(boss),
        })
    }
}

impl std::fmt::Debug for ServerBootstrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerBootstrap")
            .field("vm", &self.vm.name())
            .field("pipeline", &self.pipeline)
            .finish()
    }
}

/// A running Netty server.
#[derive(Debug)]
pub struct NettyServer {
    vm: Vm,
    addr: NodeAddr,
    running: Arc<AtomicBool>,
    boss: Option<JoinHandle<()>>,
}

impl NettyServer {
    /// The bound address.
    pub fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    /// Stops accepting; live channels drain and exit on client EOF.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(boss) = self.boss.take() {
            self.running.store(false, Ordering::Relaxed);
            // Nudge the boss out of accept(), then unbind.
            if let Ok(chan) = SocketChannel::connect(&self.vm, self.addr) {
                chan.close();
            }
            self.vm.net().tcp_unlisten(self.addr);
            let _ = boss.join();
        }
    }
}

impl Drop for NettyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Client-side bootstrap (`Bootstrap` in Netty).
#[derive(Debug)]
pub struct Bootstrap {
    vm: Vm,
    pipeline: Pipeline,
}

impl Bootstrap {
    /// Starts configuring a client on `vm`.
    pub fn new(vm: &Vm) -> Self {
        Bootstrap {
            vm: vm.clone(),
            pipeline: Pipeline::new(),
        }
    }

    /// Installs the codec pipeline (must mirror the server's).
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Connects, returning a synchronous channel handle.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect(&self, addr: NodeAddr) -> Result<NettyChannel, JreError> {
        Ok(NettyChannel {
            channel: SocketChannel::connect(&self.vm, addr)?,
            pipeline: self.pipeline.clone(),
        })
    }
}

/// A connected client channel: pipeline-aware write and blocking read.
#[derive(Debug, Clone)]
pub struct NettyChannel {
    channel: SocketChannel,
    pipeline: Pipeline,
}

impl NettyChannel {
    /// The VM that owns the channel.
    pub fn vm(&self) -> &Vm {
        self.channel.vm()
    }

    /// Writes a message outbound through the pipeline.
    ///
    /// # Errors
    ///
    /// Transport or Taint Map errors.
    pub fn write(&self, msg: &Payload) -> Result<(), JreError> {
        let wire = self.pipeline.run_outbound(msg.clone(), self.vm());
        write_frame(&self.channel, &wire)
    }

    /// Blocks for the next inbound message; `None` on EOF.
    ///
    /// # Errors
    ///
    /// Transport or Taint Map errors.
    pub fn read(&self) -> Result<Option<Payload>, JreError> {
        match read_frame(&self.channel)? {
            Some(frame) => Ok(Some(self.pipeline.run_inbound(frame, self.vm()))),
            None => Ok(None),
        }
    }

    /// Write + read in one call (request/response convenience).
    ///
    /// # Errors
    ///
    /// [`JreError::Eof`] if the peer closes instead of responding.
    pub fn call(&self, msg: &Payload) -> Result<Payload, JreError> {
        self.write(msg)?;
        self.read()?.ok_or(JreError::Eof)
    }

    /// Closes the channel.
    pub fn close(&self) {
        self.channel.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::XorObfuscationCodec;
    use dista_jre::Mode;
    use dista_simnet::SimNet;
    use dista_taint::{TagValue, TaintedBytes};
    use dista_taintmap::TaintMapEndpoint;

    fn cluster() -> (TaintMapEndpoint, Vm, Vm) {
        let net = SimNet::new();
        let tm = TaintMapEndpoint::builder().connect(&net).unwrap();
        let mk = |n: &str, ip: [u8; 4]| {
            Vm::builder(n, &net)
                .mode(Mode::Dista)
                .ip(ip)
                .taint_map(tm.topology())
                .build()
                .unwrap()
        };
        let c = mk("client", [10, 0, 0, 1]);
        let s = mk("server", [10, 0, 0, 2]);
        (tm, c, s)
    }

    #[test]
    fn echo_server_roundtrip_with_taints() {
        let (tm, client_vm, server_vm) = cluster();
        let server = ServerBootstrap::new(&server_vm)
            .child_handler(|ctx, msg| ctx.write(&msg).unwrap())
            .bind(NodeAddr::new([10, 0, 0, 2], 9000))
            .unwrap();
        let chan = Bootstrap::new(&client_vm)
            .connect(server.local_addr())
            .unwrap();
        let t = client_vm.store().mint_source_taint(TagValue::str("echo"));
        let reply = chan
            .call(&Payload::Tainted(TaintedBytes::uniform(b"hello netty", t)))
            .unwrap();
        assert_eq!(reply.data(), b"hello netty");
        assert_eq!(
            client_vm
                .store()
                .tag_values(reply.taint_union(client_vm.store())),
            vec!["echo".to_string()]
        );
        server.shutdown();
        tm.shutdown();
    }

    #[test]
    fn pipeline_codecs_apply_on_both_sides() {
        let (tm, client_vm, server_vm) = cluster();
        let make_pipeline = || Pipeline::new().add_last(XorObfuscationCodec::new(0x77));
        let server_vm2 = server_vm.clone();
        let server = ServerBootstrap::new(&server_vm)
            .pipeline(make_pipeline())
            .child_handler(move |ctx, msg| {
                // The handler sees the *decoded* message.
                assert_eq!(msg.data(), b"clear");
                let t = server_vm2.store().mint_source_taint(TagValue::str("resp"));
                ctx.write(&Payload::Tainted(TaintedBytes::uniform(b"reply", t)))
                    .unwrap();
            })
            .bind(NodeAddr::new([10, 0, 0, 2], 9001))
            .unwrap();
        let chan = Bootstrap::new(&client_vm)
            .pipeline(make_pipeline())
            .connect(server.local_addr())
            .unwrap();
        let reply = chan.call(&Payload::Plain(b"clear".to_vec())).unwrap();
        assert_eq!(reply.data(), b"reply");
        assert_eq!(
            client_vm
                .store()
                .tag_values(reply.taint_union(client_vm.store())),
            vec!["resp".to_string()]
        );
        server.shutdown();
        tm.shutdown();
    }

    #[test]
    fn v2_crossings_propagate_exact_trace_spans() {
        use dista_jre::WireProtocol;
        use dista_obs::{reconstruct, reconstruct_inferred, Hop, ObsConfig, Observability};

        let net = SimNet::new();
        let obs = Observability::with_registry(ObsConfig::default(), net.registry().clone());
        let tm = TaintMapEndpoint::builder().connect(&net).unwrap();
        let mk = |n: &str, ip: [u8; 4]| {
            Vm::builder(n, &net)
                .mode(Mode::Dista)
                .ip(ip)
                .wire_protocol(WireProtocol::V2)
                .taint_map(tm.topology())
                .observability(obs.clone())
                .build()
                .unwrap()
        };
        let client_vm = mk("client", [10, 0, 0, 1]);
        let server_vm = mk("server", [10, 0, 0, 2]);
        let server = ServerBootstrap::new(&server_vm)
            .child_handler(|ctx, msg| ctx.write(&msg).unwrap())
            .bind(NodeAddr::new([10, 0, 0, 2], 9004))
            .unwrap();
        let chan = Bootstrap::new(&client_vm)
            .connect(server.local_addr())
            .unwrap();
        let t = client_vm.taint_source(TagValue::str("trace"));
        let reply = chan
            .call(&Payload::Tainted(TaintedBytes::uniform(b"traced", t)))
            .unwrap();
        assert_eq!(reply.data(), b"traced");
        server.shutdown();

        let mut events = client_vm.flight_recorder().events();
        events.extend(server_vm.flight_recorder().events());
        let gid = events
            .iter()
            .find_map(|e| match &e.kind {
                dista_obs::ObsEventKind::BoundaryEncode { spans, .. } => {
                    spans.first().map(|s| s.gid)
                }
                _ => None,
            })
            .expect("a tainted netty crossing was recorded");
        let exact = reconstruct(&events, gid);
        assert!(
            exact.exact,
            "v2 netty crossings must pair by propagated span ids: {exact}"
        );
        let crossing_spans: Vec<u64> = exact
            .hops
            .iter()
            .filter_map(|h| match h {
                Hop::Crossed { span, .. } => Some(*span),
                _ => None,
            })
            .collect();
        assert_eq!(crossing_spans.len(), 2, "request and reply crossings");
        assert!(crossing_spans.iter().all(|&s| s != 0));
        // On this unambiguous path the exact trace agrees hop-for-hop
        // with the pre-trace-context gid-matching inference.
        let inferred = reconstruct_inferred(&events, gid);
        assert!(!inferred.exact);
        assert_eq!(exact.hops, inferred.hops);
        tm.shutdown();
    }

    #[test]
    fn server_requires_handler() {
        let (tm, _c, server_vm) = cluster();
        let err = ServerBootstrap::new(&server_vm)
            .bind(NodeAddr::new([10, 0, 0, 2], 9002))
            .unwrap_err();
        assert!(matches!(err, JreError::Protocol(_)));
        tm.shutdown();
    }

    #[test]
    fn multiple_concurrent_clients() {
        let (tm, client_vm, server_vm) = cluster();
        let server = ServerBootstrap::new(&server_vm)
            .child_handler(|ctx, msg| ctx.write(&msg).unwrap())
            .bind(NodeAddr::new([10, 0, 0, 2], 9003))
            .unwrap();
        let addr = server.local_addr();
        let mut joins = Vec::new();
        for i in 0..6u8 {
            let vm = client_vm.clone();
            joins.push(std::thread::spawn(move || {
                let chan = Bootstrap::new(&vm).connect(addr).unwrap();
                let reply = chan.call(&Payload::Plain(vec![i; 3])).unwrap();
                assert_eq!(reply.data(), &[i; 3]);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.shutdown();
        tm.shutdown();
    }
}

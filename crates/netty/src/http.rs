//! `HttpServerCodec` / `HttpClientCodec` — HTTP messages over Netty
//! frames (the "Netty HTTP 3rd-party HTTP" micro-benchmark case).
//!
//! Requests and responses are encoded into a frame body: a plain-text
//! head (method/status + headers, untainted scaffolding) followed by the
//! body payload with its taints intact.

use std::collections::HashMap;

use dista_jre::{HttpRequest, HttpResponse, JreError};
use dista_taint::{Payload, TaintedBytes};

fn encode_head(head: String, body: &Payload) -> Payload {
    let head_bytes = head.into_bytes();
    let mut out = TaintedBytes::with_capacity(4 + head_bytes.len() + body.len());
    out.extend_plain(&(head_bytes.len() as u32).to_be_bytes());
    out.extend_plain(&head_bytes);
    match body {
        Payload::Plain(d) => out.extend_plain(d),
        Payload::Tainted(t) => out.extend_tainted(t),
    }
    Payload::Tainted(out)
}

fn split_head(frame: &Payload) -> Result<(String, Payload), JreError> {
    let data = frame.data();
    if data.len() < 4 {
        return Err(JreError::Protocol("http frame too short"));
    }
    let head_len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
    if data.len() < 4 + head_len {
        return Err(JreError::Protocol("http frame truncated head"));
    }
    let head = String::from_utf8(data[4..4 + head_len].to_vec())
        .map_err(|_| JreError::Protocol("http head is not utf-8"))?;
    let body = frame.slice(4 + head_len, frame.len());
    Ok((head, body))
}

fn parse_headers(lines: &mut std::str::Lines<'_>) -> HashMap<String, String> {
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    headers
}

/// Encodes a request into a Netty frame body.
pub fn encode_http_request(request: &HttpRequest) -> Payload {
    let mut head = format!("{} {} HTTP/1.1\n", request.method, request.path);
    for (k, v) in &request.headers {
        head.push_str(&format!("{k}: {v}\n"));
    }
    encode_head(head, &request.body)
}

/// Decodes a request from a Netty frame body.
///
/// # Errors
///
/// [`JreError::Protocol`] on malformed frames.
pub fn decode_http_request(frame: &Payload) -> Result<HttpRequest, JreError> {
    let (head, body) = split_head(frame)?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(JreError::Protocol("empty http head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(JreError::Protocol("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(JreError::Protocol("missing path"))?
        .to_string();
    Ok(HttpRequest {
        method,
        path,
        headers: parse_headers(&mut lines),
        body,
    })
}

/// Encodes a response into a Netty frame body.
pub fn encode_http_response(response: &HttpResponse) -> Payload {
    let mut head = format!("HTTP/1.1 {}\n", response.status);
    for (k, v) in &response.headers {
        head.push_str(&format!("{k}: {v}\n"));
    }
    encode_head(head, &response.body)
}

/// Decodes a response from a Netty frame body.
///
/// # Errors
///
/// [`JreError::Protocol`] on malformed frames.
pub fn decode_http_response(frame: &Payload) -> Result<HttpResponse, JreError> {
    let (head, body) = split_head(frame)?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or(JreError::Protocol("empty http head"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(JreError::Protocol("malformed status"))?;
    Ok(HttpResponse {
        status,
        headers: parse_headers(&mut lines),
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_jre::{Mode, Vm};
    use dista_simnet::SimNet;
    use dista_taint::TagValue;

    fn vm() -> Vm {
        Vm::builder("t", &SimNet::new())
            .mode(Mode::Phosphor)
            .build()
            .unwrap()
    }

    #[test]
    fn request_roundtrip_keeps_body_taint() {
        let vm = vm();
        let t = vm.store().mint_source_taint(TagValue::str("form"));
        let mut req = HttpRequest::post(
            "/submit",
            Payload::Tainted(TaintedBytes::uniform(b"secret", t)),
        );
        req.headers.insert("host".into(), "example".into());
        let frame = encode_http_request(&req);
        let decoded = decode_http_request(&frame).unwrap();
        assert_eq!(decoded.method, "POST");
        assert_eq!(decoded.path, "/submit");
        assert_eq!(
            decoded.headers.get("host").map(String::as_str),
            Some("example")
        );
        assert_eq!(decoded.body.data(), b"secret");
        assert_eq!(
            vm.store().tag_values(decoded.body.taint_union(vm.store())),
            vec!["form"]
        );
    }

    #[test]
    fn response_roundtrip() {
        let vm = vm();
        let t = vm.store().mint_source_taint(TagValue::str("page"));
        let resp = HttpResponse::ok(Payload::Tainted(TaintedBytes::uniform(b"<html>", t)));
        let frame = encode_http_response(&resp);
        let decoded = decode_http_response(&frame).unwrap();
        assert_eq!(decoded.status, 200);
        assert_eq!(decoded.body.data(), b"<html>");
        assert_eq!(
            vm.store().tag_values(decoded.body.taint_union(vm.store())),
            vec!["page"]
        );
    }

    #[test]
    fn malformed_frames_error() {
        assert!(decode_http_request(&Payload::Plain(vec![0, 0])).is_err());
        assert!(decode_http_response(&Payload::Plain(vec![0, 0, 0, 99, b'x'])).is_err());
    }
}

//! `LengthFieldPrepender` / `LengthFieldBasedFrameDecoder` — Netty's
//! standard length-prefixed framing over a byte stream.
//!
//! The 4-byte length prefix is protocol scaffolding (untainted); the
//! frame body keeps its per-byte taints.

use dista_jre::{JreError, SocketChannel};
use dista_taint::Payload;

/// Writes one frame: `u32` big-endian length + body.
///
/// Header and body go out as two writes instead of being copied into a
/// combined buffer: wire records are self-contained and the stream
/// concatenates, so the bytes on the wire are identical to the old
/// single-write framing — without duplicating the body per frame.
///
/// # Errors
///
/// Transport or Taint Map errors.
pub fn write_frame(channel: &SocketChannel, body: &Payload) -> Result<(), JreError> {
    // A plain header is fine in every mode: the boundary encodes plain
    // payloads as untainted records, exactly what the old combined
    // buffer's `extend_plain(header)` produced.
    let header = Payload::Plain((body.len() as u32).to_be_bytes().to_vec());
    channel.write_payload(&header)?;
    if body.is_empty() {
        return Ok(());
    }
    channel.write_payload(body)
}

/// Reads one frame; `None` on clean EOF at a frame boundary.
///
/// # Errors
///
/// [`JreError::Eof`] if the stream ends mid-frame; transport errors
/// otherwise.
pub fn read_frame(channel: &SocketChannel) -> Result<Option<Payload>, JreError> {
    let first = channel.read_payload(1)?;
    if first.is_empty() {
        return Ok(None);
    }
    let mut header = first.into_plain();
    while header.len() < 4 {
        let more = channel.read_exact_payload(4 - header.len())?;
        header.extend_from_slice(more.data());
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len == 0 {
        return Ok(Some(Payload::default()));
    }
    Ok(Some(channel.read_exact_payload(len)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_jre::{Mode, ServerSocketChannel, Vm, WireProtocol};
    use dista_simnet::{NodeAddr, SimNet};
    use dista_taint::{TagValue, TaintedBytes};
    use dista_taintmap::TaintMapEndpoint;

    fn rig() -> (TaintMapEndpoint, Vm, Vm, SocketChannel, SocketChannel) {
        rig_with(WireProtocol::V1)
    }

    fn rig_with(
        protocol: WireProtocol,
    ) -> (TaintMapEndpoint, Vm, Vm, SocketChannel, SocketChannel) {
        let net = SimNet::new();
        let tm = TaintMapEndpoint::builder().connect(&net).unwrap();
        let mk = |n: &str, ip: [u8; 4]| {
            Vm::builder(n, &net)
                .mode(Mode::Dista)
                .ip(ip)
                .taint_map(tm.topology())
                .wire_protocol(protocol)
                .build()
                .unwrap()
        };
        let vm1 = mk("c", [10, 0, 0, 1]);
        let vm2 = mk("s", [10, 0, 0, 2]);
        let server = ServerSocketChannel::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 9999)).unwrap();
        let c = SocketChannel::connect(&vm1, server.local_addr()).unwrap();
        let s = server.accept().unwrap();
        (tm, vm1, vm2, c, s)
    }

    #[test]
    fn frames_preserve_boundaries_and_taints() {
        let (tm, vm1, vm2, c, s) = rig();
        let t = vm1.store().mint_source_taint(TagValue::str("f"));
        write_frame(&c, &Payload::Tainted(TaintedBytes::uniform(b"one", t))).unwrap();
        write_frame(&c, &Payload::Plain(b"twotwo".to_vec())).unwrap();
        let f1 = read_frame(&s).unwrap().unwrap();
        assert_eq!(f1.data(), b"one");
        assert_eq!(
            vm2.store().tag_values(f1.taint_union(vm2.store())),
            vec!["f"]
        );
        let f2 = read_frame(&s).unwrap().unwrap();
        assert_eq!(f2.data(), b"twotwo");
        assert!(f2.taint_union(vm2.store()).is_empty());
        tm.shutdown();
    }

    /// The Netty pipeline is codec-agnostic: length-prefixed framing
    /// must survive the adaptive v2 wire protocol unchanged, whether the
    /// version is pinned or settled by the one-round-trip negotiation.
    #[test]
    fn frames_preserve_boundaries_and_taints_over_v2() {
        for protocol in [WireProtocol::V2, WireProtocol::Negotiate] {
            let (tm, vm1, vm2, c, s) = rig_with(protocol);
            let t = vm1.store().mint_source_taint(TagValue::str("f"));
            write_frame(&c, &Payload::Tainted(TaintedBytes::uniform(b"one", t))).unwrap();
            write_frame(&c, &Payload::Plain(b"twotwo".to_vec())).unwrap();
            let f1 = read_frame(&s).unwrap().unwrap();
            assert_eq!(f1.data(), b"one", "{protocol:?}");
            assert_eq!(
                vm2.store().tag_values(f1.taint_union(vm2.store())),
                vec!["f"],
                "{protocol:?}"
            );
            let f2 = read_frame(&s).unwrap().unwrap();
            assert_eq!(f2.data(), b"twotwo", "{protocol:?}");
            assert!(f2.taint_union(vm2.store()).is_empty(), "{protocol:?}");
            tm.shutdown();
        }
    }

    #[test]
    fn empty_frame_roundtrips() {
        let (tm, _vm1, _vm2, c, s) = rig();
        write_frame(&c, &Payload::default()).unwrap();
        let f = read_frame(&s).unwrap().unwrap();
        assert!(f.is_empty());
        tm.shutdown();
    }

    #[test]
    fn eof_at_boundary_is_none() {
        let (tm, _vm1, _vm2, c, s) = rig();
        c.close();
        assert!(read_frame(&s).unwrap().is_none());
        tm.shutdown();
    }
}

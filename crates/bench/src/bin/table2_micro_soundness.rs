//! Regenerates **Table II** with RQ1 results: the 30 micro-benchmark
//! cases and whether DisTA tracks both taints soundly and precisely at
//! `check()`.

use dista_bench::table::Table;
use dista_microbench::{all_cases, run_case, Mode};

fn main() {
    let size: usize = std::env::var("DISTA_MICRO_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16 * 1024);
    println!("Table II — micro benchmark soundness/precision (payload {size} B/side)\n");
    let mut table = Table::new(&["#", "Case", "Family", "Tags at check()", "Verdict"]);
    let mut sound = 0;
    for (i, case) in all_cases().iter().enumerate() {
        let row = match run_case(case.as_ref(), Mode::Dista, size) {
            Ok(result) => {
                let verdict = if result.sound_and_precise() {
                    sound += 1;
                    "sound+precise"
                } else {
                    "FAILED"
                };
                vec![
                    (i + 1).to_string(),
                    result.name.to_string(),
                    result.family.to_string(),
                    format!("{{{}}}", result.tags_at_check.join(", ")),
                    verdict.to_string(),
                ]
            }
            Err(e) => vec![
                (i + 1).to_string(),
                case.name().to_string(),
                case.family().to_string(),
                String::new(),
                format!("ERROR: {e}"),
            ],
        };
        table.row(row);
    }
    table.print();
    println!("\n{sound}/30 cases sound and precise (paper: all 30).");
}

//! Verifies the **§V-F network-overhead claim**: "DisTA transfers a
//! fixed length byte array (4 bytes in default) storing Global ID for
//! every data byte. Thus, DisTA should introduce about 5X network
//! overhead." The simulated OS counts every byte, so the ratio is
//! measured, not assumed — including the (amortized) Taint Map RPCs.

use dista_bench::table::Table;
use dista_core::{Cluster, Mode};
use dista_microbench::{all_cases, run_case_on};

fn bytes_for(mode: Mode, size: usize, case_idx: usize) -> (u64, bool) {
    let cluster = Cluster::builder(mode)
        .nodes("net", 2)
        .build()
        .expect("cluster");
    cluster.net().metrics().reset();
    let cases = all_cases();
    let result = run_case_on(cases[case_idx].as_ref(), cluster.vm(0), cluster.vm(1), size)
        .expect("case run");
    let bytes = cluster.net().metrics().snapshot().total_bytes();
    cluster.shutdown();
    (bytes, result.data_ok)
}

fn main() {
    let size: usize = std::env::var("DISTA_MICRO_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64 * 1024);
    println!("§V-F claim — network overhead of the DisTA wire format ({size} B/side)\n");
    let mut table = Table::new(&["Case", "Original bytes", "DisTA bytes", "Ratio", "Expected"]);
    // raw socket, datagram, socket channel, netty socket.
    for (label, idx) in [
        ("socket_raw_array", 0usize),
        ("jre_datagram", 22),
        ("jre_socket_channel", 23),
        ("netty_socket", 27),
    ] {
        let (original, ok1) = bytes_for(Mode::Original, size, idx);
        let (dista, ok2) = bytes_for(Mode::Dista, size, idx);
        assert!(ok1 && ok2, "{label}: data corrupted");
        table.row(vec![
            label.to_string(),
            original.to_string(),
            dista.to_string(),
            format!("{:.2}X", dista as f64 / original as f64),
            "≈5X (+ one-time Taint Map RPCs)".to_string(),
        ]);
    }
    table.print();
    println!("\nEvery data byte is followed by a 4-byte Global ID on the wire,");
    println!("so payload bytes expand exactly 5X; the remainder above 5X is the");
    println!("once-per-taint Taint Map registration/lookup traffic.");
}

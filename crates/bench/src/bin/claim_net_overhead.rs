//! Verifies the **§V-F network-overhead claim**: "DisTA transfers a
//! fixed length byte array (4 bytes in default) storing Global ID for
//! every data byte. Thus, DisTA should introduce about 5X network
//! overhead." The simulated OS counts every byte, so the ratio is
//! measured, not assumed — including the (amortized) Taint Map RPCs.
//!
//! Flags:
//!
//! * `--smoke` — one case at 4 KiB (fast enough for CI).
//! * `--metrics` — additionally run with cluster observability on, print
//!   the metrics registry, and **exit non-zero** unless the per-node
//!   `wire_expansion_ratio` gauge lands in the 4.5×–5.5× band.
//! * `--trace` — print the observed run's flight-recorder events as a
//!   Chrome trace (load into `chrome://tracing` or Perfetto).

use dista_bench::table::Table;
use dista_core::obs::ObsConfig;
use dista_core::{Cluster, Mode};
use dista_microbench::{all_cases, run_case_on};

fn bytes_for(mode: Mode, size: usize, case_idx: usize) -> (u64, bool) {
    let cluster = Cluster::builder(mode)
        .nodes("net", 2)
        .build()
        .expect("cluster");
    cluster.net().metrics().reset();
    let cases = all_cases();
    let result = run_case_on(cases[case_idx].as_ref(), cluster.vm(0), cluster.vm(1), size)
        .expect("case run");
    let bytes = cluster.net().metrics().snapshot().total_bytes();
    cluster.shutdown();
    (bytes, result.data_ok)
}

/// Observed DisTA run for the `--metrics`/`--trace` flags. Returns
/// whether every set `wire_expansion_ratio` gauge sat in the expected
/// band.
fn observed_run(size: usize, case_idx: usize, print_metrics: bool, print_trace: bool) -> bool {
    const BAND: (f64, f64) = (4.5, 5.5);
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("net", 2)
        .observability(ObsConfig::default())
        .build()
        .expect("cluster");
    let cases = all_cases();
    run_case_on(cases[case_idx].as_ref(), cluster.vm(0), cluster.vm(1), size).expect("case run");
    let dump = cluster.metrics_dump();
    if print_metrics {
        println!("\n-- metrics registry ({}) --", cases[case_idx].name());
        print!("{}", dump.render_text());
    }
    if print_trace {
        println!("\n-- chrome trace ({}) --", cases[case_idx].name());
        println!("{}", cluster.export_chrome_trace());
    }
    let mut in_band = true;
    let mut gauges_seen = 0;
    for node in ["net1", "net2"] {
        if let Some(ratio) = dump.gauge_value("wire_expansion_ratio", &[("node", node)]) {
            gauges_seen += 1;
            let ok = ratio >= BAND.0 && ratio <= BAND.1;
            println!(
                "wire_expansion_ratio{{node={node}}} = {ratio:.3} ({})",
                if ok {
                    "in 4.5x-5.5x band"
                } else {
                    "OUT OF BAND"
                }
            );
            in_band &= ok;
        }
    }
    cluster.shutdown();
    if gauges_seen == 0 {
        println!("wire_expansion_ratio gauge never set — no boundary encode happened");
        return false;
    }
    in_band
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let metrics = args.iter().any(|a| a == "--metrics");
    let trace = args.iter().any(|a| a == "--trace");
    let size: usize = std::env::var("DISTA_MICRO_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 * 1024 } else { 64 * 1024 });
    println!("§V-F claim — network overhead of the DisTA wire format ({size} B/side)\n");
    let mut table = Table::new(&["Case", "Original bytes", "DisTA bytes", "Ratio", "Expected"]);
    // raw socket, datagram, socket channel, netty socket.
    let all: [(&str, usize); 4] = [
        ("socket_raw_array", 0usize),
        ("jre_datagram", 22),
        ("jre_socket_channel", 23),
        ("netty_socket", 27),
    ];
    let selected = if smoke { &all[..1] } else { &all[..] };
    for &(label, idx) in selected {
        let (original, ok1) = bytes_for(Mode::Original, size, idx);
        let (dista, ok2) = bytes_for(Mode::Dista, size, idx);
        assert!(ok1 && ok2, "{label}: data corrupted");
        table.row(vec![
            label.to_string(),
            original.to_string(),
            dista.to_string(),
            format!("{:.2}X", dista as f64 / original as f64),
            "≈5X (+ one-time Taint Map RPCs)".to_string(),
        ]);
    }
    table.print();
    println!("\nEvery data byte is followed by a 4-byte Global ID on the wire,");
    println!("so payload bytes expand exactly 5X; the remainder above 5X is the");
    println!("once-per-taint Taint Map registration/lookup traffic.");
    if (metrics || trace) && !observed_run(size, 0, metrics, trace) {
        eprintln!("FAIL: wire expansion outside the 4.5x-5.5x band");
        std::process::exit(1);
    }
}

//! Verifies the **§V-F network-overhead claim**: "DisTA transfers a
//! fixed length byte array (4 bytes in default) storing Global ID for
//! every data byte. Thus, DisTA should introduce about 5X network
//! overhead." The simulated OS counts every byte, so the ratio is
//! measured, not assumed — including the (amortized) Taint Map RPCs.
//!
//! Flags:
//!
//! * `--smoke` — one case at 4 KiB (fast enough for CI).
//! * `--metrics` — additionally run with cluster observability on, print
//!   the metrics registry, and **exit non-zero** unless the per-node
//!   `wire_expansion_ratio` gauge lands in the 4.5×–5.5× band.
//! * `--trace` — print the observed run's flight-recorder events as a
//!   Chrome trace (load into `chrome://tracing` or Perfetto).
//! * `--chaos [--seed N]` — instead of the overhead table, replay a
//!   seeded fault schedule (receiver partitioned from the Taint Map, a
//!   primary crash + snapshot restart, late heal) through a live
//!   workload and **exit non-zero** unless degraded mode stays sound:
//!   every delivered byte tainted or pending, and zero pending
//!   sentinels once the partition heals.

use dista_bench::table::Table;
use dista_core::jre::{InputStream, OutputStream, ServerSocket, Socket};
use dista_core::obs::{ObsConfig, ObsEventKind};
use dista_core::simnet::NodeAddr;
use dista_core::taint::{Payload, TagValue, TaintedBytes};
use dista_core::{Cluster, FaultPlan, Mode};
use dista_microbench::{all_cases, run_case_on};

fn bytes_for(mode: Mode, size: usize, case_idx: usize) -> (u64, bool) {
    let cluster = Cluster::builder(mode)
        .nodes("net", 2)
        .build()
        .expect("cluster");
    cluster.net().metrics().reset();
    let cases = all_cases();
    let result = run_case_on(cases[case_idx].as_ref(), cluster.vm(0), cluster.vm(1), size)
        .expect("case run");
    let bytes = cluster.net().metrics().snapshot().total_bytes();
    cluster.shutdown();
    (bytes, result.data_ok)
}

/// Observed DisTA run for the `--metrics`/`--trace` flags. Returns
/// whether every set `wire_expansion_ratio` gauge sat in the expected
/// band.
fn observed_run(size: usize, case_idx: usize, print_metrics: bool, print_trace: bool) -> bool {
    const BAND: (f64, f64) = (4.5, 5.5);
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("net", 2)
        .observability(ObsConfig::default())
        .build()
        .expect("cluster");
    let cases = all_cases();
    run_case_on(cases[case_idx].as_ref(), cluster.vm(0), cluster.vm(1), size).expect("case run");
    let dump = cluster.metrics_dump();
    if print_metrics {
        println!("\n-- metrics registry ({}) --", cases[case_idx].name());
        print!("{}", dump.render_text());
    }
    if print_trace {
        println!("\n-- chrome trace ({}) --", cases[case_idx].name());
        println!("{}", cluster.export_chrome_trace());
    }
    let mut in_band = true;
    let mut gauges_seen = 0;
    for node in ["net1", "net2"] {
        // The gauge family is labeled per protocol version; the 4.5x-5.5x
        // record-format band applies to v1 traffic only. V2's adaptive
        // frames sit near 1.0x by design and get their own gate in the
        // boundary_codec --wire-v2 sweep, so a v2-carrying node must
        // never trip this band.
        if let Some(ratio) =
            dump.gauge_value("wire_expansion_ratio", &[("node", node), ("proto", "v1")])
        {
            if ratio == 0.0 {
                continue; // registered but no v1 traffic on this node
            }
            gauges_seen += 1;
            let ok = ratio >= BAND.0 && ratio <= BAND.1;
            println!(
                "wire_expansion_ratio{{node={node},proto=v1}} = {ratio:.3} ({})",
                if ok {
                    "in 4.5x-5.5x band"
                } else {
                    "OUT OF BAND"
                }
            );
            in_band &= ok;
        }
        if let Some(ratio) =
            dump.gauge_value("wire_expansion_ratio", &[("node", node), ("proto", "v2")])
        {
            if ratio != 0.0 {
                println!("wire_expansion_ratio{{node={node},proto=v2}} = {ratio:.3} (v1 band not applied)");
            }
        }
    }
    cluster.shutdown();
    if gauges_seen == 0 {
        println!(
            "wire_expansion_ratio{{proto=v1}} gauge never set — no v1 boundary encode happened"
        );
        return false;
    }
    in_band
}

/// The `--chaos` run: a seeded fault schedule over a live two-node
/// workload. Returns `true` when degraded mode stayed sound.
fn chaos_run(seed: u64, rounds: u16) -> bool {
    let rx_ip = [10, 0, 0, 2];
    let tm_ip = [10, 0, 0, 99];
    let plan = FaultPlan::builder(seed)
        .partition_both_at(2, rx_ip, tm_ip)
        .crash_shard_at(10, 0)
        .restart_shard_at(10, 0)
        .heal_both_at(30, rx_ip, tm_ip)
        .build();
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("net", 2)
        .observability(ObsConfig::default())
        .taint_map_snapshots(true)
        .chaos(plan)
        .build()
        .expect("cluster");
    let (tx, rx) = (cluster.vm(0).clone(), cluster.vm(1).clone());

    println!("chaos schedule (seed {seed}): cut rx\u{2194}taint-map at step 2, crash+restart");
    println!("shard 0 primary at step 10, heal at step 30; {rounds} workload rounds\n");
    let mut sound = true;
    let mut degraded_rounds = 0;
    for round in 0..rounds {
        let addr = NodeAddr::new(rx_ip, 7400 + round);
        let server = ServerSocket::bind(&rx, addr).expect("bind");
        let out = Socket::connect(&tx, addr).expect("connect");
        let conn = server.accept().expect("accept");
        let taint = tx
            .store()
            .mint_source_taint(TagValue::str(format!("round-{round}")));
        out.output_stream()
            .write(&Payload::Tainted(TaintedBytes::uniform(b"payload!", taint)))
            .expect("write");
        let got = conn.input_stream().read_exact(8).expect("read");
        let tags = rx.store().tag_values(got.taint_union(rx.store()));
        let status = match tags.first().map(String::as_str) {
            Some(t) if t == format!("round-{round}") => "resolved",
            Some(t) if t.starts_with("pending-gid:") => {
                degraded_rounds += 1;
                "degraded (pending sentinel)"
            }
            _ => {
                sound = false;
                "UNSOUND: bytes delivered without their taint"
            }
        };
        println!("round {round:>2}: {status}");
        cluster.poll_chaos().expect("poll chaos");
    }

    cluster.net().heal_both(rx_ip, tm_ip);
    for _ in 0..64 {
        if cluster.pending_gids() == 0 {
            break;
        }
        cluster.reconcile_pending().expect("reconcile");
    }
    let pending = cluster.pending_gids();

    let events = cluster.obs_events();
    let injected = events
        .iter()
        .filter(|e| matches!(e.kind, ObsEventKind::FaultInjected { .. }))
        .count();
    let replayed: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            ObsEventKind::ShardRestarted { replayed, .. } => Some(replayed),
            _ => None,
        })
        .sum();
    let dump = cluster.metrics_dump();
    println!("\nfaults applied            {injected}");
    println!("degraded rounds           {degraded_rounds}");
    println!(
        "degraded lookups          {}",
        dump.counter_total("taintmap_degraded_lookups")
    );
    println!(
        "pending resolved          {}",
        dump.counter_total("taintmap_pending_resolved")
    );
    println!(
        "client retries            {}",
        dump.counter_total("taintmap_retries")
    );
    println!(
        "breaker opens             {}",
        dump.counter_total("taintmap_breaker_opens")
    );
    println!("snapshot replayed         {replayed}");
    println!("pending after heal        {pending}");
    cluster.shutdown();
    if pending != 0 {
        println!("\nFAIL: {pending} sentinel(s) never reconciled after heal");
        return false;
    }
    if !sound {
        println!("\nFAIL: a delivered byte lost its taint");
        return false;
    }
    println!("\nOK: every delivered byte tainted or pending; backlog drained after heal");
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let metrics = args.iter().any(|a| a == "--metrics");
    let trace = args.iter().any(|a| a == "--trace");
    let chaos = args.iter().any(|a| a == "--chaos");
    if chaos {
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let rounds = if smoke { 6 } else { 12 };
        println!("§IV-C fault model — Taint Map degradation under a seeded schedule\n");
        if !chaos_run(seed, rounds) {
            std::process::exit(1);
        }
        return;
    }
    let size: usize = std::env::var("DISTA_MICRO_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 * 1024 } else { 64 * 1024 });
    println!("§V-F claim — network overhead of the DisTA wire format ({size} B/side)\n");
    let mut table = Table::new(&["Case", "Original bytes", "DisTA bytes", "Ratio", "Expected"]);
    // raw socket, datagram, socket channel, netty socket.
    let all: [(&str, usize); 4] = [
        ("socket_raw_array", 0usize),
        ("jre_datagram", 22),
        ("jre_socket_channel", 23),
        ("netty_socket", 27),
    ];
    let selected = if smoke { &all[..1] } else { &all[..] };
    for &(label, idx) in selected {
        let (original, ok1) = bytes_for(Mode::Original, size, idx);
        let (dista, ok2) = bytes_for(Mode::Dista, size, idx);
        assert!(ok1 && ok2, "{label}: data corrupted");
        table.row(vec![
            label.to_string(),
            original.to_string(),
            dista.to_string(),
            format!("{:.2}X", dista as f64 / original as f64),
            "≈5X (+ one-time Taint Map RPCs)".to_string(),
        ]);
    }
    table.print();
    println!("\nEvery data byte is followed by a 4-byte Global ID on the wire,");
    println!("so payload bytes expand exactly 5X; the remainder above 5X is the");
    println!("once-per-taint Taint Map registration/lookup traffic.");
    if (metrics || trace) && !observed_run(size, 0, metrics, trace) {
        eprintln!("FAIL: wire expansion outside the 4.5x-5.5x band");
        std::process::exit(1);
    }
}

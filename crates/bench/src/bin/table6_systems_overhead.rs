//! Regenerates **Table VI**: real-world system runtime overhead —
//! Original vs Phosphor vs DisTA, under both SDT and SIM scenarios.

use std::time::Duration;

use dista_bench::table::{fmt_ms, fmt_ratio, Table};
use dista_bench::{bench_link_model, run_system_with, Mode, Scenario, SystemId};

/// Samples all five mode/scenario columns interleaved so transient load
/// perturbs every column equally, then takes per-column medians.
fn medians(system: SystemId, reps: usize) -> [Duration; 5] {
    const COLUMNS: [(Mode, Scenario); 5] = [
        (Mode::Original, Scenario::None),
        (Mode::Phosphor, Scenario::Sdt),
        (Mode::Dista, Scenario::Sdt),
        (Mode::Phosphor, Scenario::Sim),
        (Mode::Dista, Scenario::Sim),
    ];
    let mut samples: [Vec<Duration>; 5] = Default::default();
    for _ in 0..reps {
        for (slot, (mode, scenario)) in COLUMNS.iter().enumerate() {
            let d = run_system_with(system, *mode, *scenario, bench_link_model())
                .unwrap_or_else(|e| panic!("{} [{mode}/{scenario:?}] failed: {e}", system.name()))
                .duration;
            samples[slot].push(d);
        }
    }
    samples.map(|mut v| {
        v.sort();
        v[v.len() / 2]
    })
}

fn main() {
    let reps: usize = std::env::var("DISTA_SYSTEM_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    println!("Table VI — real-world system runtime overhead (median of {reps})\n");
    let mut table = Table::new(&[
        "System",
        "Original (ms)",
        "Phosphor-SDT",
        "OH",
        "DisTA-SDT",
        "OH",
        "Phosphor-SIM",
        "OH",
        "DisTA-SIM",
        "OH",
    ]);
    let mut sums = [Duration::ZERO; 5];
    for system in SystemId::ALL {
        let [original, phosphor_sdt, dista_sdt, phosphor_sim, dista_sim] = medians(system, reps);
        for (slot, d) in
            sums.iter_mut()
                .zip([original, phosphor_sdt, dista_sdt, phosphor_sim, dista_sim])
        {
            *slot += d;
        }
        table.row(vec![
            system.name().to_string(),
            fmt_ms(original),
            fmt_ms(phosphor_sdt),
            fmt_ratio(original, phosphor_sdt),
            fmt_ms(dista_sdt),
            fmt_ratio(original, dista_sdt),
            fmt_ms(phosphor_sim),
            fmt_ratio(original, phosphor_sim),
            fmt_ms(dista_sim),
            fmt_ratio(original, dista_sim),
        ]);
    }
    let n = SystemId::ALL.len() as u32;
    let avg: Vec<Duration> = sums.iter().map(|s| *s / n).collect();
    table.row(vec![
        "Average".to_string(),
        fmt_ms(avg[0]),
        fmt_ms(avg[1]),
        fmt_ratio(avg[0], avg[1]),
        fmt_ms(avg[2]),
        fmt_ratio(avg[0], avg[2]),
        fmt_ms(avg[3]),
        fmt_ratio(avg[0], avg[3]),
        fmt_ms(avg[4]),
        fmt_ratio(avg[0], avg[4]),
    ]);
    table.print();
    println!("\nExpected shape (paper): DisTA-SDT adds ~0.3X over Phosphor-SDT,");
    println!("DisTA-SIM adds ~0.6X over Phosphor-SIM; SIM ≥ SDT.");
}

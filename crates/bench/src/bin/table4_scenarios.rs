//! Regenerates **Table IV**: the SDT and SIM taint-tracking scenarios
//! (source and sink points per system), verified live: each scenario is
//! run once in DisTA mode and the observed tainted-sink count reported.

use dista_bench::table::Table;
use dista_bench::{run_system, Mode, Scenario, SystemId};

fn sdt_points(system: SystemId) -> (&'static str, &'static str) {
    match system {
        SystemId::ZooKeeper => ("Vote (FastLeaderElection.getVote)", "checkLeader"),
        SystemId::MapReduce => (
            "ApplicationID (YarnClient.createApplication)",
            "getApplicationReport",
        ),
        SystemId::ActiveMq => (
            "Message (ActiveMQProducer.createTextMessage)",
            "Consumer Message (receive)",
        ),
        SystemId::RocketMq => (
            "Message (DefaultMQProducer.createMessage)",
            "MessageExt (consumeMessage)",
        ),
        SystemId::HBase => ("TableName (HTable.tableName)", "Result (getResult)"),
    }
}

fn main() {
    println!("Table IV — taint tracking scenarios (verified live, DisTA mode)\n");
    let mut table = Table::new(&[
        "System",
        "Scenario",
        "Source point",
        "Sink point",
        "Tainted sink events",
    ]);
    for system in SystemId::ALL {
        let (source, sink) = sdt_points(system);
        let sdt = run_system(system, Mode::Dista, Scenario::Sdt)
            .map(|r| r.tainted_sinks.to_string())
            .unwrap_or_else(|e| format!("ERROR: {e}"));
        table.row(vec![
            system.name().to_string(),
            "SDT".to_string(),
            source.to_string(),
            sink.to_string(),
            sdt,
        ]);
        let sim = run_system(system, Mode::Dista, Scenario::Sim)
            .map(|r| r.tainted_sinks.to_string())
            .unwrap_or_else(|e| format!("ERROR: {e}"));
        table.row(vec![
            system.name().to_string(),
            "SIM".to_string(),
            "File reading methods (FileInputStream.read)".to_string(),
            "LOG.info".to_string(),
            sim,
        ]);
    }
    table.print();
}

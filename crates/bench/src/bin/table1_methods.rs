//! Regenerates **Table I**: the instrumented JNI methods and their
//! instrumentation types.

use dista_core::registry::{self, InstrumentationType};

fn main() {
    println!(
        "Table I — instrumented JNI methods ({} total)\n",
        registry::instrumented_methods().len()
    );
    print!("{}", registry::render_table());
    println!();
    for ty in [
        InstrumentationType::Stream,
        InstrumentationType::Packet,
        InstrumentationType::DirectBuffer,
    ] {
        println!(
            "type {} ({:?}): {} methods",
            ty.number(),
            ty,
            registry::methods_of_type(ty).len()
        );
    }
}

//! Regenerates **Table V**: micro-benchmark runtime overhead —
//! Original vs Phosphor (intra-node only) vs DisTA (full inter-node),
//! including the paper's `JRE Socket-Best/-Worst/-Avg` summary rows.

use std::time::Duration;

use dista_bench::bench_link_model;
use dista_bench::table::{fmt_ms, fmt_ratio, Table};
use dista_microbench::{all_cases, run_case_with, Family, Mode};

struct Row {
    name: String,
    family: Family,
    original: Duration,
    phosphor: Duration,
    dista: Duration,
}

/// Samples all three modes interleaved (O,P,D, O,P,D, …) so transient
/// machine load perturbs every mode equally, then takes per-mode
/// medians.
fn medians_of(
    case: &dyn dista_microbench::MicroCase,
    size: usize,
    reps: usize,
) -> (Duration, Duration, Duration) {
    let mut samples: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..reps {
        for (slot, mode) in [Mode::Original, Mode::Phosphor, Mode::Dista]
            .iter()
            .enumerate()
        {
            let d = run_case_with(case, *mode, size, bench_link_model())
                .unwrap_or_else(|e| panic!("{} [{mode}] failed: {e}", case.name()))
                .duration;
            samples[slot].push(d);
        }
    }
    let median = |v: &mut Vec<Duration>| {
        v.sort();
        v[v.len() / 2]
    };
    (
        median(&mut samples[0]),
        median(&mut samples[1]),
        median(&mut samples[2]),
    )
}

fn main() {
    let size: usize = std::env::var("DISTA_MICRO_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64 * 1024);
    let reps: usize = std::env::var("DISTA_MICRO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    println!("Table V — micro benchmark runtime overhead ({size} B/side, median of {reps})\n");

    let cases = all_cases();
    let mut rows = Vec::new();
    for case in &cases {
        let (original, phosphor, dista) = medians_of(case.as_ref(), size, reps);
        rows.push(Row {
            name: case.name().to_string(),
            family: case.family(),
            original,
            phosphor,
            dista,
        });
    }

    let mut table = Table::new(&[
        "Case",
        "Original (ms)",
        "Phosphor (ms)",
        "Phosphor OH",
        "DisTA (ms)",
        "DisTA OH",
    ]);
    let emit = |table: &mut Table, label: String, o: Duration, p: Duration, d: Duration| {
        table.row(vec![
            label,
            fmt_ms(o),
            fmt_ms(p),
            fmt_ratio(o, p),
            fmt_ms(d),
            fmt_ratio(o, d),
        ]);
    };

    // The paper lists the socket family as Best/Worst/Avg summary rows.
    let sockets: Vec<&Row> = rows
        .iter()
        .filter(|r| r.family == Family::JreSocket)
        .collect();
    let ratio = |r: &Row| r.dista.as_secs_f64() / r.original.as_secs_f64().max(1e-9);
    let best = sockets
        .iter()
        .min_by(|a, b| ratio(a).total_cmp(&ratio(b)))
        .expect("socket cases exist");
    let worst = sockets
        .iter()
        .max_by(|a, b| ratio(a).total_cmp(&ratio(b)))
        .expect("socket cases exist");
    let avg = |f: fn(&Row) -> Duration| -> Duration {
        sockets.iter().map(|r| f(r)).sum::<Duration>() / sockets.len() as u32
    };
    emit(
        &mut table,
        format!("JRE Socket-Best ({})", best.name),
        best.original,
        best.phosphor,
        best.dista,
    );
    emit(
        &mut table,
        format!("JRE Socket-Worst ({})", worst.name),
        worst.original,
        worst.phosphor,
        worst.dista,
    );
    emit(
        &mut table,
        "JRE Socket-Avg (22 cases)".to_string(),
        avg(|r| r.original),
        avg(|r| r.phosphor),
        avg(|r| r.dista),
    );
    for row in rows.iter().filter(|r| r.family != Family::JreSocket) {
        emit(
            &mut table,
            row.family.to_string(),
            row.original,
            row.phosphor,
            row.dista,
        );
    }
    // Overall average row, like the paper's final row.
    let n = rows.len() as u32;
    emit(
        &mut table,
        "Average (30 cases)".to_string(),
        rows.iter().map(|r| r.original).sum::<Duration>() / n,
        rows.iter().map(|r| r.phosphor).sum::<Duration>() / n,
        rows.iter().map(|r| r.dista).sum::<Duration>() / n,
    );
    table.print();
    println!("\nExpected shape (paper): Phosphor ≈2.6X, DisTA ≈3.9X on average;");
    println!("the *inter-node* increment (DisTA vs Phosphor) stays small.");
}

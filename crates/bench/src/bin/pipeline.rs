//! Cross-system pipeline load bench: drives the two flagship pipeline
//! scenarios (`ingest → store → analyze` over RocketMQ + HBase +
//! MapReduce, and the multi-tenant ActiveMQ broker) repeatedly at
//! batch sizes above the correctness suites, recording end-to-end
//! throughput and latency quantiles into `BENCH_pipeline.json` so the
//! cross-system path has a perf trajectory tracked per PR.
//!
//! Every load iteration is also a correctness check: rows scanned must
//! match records sent, no lookup may stay pending, every record tag
//! must reach the final sink, the first record's provenance must span
//! three systems exactly, and the clean tenant runs must report zero
//! cross-tenant hits (one seeded misroute run must report exactly one).
//!
//! Flags: `--smoke` (CI-sized batches), `--iters N`, `--records N`
//! (ingest records per iteration), `--messages N` (per-tenant messages
//! per iteration), `--out PATH`, `--trace` (run one small ingest and
//! print the rendered hop-by-hop provenance trace instead of benching).

use std::io::Write as _;
use std::time::Instant;

use dista_bench::pipeline::{self, IngestConfig, TenantConfig};
use dista_core::Mode;
use dista_obs::Histogram;

/// Latency bucket grid in microseconds. Pipeline iterations are whole
/// multi-system runs, so the grid is coarser and taller than the
/// per-crossing grid in `cluster_load`.
const LATENCY_BOUNDS_US: &[u64] = &[
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000, 2_000_000,
    5_000_000, 10_000_000, 30_000_000,
];

struct Config {
    iters: usize,
    records: usize,
    messages: usize,
    smoke: bool,
    trace: bool,
    out: String,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let smoke = flag("--smoke");
    Config {
        iters: value("--iters")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 3 } else { 8 }),
        records: value("--records")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 12 } else { 48 }),
        messages: value("--messages")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 6 } else { 16 }),
        smoke,
        trace: flag("--trace"),
        out: value("--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string()),
    }
}

/// `--trace`: one small ingest run, then the rendered provenance of the
/// first record — the quickstart demo of a taint crossing three
/// applications.
fn print_trace() {
    let outcome = pipeline::run_ingest(&IngestConfig::new(Mode::Dista)).expect("ingest pipeline");
    let gid = outcome.record_gids[0];
    let trace = outcome.cluster.provenance_stitched(gid);
    let systems = pipeline::systems_spanned(&trace);
    println!(
        "record tag {:?} crossed {} systems ({}) — trace exact: {}",
        outcome.record_tags[0],
        systems.len(),
        systems.join(" → "),
        trace.exact
    );
    println!("{trace}");
}

struct ScenarioStats {
    latency_us: Histogram,
    items_total: usize,
    elapsed_secs: f64,
    retries_total: u64,
    failures: Vec<String>,
}

impl ScenarioStats {
    fn new() -> Self {
        ScenarioStats {
            latency_us: Histogram::detached(LATENCY_BOUNDS_US),
            items_total: 0,
            elapsed_secs: 0.0,
            retries_total: 0,
            failures: Vec::new(),
        }
    }

    fn throughput(&self) -> f64 {
        self.items_total as f64 / self.elapsed_secs.max(1e-9)
    }
}

fn run_ingest_load(cfg: &Config) -> (ScenarioStats, usize, bool) {
    let mut stats = ScenarioStats::new();
    let mut systems_spanned = usize::MAX;
    let mut exact = true;
    for iter in 0..cfg.iters {
        let mut icfg = IngestConfig::new(Mode::Dista);
        icfg.records = cfg.records;
        let start = Instant::now();
        let outcome = match pipeline::run_ingest(&icfg) {
            Ok(o) => o,
            Err(e) => {
                stats.failures.push(format!("iter {iter}: {e}"));
                continue;
            }
        };
        let elapsed = start.elapsed();
        stats.latency_us.observe(elapsed.as_micros() as u64);
        stats.elapsed_secs += elapsed.as_secs_f64();
        stats.items_total += outcome.rows_scanned;
        stats.retries_total += outcome.retries;
        if outcome.rows_scanned != cfg.records {
            stats.failures.push(format!(
                "iter {iter}: scanned {} of {} rows",
                outcome.rows_scanned, cfg.records
            ));
        }
        if outcome.pending_after != 0 {
            stats.failures.push(format!(
                "iter {iter}: {} lookups pending",
                outcome.pending_after
            ));
        }
        for tag in &outcome.record_tags {
            if !outcome.sink_tags.contains(tag) {
                stats
                    .failures
                    .push(format!("iter {iter}: {tag} missing at the final sink"));
            }
        }
        let trace = outcome.cluster.provenance_stitched(outcome.record_gids[0]);
        systems_spanned = systems_spanned.min(pipeline::systems_spanned(&trace).len());
        exact &= trace.exact;
    }
    (stats, systems_spanned, exact)
}

fn run_tenant_load(cfg: &Config) -> (ScenarioStats, usize, usize) {
    let mut stats = ScenarioStats::new();
    let mut clean_hits = 0usize;
    for iter in 0..cfg.iters {
        let mut tcfg = TenantConfig::new(Mode::Dista);
        tcfg.messages = cfg.messages;
        let start = Instant::now();
        let outcome = match pipeline::run_tenants(&tcfg) {
            Ok(o) => o,
            Err(e) => {
                stats.failures.push(format!("iter {iter}: {e}"));
                continue;
            }
        };
        let elapsed = start.elapsed();
        stats.latency_us.observe(elapsed.as_micros() as u64);
        stats.elapsed_secs += elapsed.as_secs_f64();
        stats.items_total += tcfg.tenants * tcfg.messages;
        stats.retries_total += outcome.retries;
        clean_hits += outcome.hits.len();
        if outcome.received != outcome.expected {
            stats.failures.push(format!(
                "iter {iter}: received {:?} expected {:?}",
                outcome.received, outcome.expected
            ));
        }
        if outcome.pending_after != 0 {
            stats.failures.push(format!(
                "iter {iter}: {} lookups pending",
                outcome.pending_after
            ));
        }
    }
    // One seeded misroute run as the positive detection gate (timed
    // separately; the load numbers above are the clean path).
    let mut tcfg = TenantConfig::new(Mode::Dista);
    tcfg.messages = cfg.messages;
    tcfg.misroute_seed = Some(1234);
    let misroute_hits = match pipeline::run_tenants(&tcfg) {
        Ok(o) => o.hits.len(),
        Err(e) => {
            stats.failures.push(format!("misroute run: {e}"));
            0
        }
    };
    (stats, clean_hits, misroute_hits)
}

fn main() {
    let cfg = parse_args();
    if cfg.trace {
        print_trace();
        return;
    }
    println!(
        "pipeline: {} iters, {} records/run (ingest), 3x{} messages/run (tenants){}",
        cfg.iters,
        cfg.records,
        cfg.messages,
        if cfg.smoke { " (smoke)" } else { "" }
    );

    let (ingest, systems_spanned, exact) = run_ingest_load(&cfg);
    let (tenants, clean_hits, misroute_hits) = run_tenant_load(&cfg);

    let mut failed = false;
    for f in ingest.failures.iter().chain(tenants.failures.iter()) {
        eprintln!("FAIL: {f}");
        failed = true;
    }
    if systems_spanned < 3 {
        eprintln!("FAIL: provenance spanned only {systems_spanned} systems");
        failed = true;
    }
    if !exact {
        eprintln!("FAIL: a v2 trace fell back to inference");
        failed = true;
    }
    if clean_hits != 0 {
        eprintln!("FAIL: {clean_hits} cross-tenant hits on clean runs");
        failed = true;
    }
    if misroute_hits != 1 {
        eprintln!("FAIL: seeded misroute produced {misroute_hits} hits, expected 1");
        failed = true;
    }

    println!(
        "ingest:  {:.1} records/s  p50 {} us  p99 {} us  ({} records, {} retries)",
        ingest.throughput(),
        ingest.latency_us.quantile(0.50),
        ingest.latency_us.quantile(0.99),
        ingest.items_total,
        ingest.retries_total,
    );
    println!(
        "tenants: {:.1} messages/s  p50 {} us  p99 {} us  ({} messages, {} retries)",
        tenants.throughput(),
        tenants.latency_us.quantile(0.50),
        tenants.latency_us.quantile(0.99),
        tenants.items_total,
        tenants.retries_total,
    );

    // Hand-rolled JSON (the vendored serde is a stub). Keys are stable
    // for cross-PR tracking and ci.sh greps.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeline\",\n",
            "  \"smoke\": {},\n",
            "  \"iterations\": {},\n",
            "  \"systems_spanned\": {},\n",
            "  \"exact_traces\": {},\n",
            "  \"cross_tenant_hits_clean\": {},\n",
            "  \"misroute_hits\": {},\n",
            "  \"ingest\": {{\n",
            "    \"records_per_run\": {},\n",
            "    \"records_total\": {},\n",
            "    \"retries_total\": {},\n",
            "    \"elapsed_seconds\": {:.3},\n",
            "    \"throughput_records_per_sec\": {:.1},\n",
            "    \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"mean\": {:.1} }}\n",
            "  }},\n",
            "  \"tenants\": {{\n",
            "    \"messages_per_tenant\": {},\n",
            "    \"messages_total\": {},\n",
            "    \"retries_total\": {},\n",
            "    \"elapsed_seconds\": {:.3},\n",
            "    \"throughput_messages_per_sec\": {:.1},\n",
            "    \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"mean\": {:.1} }}\n",
            "  }}\n",
            "}}\n",
        ),
        cfg.smoke,
        cfg.iters,
        systems_spanned,
        exact,
        clean_hits,
        misroute_hits,
        cfg.records,
        ingest.items_total,
        ingest.retries_total,
        ingest.elapsed_secs,
        ingest.throughput(),
        ingest.latency_us.quantile(0.50),
        ingest.latency_us.quantile(0.99),
        ingest.latency_us.mean(),
        cfg.messages,
        tenants.items_total,
        tenants.retries_total,
        tenants.elapsed_secs,
        tenants.throughput(),
        tenants.latency_us.quantile(0.50),
        tenants.latency_us.quantile(0.99),
        tenants.latency_us.mean(),
    );

    let mut f = std::fs::File::create(&cfg.out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {}", cfg.out);

    if failed {
        std::process::exit(1);
    }
    println!("OK");
}

//! Measures the **boundary codec fast path**: the run-vectorized
//! `encode_wire_into`/`decode_wire_into` against the retained per-byte
//! reference codec, on 1 MiB uniform and striped payloads.
//!
//! The wire format is identical by construction — this bin *proves* it
//! before timing anything: every benchmarked layout is first checked
//! bit-for-bit against the reference encoder/decoder, and the process
//! exits non-zero on any deviation.
//!
//! Flags:
//!
//! * `--smoke` — conformance gate only (fast/reference bit-identity over
//!   a battery of layouts and widths, plus one 1 MiB case); no timing.
//!   This is what CI runs.
//! * `--wire-v2` — conformance gate, then the adaptive-protocol sweep: a
//!   1 MiB payload with 1% of its bytes tainted is pushed through both
//!   `V1Codec` and `V2Codec` via the `WireCodec` trait. **Exits
//!   non-zero** (under `--release`) unless v2 expands the wire by ≤1.2×
//!   and retains ≥2× the v1 combined encode+decode throughput. Results
//!   land in `BENCH_wire_v2.json` (override with `--out PATH`).
//! * default — conformance gate, then measured throughput. **Exits
//!   non-zero** unless the fast path shows ≥2× combined encode+decode
//!   throughput on both 1 MiB payload shapes (run under `--release`;
//!   unoptimized builds print a warning instead of failing the gate).

use std::time::Instant;

use dista_bench::table::Table;
use dista_jre::codec::{v1, v1::reference, WireRun, MAX_GID_WIDTH};
use dista_jre::{V1Codec, V2Codec, WireCodec};
use dista_taint::GlobalId;

const MIB: usize = 1024 * 1024;

fn gid_slot(v: u64, width: usize) -> [u8; MAX_GID_WIDTH] {
    let mut slot = [0u8; MAX_GID_WIDTH];
    slot[..width].copy_from_slice(&v.to_be_bytes()[8 - width..]);
    slot
}

/// Deterministic pseudo-random bytes (no external RNG needed).
fn lcg_bytes(len: usize, mut seed: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 56) as u8
        })
        .collect()
}

struct Shape {
    name: &'static str,
    data: Vec<u8>,
    runs: Vec<WireRun>,
}

/// The two paper-shaped 1 MiB payloads plus smaller conformance-only
/// layouts.
fn shapes(size: usize, width: usize) -> Vec<Shape> {
    let uniform = Shape {
        name: "uniform",
        data: lcg_bytes(size, 7),
        runs: vec![(size, gid_slot(42, width))],
    };
    // Striped: alternating 64-byte runs of two gids with untainted gaps —
    // the run-heavy worst-ish case for the vectorized fill.
    let mut runs = Vec::new();
    let mut covered = 0;
    let mut i = 0u64;
    while covered < size {
        let len = 64.min(size - covered);
        let gid = match i % 3 {
            0 => 7,
            1 => 0,
            _ => 9,
        };
        runs.push((len, gid_slot(gid, width)));
        covered += len;
        i += 1;
    }
    let striped = Shape {
        name: "striped",
        data: lcg_bytes(size, 11),
        runs,
    };
    vec![uniform, striped]
}

/// Bit-identity of the fast path against the reference codec for one
/// layout. Returns an error description on any deviation.
fn conformance(shape: &Shape, width: usize) -> Result<(), String> {
    let mut fast = Vec::new();
    v1::encode_wire_into(&shape.data, &shape.runs, width, &mut fast);
    let refr = reference::encode_wire(&shape.data, &shape.runs, width);
    if fast != refr {
        let at = fast
            .iter()
            .zip(&refr)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fast.len().min(refr.len()));
        return Err(format!(
            "{} w{width}: encode deviates from reference at wire byte {at}",
            shape.name
        ));
    }
    let (mut fd, mut fr) = (Vec::new(), Vec::new());
    v1::decode_wire_into(&fast, width, &mut fd, &mut fr)
        .map_err(|e| format!("{} w{width}: fast decode failed: {e}", shape.name))?;
    let (rd, rr) = reference::decode_wire(&refr, width)
        .map_err(|e| format!("{} w{width}: reference decode failed: {e}", shape.name))?;
    if fd != rd || fr != rr {
        return Err(format!(
            "{} w{width}: fast decode disagrees with reference decode",
            shape.name
        ));
    }
    if fd != shape.data {
        return Err(format!(
            "{} w{width}: decode is not the inverse of encode",
            shape.name
        ));
    }
    Ok(())
}

fn conformance_gate() -> bool {
    let mut ok = true;
    let mut checked = 0;
    for width in [1usize, 2, 4, 8] {
        for size in [0usize, 1, 64, 4096] {
            for shape in shapes(size, width) {
                if let Err(e) = conformance(&shape, width) {
                    println!("FAIL: {e}");
                    ok = false;
                }
                checked += 1;
            }
        }
    }
    // One full-size case per shape at the default width.
    for shape in shapes(MIB, 4) {
        if let Err(e) = conformance(&shape, 4) {
            println!("FAIL: {e}");
            ok = false;
        }
        checked += 1;
    }
    println!(
        "conformance: {checked} layouts checked, fast path {} the reference codec bit-for-bit",
        if ok { "matches" } else { "DEVIATES FROM" }
    );
    ok
}

/// Best-of-`iters` seconds for one closure.
fn time_best(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A 1 MiB payload with 1% of its bytes tainted: short 64-byte tainted
/// runs spread evenly through otherwise-clean data — the shape the
/// adaptive v2 framing is designed for (paper workloads are mostly
/// clean bytes with small tainted islands).
fn one_percent_tainted(size: usize) -> (Vec<u8>, Vec<(usize, GlobalId)>) {
    const RUN: usize = 64;
    const PERIOD: usize = RUN * 100; // 1% of bytes land in tainted runs
    let data = lcg_bytes(size, 13);
    let mut runs = Vec::new();
    let mut covered = 0;
    let mut gid = 40u32;
    while covered < size {
        let clean = (PERIOD - RUN).min(size - covered);
        if clean > 0 {
            runs.push((clean, GlobalId::UNTAINTED));
            covered += clean;
        }
        let tainted = RUN.min(size - covered);
        if tainted > 0 {
            runs.push((tainted, GlobalId(gid)));
            covered += tainted;
            gid += 1;
        }
    }
    (data, runs)
}

/// One codec's combined encode+decode seconds (best of `iters`) and its
/// wire size for the given payload, via the versioned `WireCodec` trait.
fn measure_codec(
    codec: &dyn WireCodec,
    data: &[u8],
    runs: &[(usize, GlobalId)],
    iters: usize,
) -> (f64, usize) {
    let mut wire = Vec::new();
    codec.encode_into(data, runs, &mut wire).expect("encode");
    let wire_len = wire.len();
    let enc = time_best(iters, || {
        let mut out = Vec::new();
        codec.encode_into(data, runs, &mut out).expect("encode");
        std::hint::black_box(&out);
    });
    let dec = time_best(iters, || {
        let (mut d, mut r) = (Vec::new(), Vec::new());
        let consumed = codec
            .decode_available(&wire, data.len(), &mut d, &mut r)
            .expect("decode");
        assert_eq!(consumed, wire.len(), "one pass must drain the wire");
        std::hint::black_box((&d, &r));
    });
    (enc + dec, wire_len)
}

/// The adaptive-protocol sweep behind the `--wire-v2` flag: v2 vs v1 on
/// the 1%-tainted 1 MiB workload, gates checked and results written as
/// JSON for ci.sh to grep.
fn wire_v2_sweep(out_path: &str) -> bool {
    const WIDTH: usize = 4;
    const ITERS: usize = 5;
    const EXPANSION_GATE: f64 = 1.2;
    const THROUGHPUT_GATE: f64 = 2.0;

    let (data, runs) = one_percent_tainted(MIB);
    // Cross-check first: both protocols must deliver identical payloads
    // before any of the timing means anything.
    let mut per_proto = Vec::new();
    for codec in [&V1Codec::new(WIDTH) as &dyn WireCodec, &V2Codec::new(WIDTH)] {
        let mut wire = Vec::new();
        codec.encode_into(&data, &runs, &mut wire).expect("encode");
        let (mut d, mut r) = (Vec::new(), Vec::new());
        codec
            .decode_available(&wire, data.len(), &mut d, &mut r)
            .expect("decode");
        per_proto.push((d, r));
    }
    if per_proto[0] != per_proto[1] {
        println!("FAIL: v1 and v2 deliver different payloads on the sweep workload");
        return false;
    }

    let (v1_secs, v1_wire) = measure_codec(&V1Codec::new(WIDTH), &data, &runs, ITERS);
    let (v2_secs, v2_wire) = measure_codec(&V2Codec::new(WIDTH), &data, &runs, ITERS);
    let expansion = v2_wire as f64 / data.len() as f64;
    let speedup = v1_secs / v2_secs;
    let mib_s = |secs: f64| (data.len() as f64 / secs) / MIB as f64;

    let mut table = Table::new(&["Protocol", "Wire bytes", "Expansion", "Enc+dec"]);
    for (name, wire, secs) in [("v1", v1_wire, v1_secs), ("v2", v2_wire, v2_secs)] {
        table.row(vec![
            name.to_string(),
            wire.to_string(),
            format!("{:.3}x", wire as f64 / data.len() as f64),
            format!("{:8.1} MiB/s", mib_s(secs)),
        ]);
    }
    table.print();
    println!(
        "\n1 MiB payload, 1% tainted, gid width {WIDTH}, best of {ITERS} runs: \
         v2 expansion {expansion:.3}x (gate <= {EXPANSION_GATE}x), \
         v2 retains {speedup:.2}x v1 combined throughput (gate >= {THROUGHPUT_GATE}x)"
    );

    let expansion_ok = expansion <= EXPANSION_GATE;
    let throughput_ok = speedup >= THROUGHPUT_GATE;
    let json = format!(
        "{{\n  \"bench\": \"boundary_codec_wire_v2\",\n  \"payload_bytes\": {},\n  \
         \"tainted_fraction\": 0.01,\n  \"gid_width\": {WIDTH},\n  \
         \"v1_wire_bytes\": {v1_wire},\n  \"v2_wire_bytes\": {v2_wire},\n  \
         \"v2_expansion\": {expansion:.4},\n  \"expansion_gate\": {EXPANSION_GATE},\n  \
         \"expansion_ok\": {expansion_ok},\n  \
         \"v1_enc_dec_mib_s\": {:.1},\n  \"v2_enc_dec_mib_s\": {:.1},\n  \
         \"v2_throughput_retention\": {speedup:.2},\n  \"throughput_gate\": {THROUGHPUT_GATE},\n  \
         \"throughput_ok\": {throughput_ok}\n}}\n",
        data.len(),
        mib_s(v1_secs),
        mib_s(v2_secs),
    );
    if let Err(e) = std::fs::write(out_path, json) {
        println!("FAIL: cannot write {out_path}: {e}");
        return false;
    }
    println!("wrote {out_path}");

    if expansion_ok && throughput_ok {
        println!("OK: v2 within the 1.2x expansion and 2x retained-throughput gates");
        true
    } else if !expansion_ok {
        println!("FAIL: v2 expansion {expansion:.3}x exceeds the {EXPANSION_GATE}x gate");
        false
    } else if cfg!(debug_assertions) {
        println!("WARN: <{THROUGHPUT_GATE}x in an unoptimized build — rerun with --release");
        true
    } else {
        println!("FAIL: v2 throughput retention {speedup:.2}x below the {THROUGHPUT_GATE}x gate");
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let wire_v2 = args.iter().any(|a| a == "--wire-v2");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_wire_v2.json", String::as_str);
    println!("boundary codec — zero-copy fast path vs per-byte reference\n");
    if !conformance_gate() {
        std::process::exit(1);
    }
    if smoke {
        return;
    }
    if wire_v2 {
        if !wire_v2_sweep(out_path) {
            std::process::exit(1);
        }
        return;
    }

    const WIDTH: usize = 4;
    const ITERS: usize = 5;
    let mut table = Table::new(&["Shape", "Stage", "Reference", "Fast path", "Speedup"]);
    let mut all_meet_bar = true;
    for shape in shapes(MIB, WIDTH) {
        let wire = reference::encode_wire(&shape.data, &shape.runs, WIDTH);
        let mut out = Vec::new();
        let enc_ref = time_best(ITERS, || {
            std::hint::black_box(reference::encode_wire(&shape.data, &shape.runs, WIDTH));
        });
        let enc_fast = time_best(ITERS, || {
            v1::encode_wire_into(&shape.data, &shape.runs, WIDTH, &mut out);
            std::hint::black_box(&out);
        });
        let (mut d, mut r) = (Vec::new(), Vec::new());
        let dec_ref = time_best(ITERS, || {
            std::hint::black_box(reference::decode_wire(&wire, WIDTH).unwrap());
        });
        let dec_fast = time_best(ITERS, || {
            v1::decode_wire_into(&wire, WIDTH, &mut d, &mut r).unwrap();
            std::hint::black_box((&d, &r));
        });
        let mib_s = |secs: f64| 1.0 / secs; // payload is exactly 1 MiB
        for (stage, re, fast) in [("encode", enc_ref, enc_fast), ("decode", dec_ref, dec_fast)] {
            table.row(vec![
                shape.name.to_string(),
                stage.to_string(),
                format!("{:8.1} MiB/s", mib_s(re)),
                format!("{:8.1} MiB/s", mib_s(fast)),
                format!("{:.2}x", re / fast),
            ]);
        }
        let combined = (enc_ref + dec_ref) / (enc_fast + dec_fast);
        table.row(vec![
            shape.name.to_string(),
            "enc+dec".to_string(),
            String::new(),
            String::new(),
            format!("{combined:.2}x"),
        ]);
        if combined < 2.0 {
            all_meet_bar = false;
        }
    }
    table.print();
    println!("\n1 MiB payloads, gid width 4 (5x wire expansion), best of {ITERS} runs.");
    if all_meet_bar {
        println!("OK: fast path >= 2x combined encode+decode throughput on both shapes");
    } else if cfg!(debug_assertions) {
        println!("WARN: <2x in an unoptimized build — rerun with --release for the gate");
    } else {
        println!("FAIL: fast path below the 2x combined throughput bar");
        std::process::exit(1);
    }
}

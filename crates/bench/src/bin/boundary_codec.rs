//! Measures the **boundary codec fast path**: the run-vectorized
//! `encode_wire_into`/`decode_wire_into` against the retained per-byte
//! reference codec, on 1 MiB uniform and striped payloads.
//!
//! The wire format is identical by construction — this bin *proves* it
//! before timing anything: every benchmarked layout is first checked
//! bit-for-bit against the reference encoder/decoder, and the process
//! exits non-zero on any deviation.
//!
//! Flags:
//!
//! * `--smoke` — conformance gate only (fast/reference bit-identity over
//!   a battery of layouts and widths, plus one 1 MiB case); no timing.
//!   This is what CI runs.
//! * default — conformance gate, then measured throughput. **Exits
//!   non-zero** unless the fast path shows ≥2× combined encode+decode
//!   throughput on both 1 MiB payload shapes (run under `--release`;
//!   unoptimized builds print a warning instead of failing the gate).

use std::time::Instant;

use dista_bench::table::Table;
use dista_jre::codec::{self, reference, WireRun, MAX_GID_WIDTH};

const MIB: usize = 1024 * 1024;

fn gid_slot(v: u64, width: usize) -> [u8; MAX_GID_WIDTH] {
    let mut slot = [0u8; MAX_GID_WIDTH];
    slot[..width].copy_from_slice(&v.to_be_bytes()[8 - width..]);
    slot
}

/// Deterministic pseudo-random bytes (no external RNG needed).
fn lcg_bytes(len: usize, mut seed: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 56) as u8
        })
        .collect()
}

struct Shape {
    name: &'static str,
    data: Vec<u8>,
    runs: Vec<WireRun>,
}

/// The two paper-shaped 1 MiB payloads plus smaller conformance-only
/// layouts.
fn shapes(size: usize, width: usize) -> Vec<Shape> {
    let uniform = Shape {
        name: "uniform",
        data: lcg_bytes(size, 7),
        runs: vec![(size, gid_slot(42, width))],
    };
    // Striped: alternating 64-byte runs of two gids with untainted gaps —
    // the run-heavy worst-ish case for the vectorized fill.
    let mut runs = Vec::new();
    let mut covered = 0;
    let mut i = 0u64;
    while covered < size {
        let len = 64.min(size - covered);
        let gid = match i % 3 {
            0 => 7,
            1 => 0,
            _ => 9,
        };
        runs.push((len, gid_slot(gid, width)));
        covered += len;
        i += 1;
    }
    let striped = Shape {
        name: "striped",
        data: lcg_bytes(size, 11),
        runs,
    };
    vec![uniform, striped]
}

/// Bit-identity of the fast path against the reference codec for one
/// layout. Returns an error description on any deviation.
fn conformance(shape: &Shape, width: usize) -> Result<(), String> {
    let mut fast = Vec::new();
    codec::encode_wire_into(&shape.data, &shape.runs, width, &mut fast);
    let refr = reference::encode_wire(&shape.data, &shape.runs, width);
    if fast != refr {
        let at = fast
            .iter()
            .zip(&refr)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fast.len().min(refr.len()));
        return Err(format!(
            "{} w{width}: encode deviates from reference at wire byte {at}",
            shape.name
        ));
    }
    let (mut fd, mut fr) = (Vec::new(), Vec::new());
    codec::decode_wire_into(&fast, width, &mut fd, &mut fr)
        .map_err(|e| format!("{} w{width}: fast decode failed: {e}", shape.name))?;
    let (rd, rr) = reference::decode_wire(&refr, width)
        .map_err(|e| format!("{} w{width}: reference decode failed: {e}", shape.name))?;
    if fd != rd || fr != rr {
        return Err(format!(
            "{} w{width}: fast decode disagrees with reference decode",
            shape.name
        ));
    }
    if fd != shape.data {
        return Err(format!(
            "{} w{width}: decode is not the inverse of encode",
            shape.name
        ));
    }
    Ok(())
}

fn conformance_gate() -> bool {
    let mut ok = true;
    let mut checked = 0;
    for width in [1usize, 2, 4, 8] {
        for size in [0usize, 1, 64, 4096] {
            for shape in shapes(size, width) {
                if let Err(e) = conformance(&shape, width) {
                    println!("FAIL: {e}");
                    ok = false;
                }
                checked += 1;
            }
        }
    }
    // One full-size case per shape at the default width.
    for shape in shapes(MIB, 4) {
        if let Err(e) = conformance(&shape, 4) {
            println!("FAIL: {e}");
            ok = false;
        }
        checked += 1;
    }
    println!(
        "conformance: {checked} layouts checked, fast path {} the reference codec bit-for-bit",
        if ok { "matches" } else { "DEVIATES FROM" }
    );
    ok
}

/// Best-of-`iters` seconds for one closure.
fn time_best(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    println!("boundary codec — zero-copy fast path vs per-byte reference\n");
    if !conformance_gate() {
        std::process::exit(1);
    }
    if smoke {
        return;
    }

    const WIDTH: usize = 4;
    const ITERS: usize = 5;
    let mut table = Table::new(&["Shape", "Stage", "Reference", "Fast path", "Speedup"]);
    let mut all_meet_bar = true;
    for shape in shapes(MIB, WIDTH) {
        let wire = reference::encode_wire(&shape.data, &shape.runs, WIDTH);
        let mut out = Vec::new();
        let enc_ref = time_best(ITERS, || {
            std::hint::black_box(reference::encode_wire(&shape.data, &shape.runs, WIDTH));
        });
        let enc_fast = time_best(ITERS, || {
            codec::encode_wire_into(&shape.data, &shape.runs, WIDTH, &mut out);
            std::hint::black_box(&out);
        });
        let (mut d, mut r) = (Vec::new(), Vec::new());
        let dec_ref = time_best(ITERS, || {
            std::hint::black_box(reference::decode_wire(&wire, WIDTH).unwrap());
        });
        let dec_fast = time_best(ITERS, || {
            codec::decode_wire_into(&wire, WIDTH, &mut d, &mut r).unwrap();
            std::hint::black_box((&d, &r));
        });
        let mib_s = |secs: f64| 1.0 / secs; // payload is exactly 1 MiB
        for (stage, re, fast) in [("encode", enc_ref, enc_fast), ("decode", dec_ref, dec_fast)] {
            table.row(vec![
                shape.name.to_string(),
                stage.to_string(),
                format!("{:8.1} MiB/s", mib_s(re)),
                format!("{:8.1} MiB/s", mib_s(fast)),
                format!("{:.2}x", re / fast),
            ]);
        }
        let combined = (enc_ref + dec_ref) / (enc_fast + dec_fast);
        table.row(vec![
            shape.name.to_string(),
            "enc+dec".to_string(),
            String::new(),
            String::new(),
            format!("{combined:.2}x"),
        ]);
        if combined < 2.0 {
            all_meet_bar = false;
        }
    }
    table.print();
    println!("\n1 MiB payloads, gid width 4 (5x wire expansion), best of {ITERS} runs.");
    if all_meet_bar {
        println!("OK: fast path >= 2x combined encode+decode throughput on both shapes");
    } else if cfg!(debug_assertions) {
        println!("WARN: <2x in an unoptimized build — rerun with --release for the gate");
    } else {
        println!("FAIL: fast path below the 2x combined throughput bar");
        std::process::exit(1);
    }
}

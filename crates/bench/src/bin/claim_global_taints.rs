//! Verifies the **§V-F global-taint claims**: SDT scenarios produce few
//! global taints (paper: 1–6) while SIM produces many (paper: 54–327),
//! and "the overhead does not increase significantly with the number of
//! global taints".

use std::time::{Duration, Instant};

use dista_bench::table::{fmt_ms, Table};
use dista_bench::{run_system, Mode, Scenario, SystemId};
use dista_core::Cluster;
use dista_jre::{InputStream, OutputStream, ServerSocket, Socket};
use dista_simnet::NodeAddr;
use dista_taint::{Payload, TagValue, TaintedBytes};

/// Sends `distinct` chunks, each carrying its own fresh taint, from node
/// 1 to node 2 and back; returns the wall-clock time.
fn synthetic_run(distinct: usize, bytes_per_chunk: usize) -> Duration {
    let cluster = Cluster::builder(Mode::Dista)
        .nodes("sweep", 2)
        .build()
        .expect("cluster");
    let (vm1, vm2) = (cluster.vm(0).clone(), cluster.vm(1).clone());
    let server = ServerSocket::bind(&vm2, NodeAddr::new([10, 0, 0, 2], 4000)).expect("bind");
    let total = distinct * bytes_per_chunk;
    let echo = std::thread::spawn(move || {
        let conn = server.accept().expect("accept");
        let got = conn.input_stream().read_exact(total).expect("read");
        conn.output_stream().write(&got).expect("write");
    });

    let start = Instant::now();
    let client = Socket::connect(&vm1, NodeAddr::new([10, 0, 0, 2], 4000)).expect("connect");
    let mut payload = TaintedBytes::with_capacity(total);
    for i in 0..distinct {
        let taint = vm1.store().mint_source_taint(TagValue::Int(i as i64));
        payload.extend_uniform(&vec![b'x'; bytes_per_chunk], taint);
    }
    client
        .output_stream()
        .write(&Payload::Tainted(payload))
        .expect("send");
    let back = client.input_stream().read_exact(total).expect("recv");
    assert_eq!(back.len(), total);
    echo.join().expect("echo thread");
    let elapsed = start.elapsed();
    assert_eq!(
        cluster.taint_map().stats().global_taints,
        distinct as u64,
        "one global taint per distinct tag"
    );
    cluster.shutdown();
    elapsed
}

fn main() {
    // `--smoke` (used by ci.sh) runs a single system plus one synthetic
    // sweep point, enough to catch census regressions in seconds.
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let result =
            run_system(SystemId::ZooKeeper, Mode::Dista, Scenario::Sim).expect("zookeeper sim");
        assert!(
            result.global_taints > 1,
            "SIM must register more than one global taint, got {}",
            result.global_taints
        );
        let d = synthetic_run(6, 4 * 1024);
        println!(
            "smoke ok: zookeeper sim census = {} global taints, 6-taint sweep = {} ms",
            result.global_taints,
            fmt_ms(d)
        );
        return;
    }

    println!("§V-F claim — global-taint census per scenario\n");
    let mut census = Table::new(&["System", "SDT global taints", "SIM global taints"]);
    for system in SystemId::ALL {
        let sdt = run_system(system, Mode::Dista, Scenario::Sdt)
            .map(|r| r.global_taints.to_string())
            .unwrap_or_else(|e| format!("ERROR: {e}"));
        let sim = run_system(system, Mode::Dista, Scenario::Sim)
            .map(|r| r.global_taints.to_string())
            .unwrap_or_else(|e| format!("ERROR: {e}"));
        census.row(vec![system.name().to_string(), sdt, sim]);
    }
    census.print();
    println!("(paper: SDT 1..6; SIM 54..327 — shape: SIM ≫ SDT)\n");

    println!("§V-F claim — runtime vs number of global taints (fixed 256 KiB payload)\n");
    let mut sweep = Table::new(&["Distinct taints", "Round trip", "per-KiB"]);
    let total = 256 * 1024;
    for distinct in [1usize, 6, 54, 327] {
        let d = synthetic_run(distinct, total / distinct);
        sweep.row(vec![
            distinct.to_string(),
            format!("{} ms", fmt_ms(d)),
            format!("{:.3} ms", d.as_secs_f64() * 1e3 / 256.0),
        ]);
    }
    sweep.print();
    println!("\n(paper: \"the overhead does not increase significantly with the");
    println!("number of global taints\" — each distinct taint costs one Taint Map");
    println!("round trip, amortized over the whole payload.)");
}

//! Regenerates the **§V-E usability result**: the launch-script
//! modification each system needs (paper: 3 LOC for ZooKeeper, ~10 LOC
//! on average), plus the generated script fragments themselves.

use dista_bench::table::Table;
use dista_core::DistaConfig;

fn configs() -> Vec<DistaConfig> {
    vec![
        // zkEnv.sh: JAVA + server + client flags (the §V-E listing).
        DistaConfig::new("ZooKeeper")
            .script("zkEnv.sh")
            .server_role("SERVER_JVMFLAGS")
            .client_role("CLIENT_JVMFLAGS")
            .sources("FastLeaderElection.getVote\nFileInputStream.read\n")
            .sinks("FastLeaderElection.checkLeader\nLOG.info\n"),
        // hadoop-env.sh + yarn-env.sh + mapred-env.sh.
        DistaConfig::new("MapReduce/Yarn")
            .script("hadoop-env.sh")
            .script("yarn-env.sh")
            .script("mapred-env.sh")
            .server_role("YARN_RESOURCEMANAGER_OPTS")
            .server_role("YARN_NODEMANAGER_OPTS")
            .server_role("YARN_TIMELINESERVER_OPTS")
            .server_role("HADOOP_JOB_HISTORYSERVER_OPTS")
            .server_role("MAPRED_CONTAINER_OPTS")
            .client_role("YARN_CLIENT_OPTS")
            .sources("YarnClient.createApplication\nFileInputStream.read\n")
            .sinks("YarnClient.getApplicationReport\nLOG.info\n"),
        // activemq env script.
        DistaConfig::new("ActiveMQ")
            .script("env")
            .server_role("ACTIVEMQ_OPTS")
            .server_role("ACTIVEMQ_SUNJMX_START")
            .client_role("ACTIVEMQ_CLIENT_OPTS")
            .sources("ActiveMQProducer.createTextMessage\nFileInputStream.read\n")
            .sinks("ActiveMQConsumer.receive\nLOG.info\n"),
        // runserver.sh / runbroker.sh / tools.sh.
        DistaConfig::new("RocketMQ")
            .script("runserver.sh")
            .script("runbroker.sh")
            .script("tools.sh")
            .server_role("NAMESRV_JAVA_OPT")
            .server_role("BROKER_JAVA_OPT")
            .client_role("TOOLS_JAVA_OPT")
            .sources("DefaultMQProducer.createMessage\nFileInputStream.read\n")
            .sinks("DefaultMQPushConsumer.consumeMessage\nLOG.info\n"),
        // hbase-env.sh roles (master, RS, client) + the embedded ZK.
        DistaConfig::new("HBase")
            .script("hbase-env.sh")
            .script("zkEnv.sh")
            .server_role("HBASE_MASTER_OPTS")
            .server_role("HBASE_REGIONSERVER_OPTS")
            .server_role("HBASE_ZOOKEEPER_OPTS")
            .server_role("HBASE_REST_OPTS")
            .client_role("HBASE_CLIENT_OPTS")
            .sources("HTable.tableName\nFileInputStream.read\n")
            .sinks("HTable.getResult\nLOG.info\n"),
    ]
}

fn main() {
    println!("§V-E usability — launch-script modification per system\n");
    let mut table = Table::new(&["System", "Modified LOC", "Source/sink spec parses"]);
    let mut total = 0;
    let configs = configs();
    for config in &configs {
        let script = config.launch_script();
        total += script.loc();
        table.row(vec![
            config.system().to_string(),
            script.loc().to_string(),
            if config.spec().is_ok() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.row(vec![
        "Average".to_string(),
        format!("{:.1}", total as f64 / configs.len() as f64),
        String::new(),
    ]);
    table.print();
    println!("(paper: 3 LOC for ZooKeeper, ~10 LOC on average; no source-code changes)\n");
    for config in &configs {
        let script = config.launch_script();
        println!("--- {} ---\n{}\n", config.system(), script.render());
    }
}

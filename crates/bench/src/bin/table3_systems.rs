//! Regenerates **Table III**: the evaluated real-world systems, their
//! protocols and workloads — and verifies each workload actually runs.

use dista_bench::table::{fmt_ms, Table};
use dista_bench::{run_system, Mode, Scenario, SystemId};

fn main() {
    println!("Table III — real-world distributed systems\n");
    let mut table = Table::new(&[
        "System",
        "Communication",
        "Workload",
        "Run (DisTA)",
        "Status",
    ]);
    for system in SystemId::ALL {
        let status = match run_system(system, Mode::Dista, Scenario::None) {
            Ok(run) => (format!("{} ms", fmt_ms(run.duration)), "ok".to_string()),
            Err(e) => ("-".to_string(), format!("ERROR: {e}")),
        };
        table.row(vec![
            system.name().to_string(),
            system.protocols().to_string(),
            system.workload().to_string(),
            status.0,
            status.1,
        ]);
    }
    table.print();
}

//! Open-loop cluster load harness: drives ≥100k concurrent tainted
//! connections through the simulated cluster on the event-driven
//! [`dista_simnet::Reactor`], recording throughput and p50/p99/p999
//! latency into `dista-obs` histograms and writing the result as
//! `BENCH_cluster_load.json` so the perf trajectory is tracked per PR.
//!
//! Each connection performs `--crossings` boundary crossings: the client
//! encodes its payload into the DisTA interleaved wire format (width 4,
//! Global IDs registered in the cluster's Taint Map for the tainted
//! fraction), ships it as a length-prefixed frame, and the server
//! decodes the frame at the boundary and acks with the decoded byte and
//! tainted-byte counts. Latency is the client-observed crossing round
//! trip. A per-connection response deadline rides the reactor's timer
//! wheel, so the wheel itself is exercised at full connection count —
//! the workload shape the per-connection `BLOCK_TIMEOUT` parking model
//! could never reach.
//!
//! Flags: `--connections N`, `--crossings N`, `--taint-fraction F`,
//! `--payload BYTES`, `--wire v1|v2` (which `WireCodec` frames the
//! crossings; default v1), `--smoke` (12k connections, CI-sized),
//! `--scrape` (A/B the live telemetry plane: a baseline run with
//! telemetry off, then a run with a 10 Hz agent per VM and an
//! in-simulation scraper, gated on ≤5% throughput regression and on the
//! collector's merged cluster p99 agreeing with the harness-local
//! histogram within one bucket), `--gate-p99-us N` (exit non-zero if
//! p99 exceeds the bound), `--out PATH`.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dista_core::{Cluster, Mode, ReshardPlan, TelemetryConfig, WireProtocol};
use dista_jre::{V1Codec, V2Codec, WireCodec, WireVersion};
use dista_obs::{Histogram, ObsConfig, ObsReport};
use dista_simnet::{
    NetError, NodeAddr, Reactor, SimNet, TcpEndpoint, TcpListener, TimerHandle, Token,
};
use dista_taint::{GlobalId, TagValue};

const GID_WIDTH: usize = 4;
const LISTEN_PORT: u16 = 9400;
const ACK_LEN: usize = 8;
/// Any crossing not acked within this deadline counts as a timeout and
/// fails the run.
const RESPONSE_DEADLINE: Duration = Duration::from_secs(30);
/// New connections opened per client poll iteration (open-loop arrival
/// batch: arrivals never wait on responses).
const OPEN_BATCH: usize = 4_000;
/// Latency bucket grid in microseconds, dense enough for a meaningful
/// p999 at sim speeds.
const LATENCY_BOUNDS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    500_000, 1_000_000, 5_000_000,
];

struct Config {
    connections: usize,
    crossings: u32,
    taint_fraction: f64,
    payload: usize,
    gate_p99_us: Option<u64>,
    out: String,
    smoke: bool,
    scrape: bool,
    reshard: bool,
    reshard_gids: usize,
    wire: WireVersion,
}

/// Agent tick for the telemetry run: the ISSUE-mandated 10 Hz.
const AGENT_INTERVAL: Duration = Duration::from_millis(100);
/// In-simulation scraper cadence during the telemetry run.
const SCRAPE_EVERY: Duration = Duration::from_millis(150);
/// Telemetry must keep ≥95% of the baseline throughput.
const MIN_THROUGHPUT_RATIO: f64 = 0.95;

/// The stack codec for the selected wire protocol version.
fn codec_for(wire: WireVersion) -> Box<dyn WireCodec> {
    match wire {
        WireVersion::V1 => Box::new(V1Codec::new(GID_WIDTH)),
        WireVersion::V2 => Box::new(V2Codec::new(GID_WIDTH)),
    }
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let smoke = flag("--smoke");
    Config {
        connections: value("--connections")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 12_000 } else { 100_000 }),
        crossings: value("--crossings")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        taint_fraction: value("--taint-fraction")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5),
        payload: value("--payload")
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
        gate_p99_us: value("--gate-p99-us").and_then(|v| v.parse().ok()),
        out: value("--out").unwrap_or_else(|| "BENCH_cluster_load.json".to_string()),
        smoke,
        scrape: flag("--scrape"),
        reshard: flag("--reshard"),
        reshard_gids: value("--reshard-gids")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 20_000 } else { 100_000 }),
        wire: match value("--wire").as_deref() {
            Some("v2") => WireVersion::V2,
            Some("v1") | None => WireVersion::V1,
            Some(other) => panic!("unknown --wire value {other:?}; expected v1 or v2"),
        },
    }
}

/// Per-accepted-connection server state: a reassembly buffer for
/// length-prefixed frames plus the ack sequence counter.
struct ServerConn {
    ep: TcpEndpoint,
    buf: Vec<u8>,
    seq: u32,
}

/// Server poller: one thread, one reactor, every accepted connection a
/// token. Decodes each frame at the boundary and acks
/// `[decoded_data_len][tainted_bytes]`.
fn run_server(
    listener: TcpListener,
    expected_conns: usize,
    wire_version: WireVersion,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let codec = codec_for(wire_version);
        let reactor = Reactor::new();
        const LISTENER: Token = Token(0);
        listener.register_acceptable(&reactor, LISTENER);
        let mut conns: HashMap<u64, ServerConn> = HashMap::new();
        let mut next_token: u64 = 1;
        let mut accepted = 0usize;
        let mut closed = 0usize;
        let mut frames_decoded: u64 = 0;
        let mut events = Vec::new();
        let mut chunk = vec![0u8; 64 * 1024];
        let mut data = Vec::new();
        let mut runs: Vec<(GlobalId, usize)> = Vec::new();
        loop {
            if accepted >= expected_conns && closed >= accepted {
                break;
            }
            reactor.poll(&mut events, Some(Duration::from_millis(50)));
            for ev in events.drain(..) {
                if ev.token == LISTENER {
                    while let Some(ep) = listener.try_accept() {
                        let token = Token(next_token);
                        ep.register_readable(&reactor, token);
                        conns.insert(
                            next_token,
                            ServerConn {
                                ep,
                                buf: Vec::new(),
                                seq: 0,
                            },
                        );
                        next_token += 1;
                        accepted += 1;
                    }
                    continue;
                }
                let Some(conn) = conns.get_mut(&ev.token.0) else {
                    continue;
                };
                let mut eof = false;
                loop {
                    match conn.ep.try_read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                        Err(NetError::WouldBlock) => break,
                        Err(_) => {
                            eof = true;
                            break;
                        }
                    }
                }
                // Drain every complete [u32 len][wire] frame.
                let mut consumed = 0;
                while conn.buf.len() - consumed >= 4 {
                    let hdr = &conn.buf[consumed..consumed + 4];
                    let frame_len = u32::from_be_bytes(hdr.try_into().unwrap()) as usize;
                    if conn.buf.len() - consumed < 4 + frame_len {
                        break;
                    }
                    let wire = &conn.buf[consumed + 4..consumed + 4 + frame_len];
                    // The frame holds exactly one encoded payload, so a
                    // single pass must drain it (decoded data is never
                    // longer than its wire bytes in either protocol).
                    let used = codec
                        .decode_available(wire, wire.len().max(1), &mut data, &mut runs)
                        .expect("well-formed frame");
                    assert_eq!(used, wire.len(), "frame must decode in one pass");
                    let tainted: usize = runs
                        .iter()
                        .filter(|(gid, _)| *gid != GlobalId(0))
                        .map(|(_, len)| len)
                        .sum();
                    frames_decoded += 1;
                    conn.seq += 1;
                    let mut ack = [0u8; ACK_LEN];
                    ack[..4].copy_from_slice(&(data.len() as u32).to_be_bytes());
                    ack[4..].copy_from_slice(&(tainted as u32).to_be_bytes());
                    let _ = conn.ep.write(&ack);
                    consumed += 4 + frame_len;
                }
                conn.buf.drain(..consumed);
                if eof {
                    reactor.deregister(ev.token);
                    conns.remove(&ev.token.0);
                    closed += 1;
                }
            }
        }
        frames_decoded
    })
}

/// Per-connection client state machine.
struct ClientConn {
    ep: TcpEndpoint,
    crossings_left: u32,
    sent_at: Instant,
    deadline: TimerHandle,
    ack_buf: Vec<u8>,
    tainted: bool,
}

struct RunStats {
    completed_crossings: u64,
    timeouts: u64,
    mismatches: u64,
    peak_concurrent: usize,
    tainted_connections: usize,
    elapsed: Duration,
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    cluster: &Cluster,
    cfg: &Config,
    server_addr: NodeAddr,
    latency_us: &Histogram,
    tainted_frame: &[u8],
    clean_frame: &[u8],
) -> RunStats {
    let reactor = Reactor::new();
    let client_ip = cluster.vm(0).ip();
    let net = cluster.net();
    let mut conns: HashMap<u64, ClientConn> = HashMap::new();
    let mut opened = 0usize;
    let mut peak_concurrent = 0usize;
    let mut tainted_connections = 0usize;
    let mut completed_crossings: u64 = 0;
    let mut timeouts: u64 = 0;
    let mut mismatches: u64 = 0;
    let mut events = Vec::new();
    let mut chunk = vec![0u8; 4 * 1024];
    let started = Instant::now();
    // Deterministic taint assignment: connection i is tainted when its
    // index falls under the configured fraction of each 1000-slot band.
    let tainted_per_mille = (cfg.taint_fraction.clamp(0.0, 1.0) * 1000.0).round() as usize;

    // Phase 1 — establish every connection. Nothing can complete before
    // its first frame, so the full count is genuinely concurrent.
    while opened < cfg.connections {
        let ep = net
            .tcp_connect_from(client_ip, server_addr)
            .expect("connect");
        let token = Token(opened as u64 + 1);
        let tainted = (opened % 1000) < tainted_per_mille;
        if tainted {
            tainted_connections += 1;
        }
        ep.register_readable(&reactor, token);
        conns.insert(
            token.0,
            ClientConn {
                ep,
                crossings_left: cfg.crossings,
                sent_at: Instant::now(),
                deadline: reactor.set_timer(token, RESPONSE_DEADLINE),
                ack_buf: Vec::with_capacity(ACK_LEN),
                tainted,
            },
        );
        opened += 1;
    }
    peak_concurrent = peak_concurrent.max(conns.len());

    // Phase 2 — open-loop crossing kickoff: a batch of first frames per
    // iteration regardless of ack progress, acks processed as polled.
    let mut kickoff = 1u64;
    while !conns.is_empty() {
        let mut launched = 0;
        while launched < OPEN_BATCH && kickoff <= cfg.connections as u64 {
            if let Some(conn) = conns.get_mut(&kickoff) {
                let frame = if conn.tainted {
                    tainted_frame
                } else {
                    clean_frame
                };
                conn.ep.write(frame).expect("first crossing write");
                conn.sent_at = Instant::now();
                reactor.cancel_timer(conn.deadline);
                conn.deadline = reactor.set_timer(Token(kickoff), RESPONSE_DEADLINE);
            }
            kickoff += 1;
            launched += 1;
        }
        peak_concurrent = peak_concurrent.max(conns.len());

        reactor.poll(&mut events, Some(Duration::from_millis(50)));
        for ev in events.drain(..) {
            let Some(conn) = conns.get_mut(&ev.token.0) else {
                continue;
            };
            if ev.readiness.is_timer() {
                // Response deadline expired without an ack.
                timeouts += 1;
                reactor.deregister(ev.token);
                conn.ep.close();
                conns.remove(&ev.token.0);
                continue;
            }
            let mut dead = false;
            loop {
                match conn.ep.try_read(&mut chunk) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.ack_buf.extend_from_slice(&chunk[..n]),
                    Err(NetError::WouldBlock) => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            while conn.ack_buf.len() >= ACK_LEN {
                let data_len = u32::from_be_bytes(conn.ack_buf[..4].try_into().unwrap()) as usize;
                let tainted_bytes =
                    u32::from_be_bytes(conn.ack_buf[4..8].try_into().unwrap()) as usize;
                conn.ack_buf.drain(..ACK_LEN);
                reactor.cancel_timer(conn.deadline);
                latency_us.observe(conn.sent_at.elapsed().as_micros() as u64);
                completed_crossings += 1;
                let expect_tainted = if conn.tainted { cfg.payload } else { 0 };
                if data_len != cfg.payload || tainted_bytes != expect_tainted {
                    mismatches += 1;
                }
                conn.crossings_left -= 1;
                if conn.crossings_left == 0 {
                    dead = true;
                    break;
                }
                let frame = if conn.tainted {
                    tainted_frame
                } else {
                    clean_frame
                };
                conn.ep.write(frame).expect("crossing write");
                conn.sent_at = Instant::now();
                conn.deadline = reactor.set_timer(ev.token, RESPONSE_DEADLINE);
            }
            if dead {
                reactor.cancel_timer(conn.deadline);
                reactor.deregister(ev.token);
                conn.ep.close();
                conns.remove(&ev.token.0);
            }
        }
    }
    RunStats {
        completed_crossings,
        timeouts,
        mismatches,
        peak_concurrent,
        tainted_connections,
        elapsed: started.elapsed(),
    }
}

/// One full load run (cluster standup to shutdown).
struct RunOutcome {
    stats: RunStats,
    throughput: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    mean: f64,
    frames_decoded: u64,
    telemetry: Option<TelemetryOutcome>,
}

/// What the telemetry run observed beyond the load numbers.
struct TelemetryOutcome {
    scrapes: Vec<String>,
    monotone: bool,
    frames_ingested: u64,
    parse_errors: u64,
    collector_p99: u64,
    cost: ObsReport,
}

/// Index of the latency bucket `v` falls in (bounds grid + overflow).
fn bucket_index(v: u64) -> usize {
    LATENCY_BOUNDS_US
        .iter()
        .position(|b| *b >= v)
        .unwrap_or(LATENCY_BOUNDS_US.len())
}

/// One raw in-simulation text scrape: dial the collector, send the
/// `b'S'` role byte, read the length-prefixed exposition.
fn scrape_raw(net: &SimNet, addr: NodeAddr) -> Option<String> {
    let ep = net.tcp_connect(addr).ok()?;
    ep.write(b"S").ok()?;
    let mut len = [0u8; 4];
    ep.read_exact(&mut len).ok()?;
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    ep.read_exact(&mut payload).ok()?;
    ep.close();
    Some(String::from_utf8_lossy(&payload).into_owned())
}

/// The value of an unlabeled counter line in a text exposition.
fn counter_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
        .and_then(|v| v.trim().parse().ok())
}

/// A small boundary-path workload through real VM sockets, so the
/// phase counters (codec encode/decode, taint-tree ops, Taint Map
/// round-trips) have samples to attribute — the main load drives the
/// codec directly and never touches the VM boundary layer.
fn attribution_probe(cluster: &Cluster) {
    use dista_jre::{InputStream, OutputStream};
    use dista_taint::{Payload, TaintedBytes};

    let (tx_vm, rx_vm) = (cluster.vm(0), cluster.vm(1));
    let addr = NodeAddr::new(rx_vm.ip(), LISTEN_PORT + 1);
    let server = dista_jre::ServerSocket::bind(rx_vm, addr).expect("probe bind");
    let client = dista_jre::Socket::connect(tx_vm, addr).expect("probe connect");
    let conn = server.accept().expect("probe accept");
    let taint = tx_vm.taint_source(TagValue::str("probe"));
    for _ in 0..32 {
        client
            .output_stream()
            .write(&Payload::Tainted(TaintedBytes::uniform(
                b"probe-bytes",
                taint,
            )))
            .expect("probe write");
        conn.input_stream().read_exact(11).expect("probe read");
    }
}

/// Stands up a cluster, drives the full load through it, and tears it
/// down. With `telemetry` the cluster also runs the live plane (10 Hz
/// agents + collector) and an in-simulation scraper alongside the load.
fn run_load(cfg: &Config, telemetry: bool) -> RunOutcome {
    let mut builder = Cluster::builder(Mode::Dista)
        .nodes("load", 2)
        .wire_protocol(match cfg.wire {
            WireVersion::V1 => WireProtocol::V1,
            WireVersion::V2 => WireProtocol::V2,
        });
    if telemetry {
        builder = builder
            .observability(ObsConfig::default())
            .telemetry(TelemetryConfig {
                interval: AGENT_INTERVAL,
                ..TelemetryConfig::default()
            });
    }
    let cluster = builder.build().expect("cluster");
    let server_addr = NodeAddr::new(cluster.vm(1).ip(), LISTEN_PORT);
    let listener = cluster.net().tcp_listen(server_addr).expect("listen");

    // One tainted and one clean wire frame, reused verbatim by every
    // connection: the Global ID is minted once and registered in the
    // cluster's Taint Map, exactly as the boundary encoder would per
    // taint (registrations amortize; data bytes do not).
    let vm = cluster.vm(0);
    let taint = vm.store().mint_source_taint(TagValue::str("cluster-load"));
    let gid = vm
        .taint_map()
        .expect("dista mode has a taint map")
        .global_id_for(taint)
        .expect("gid registration");
    let payload: Vec<u8> = (0..cfg.payload).map(|i| (i % 251) as u8).collect();
    let codec = codec_for(cfg.wire);
    let frame_for = |gid_value: u32| {
        let runs = [(payload.len(), GlobalId(gid_value))];
        let mut wire = Vec::new();
        codec
            .encode_into(&payload, &runs, &mut wire)
            .expect("frame encode");
        let mut frame = Vec::with_capacity(4 + wire.len());
        frame.extend_from_slice(&(wire.len() as u32).to_be_bytes());
        frame.extend_from_slice(&wire);
        frame
    };
    let tainted_frame = frame_for(gid.0);
    let clean_frame = frame_for(0);

    // Node-labeled so the client VM's telemetry agent ships it: the
    // collector's cluster-merged quantiles must be comparable with this
    // harness-local histogram.
    let latency_us = cluster.net().registry().histogram_with(
        "cluster_load_latency_us",
        &[("node", "load1")],
        LATENCY_BOUNDS_US,
    );

    // In-simulation scraper riding alongside the load, like a
    // Prometheus server inside the cluster.
    let scraper_stop = Arc::new(AtomicBool::new(false));
    let scraper = cluster.telemetry().map(|plane| {
        let net = cluster.net().clone();
        let addr = plane.addr();
        let stop = scraper_stop.clone();
        std::thread::spawn(move || {
            let mut scrapes = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                if let Some(text) = scrape_raw(&net, addr) {
                    scrapes.push(text);
                }
                std::thread::sleep(SCRAPE_EVERY);
            }
            scrapes
        })
    });

    let server = run_server(listener, cfg.connections, cfg.wire);
    let stats = run_client(
        &cluster,
        cfg,
        server_addr,
        &latency_us,
        &tainted_frame,
        &clean_frame,
    );
    let frames_decoded = server.join().expect("server thread");

    let telemetry_parts = scraper.map(|handle| {
        attribution_probe(&cluster);
        scraper_stop.store(true, Ordering::Relaxed);
        let mut scrapes = handle.join().expect("scraper thread");
        // Two post-run scrapes so even an instant load yields enough
        // points for the monotone check.
        let plane = cluster.telemetry().expect("telemetry run");
        for _ in 0..2 {
            scrapes.push(plane.scrape_text().expect("post-run scrape"));
        }
        let monotone = [
            "dista_collector_frames_ingested_total",
            "dista_collector_scrapes_total",
        ]
        .iter()
        .all(|name| {
            scrapes
                .iter()
                .filter_map(|t| counter_value(t, name))
                .collect::<Vec<_>>()
                .windows(2)
                .all(|w| w[0] <= w[1])
        });
        (
            scrapes,
            monotone,
            cluster.cost_report(),
            plane.collector().clone(),
        )
    });
    // Shutdown flushes every agent's final delta into the collector, so
    // the merged histogram is read after it.
    cluster.shutdown();
    let telemetry = telemetry_parts.map(|(scrapes, monotone, cost, collector)| TelemetryOutcome {
        scrapes,
        monotone,
        frames_ingested: collector.frames_ingested(),
        parse_errors: collector.parse_errors(),
        collector_p99: collector
            .merged_histogram("cluster_load_latency_us")
            .map(|h| h.quantile(0.99))
            .unwrap_or(0),
        cost,
    });

    let elapsed_s = stats.elapsed.as_secs_f64().max(1e-9);
    let throughput = stats.completed_crossings as f64 / elapsed_s;
    let (p50, p99, p999) = (
        latency_us.quantile(0.50),
        latency_us.quantile(0.99),
        latency_us.quantile(0.999),
    );
    println!(
        "[telemetry {}] peak concurrent {}  crossings {}  decoded {}  elapsed {:.2}s",
        if telemetry.is_some() { "on" } else { "off" },
        stats.peak_concurrent,
        stats.completed_crossings,
        frames_decoded,
        elapsed_s
    );
    println!(
        "throughput {throughput:.0} crossings/s  latency p50 {p50} us  p99 {p99} us  p999 {p999} us"
    );
    RunOutcome {
        stats,
        throughput,
        p50,
        p99,
        p999,
        mean: latency_us.mean(),
        frames_decoded,
        telemetry,
    }
}

/// What the live-resharding phase measured.
struct ReshardOutcome {
    gids: usize,
    records_transferred: u64,
    splits_completed: u64,
    elapsed: Duration,
    throughput: f64,
    compacted_records: u64,
    sample_mismatches: u64,
}

/// Migration throughput: registers `--reshard-gids` distinct gids into
/// a 2-shard Taint Map, splits both residue classes while the data is
/// live, and measures records migrated per second. A post-cutover
/// sample verifies losslessness; a compaction pass bounds restart cost.
fn run_reshard(cfg: &Config) -> ReshardOutcome {
    let mut cluster = Cluster::builder(Mode::Dista)
        .nodes("shard", 2)
        .observability(ObsConfig::default())
        .taint_map_shards(2)
        .taint_map_snapshots(true)
        .build()
        .expect("reshard cluster");
    let vm = cluster.vm(0).clone();
    let client = vm.taint_map().expect("dista mode has a taint map");
    let mut gids = Vec::with_capacity(cfg.reshard_gids);
    let mut minted = 0i64;
    while gids.len() < cfg.reshard_gids {
        let take = 8_192.min(cfg.reshard_gids - gids.len());
        let taints: Vec<_> = (0..take)
            .map(|_| {
                minted += 1;
                vm.store().mint_source_taint(TagValue::Int(minted - 1))
            })
            .collect();
        gids.extend(client.global_ids_for(&taints).expect("registration"));
    }

    let started = Instant::now();
    cluster
        .reshard(&ReshardPlan::new().split(0).split(1).batch(1024))
        .expect("reshard");
    let elapsed = started.elapsed();
    let stats = cluster.taint_map().reshard_stats();

    // Sampled losslessness: every 97th gid resolves from the other VM
    // to exactly its registration through the post-cutover topology.
    let rx = cluster.vm(1);
    let rx_client = rx.taint_map().expect("taint map client");
    let mut sample_mismatches = 0;
    let idxs: Vec<usize> = (0..cfg.reshard_gids).step_by(97).collect();
    let sample: Vec<GlobalId> = idxs.iter().map(|&i| gids[i]).collect();
    let resolved = rx_client.taints_for(&sample).expect("post-cutover lookup");
    for (&taint, &i) in resolved.iter().zip(&idxs) {
        if rx.store().tag_values(taint) != vec![i.to_string()] {
            sample_mismatches += 1;
        }
    }

    let compacted_records = cluster.compact_taint_map().expect("compaction");
    cluster.shutdown();
    let throughput = stats.records_transferred as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "reshard: {} gids, {} records migrated in {:.3}s ({throughput:.0} records/s), {} compacted",
        cfg.reshard_gids,
        stats.records_transferred,
        elapsed.as_secs_f64(),
        compacted_records
    );
    ReshardOutcome {
        gids: cfg.reshard_gids,
        records_transferred: stats.records_transferred,
        splits_completed: stats.splits_completed,
        elapsed,
        throughput,
        compacted_records,
        sample_mismatches,
    }
}

/// Load-correctness gates for one run. Returns `true` on failure.
fn check_run(cfg: &Config, label: &str, run: &RunOutcome) -> bool {
    let mut failed = false;
    let min_concurrent = if cfg.smoke { 10_000 } else { 100_000 };
    if run.stats.peak_concurrent < min_concurrent.min(cfg.connections) {
        eprintln!(
            "FAIL [{label}]: peak concurrency {} below the {} floor",
            run.stats.peak_concurrent, min_concurrent
        );
        failed = true;
    }
    if run.stats.timeouts > 0 || run.stats.mismatches > 0 {
        eprintln!(
            "FAIL [{label}]: {} timeouts, {} ack mismatches",
            run.stats.timeouts, run.stats.mismatches
        );
        failed = true;
    }
    let expected = cfg.connections as u64 * cfg.crossings as u64;
    if run.stats.completed_crossings != expected || run.frames_decoded != expected {
        eprintln!(
            "FAIL [{label}]: completed {} / decoded {} crossings, expected {}",
            run.stats.completed_crossings, run.frames_decoded, expected
        );
        failed = true;
    }
    if run.throughput <= 0.0 {
        eprintln!("FAIL [{label}]: zero throughput");
        failed = true;
    }
    if let Some(bound) = cfg.gate_p99_us {
        if run.p99 > bound {
            eprintln!(
                "FAIL [{label}]: p99 {} us above the {bound} us bound",
                run.p99
            );
            failed = true;
        }
    }
    failed
}

fn main() {
    let cfg = parse_args();
    println!(
        "cluster_load: {} connections x {} crossings, taint fraction {}, payload {} B, wire {:?}{}{}",
        cfg.connections,
        cfg.crossings,
        cfg.taint_fraction,
        cfg.payload,
        cfg.wire,
        if cfg.smoke { " (smoke)" } else { "" },
        if cfg.scrape { " (scrape A/B)" } else { "" }
    );

    // Baseline run — telemetry off, the numbers tracked per PR.
    let base = run_load(&cfg, false);
    // Telemetry run — 10 Hz agents plus an in-simulation scraper. One
    // retry filters scheduler noise out of the throughput comparison.
    let tele = cfg.scrape.then(|| {
        let first = run_load(&cfg, true);
        if first.throughput < MIN_THROUGHPUT_RATIO * base.throughput {
            println!("telemetry run below ratio bound; retrying once");
            let retry = run_load(&cfg, true);
            if retry.throughput > first.throughput {
                return retry;
            }
        }
        first
    });

    let reshard = cfg.reshard.then(|| run_reshard(&cfg));

    let mut failed = check_run(&cfg, "baseline", &base);
    if let Some(r) = &reshard {
        // Both tail halves migrate: at least ~gids/4 records per class
        // pair, and not a single sampled resolution may be wrong.
        if r.splits_completed != 2 || (r.records_transferred as usize) < r.gids / 4 {
            eprintln!(
                "FAIL [reshard]: {} splits moved only {} of {} records",
                r.splits_completed, r.records_transferred, r.gids
            );
            failed = true;
        }
        if r.sample_mismatches > 0 {
            eprintln!(
                "FAIL [reshard]: {} sampled gids resolved wrongly after cutover",
                r.sample_mismatches
            );
            failed = true;
        }
        if (r.compacted_records as usize) < r.gids {
            eprintln!(
                "FAIL [reshard]: compaction folded {} records, below the {} live gids",
                r.compacted_records, r.gids
            );
            failed = true;
        }
    }

    // Hand-rolled JSON (the vendored serde is a stub); the original key
    // set is stable for cross-PR tracking, new telemetry keys append
    // strictly after it.
    let mut json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"{}\",\n",
            "  \"wire_protocol\": \"{}\",\n",
            "  \"smoke\": {},\n",
            "  \"connections\": {},\n",
            "  \"peak_concurrent\": {},\n",
            "  \"crossings_per_connection\": {},\n",
            "  \"taint_fraction\": {},\n",
            "  \"tainted_connections\": {},\n",
            "  \"payload_bytes\": {},\n",
            "  \"completed_crossings\": {},\n",
            "  \"timeouts\": {},\n",
            "  \"mismatches\": {},\n",
            "  \"elapsed_seconds\": {:.3},\n",
            "  \"throughput_crossings_per_sec\": {:.1},\n",
            "  \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {}, \"mean\": {:.1} }}"
        ),
        "cluster_load",
        match cfg.wire {
            WireVersion::V1 => "v1",
            WireVersion::V2 => "v2",
        },
        cfg.smoke,
        cfg.connections,
        base.stats.peak_concurrent,
        cfg.crossings,
        cfg.taint_fraction,
        base.stats.tainted_connections,
        cfg.payload,
        base.stats.completed_crossings,
        base.stats.timeouts,
        base.stats.mismatches,
        base.stats.elapsed.as_secs_f64(),
        base.throughput,
        base.p50,
        base.p99,
        base.p999,
        base.mean,
    );

    if let Some(run) = &tele {
        failed |= check_run(&cfg, "telemetry", run);
        let obs = run.telemetry.as_ref().expect("telemetry run outcome");
        let ratio = run.throughput / base.throughput.max(1e-9);
        let bucket_distance = bucket_index(obs.collector_p99).abs_diff(bucket_index(run.p99));

        println!("{}", obs.cost.render());
        println!(
            "telemetry overhead: baseline {:.0} vs telemetry {:.0} crossings/s (ratio {ratio:.3})",
            base.throughput, run.throughput
        );
        println!(
            "scrapes {} (monotone {})  frames ingested {}  collector p99 {} us vs local {} us",
            obs.scrapes.len(),
            obs.monotone,
            obs.frames_ingested,
            obs.collector_p99,
            run.p99
        );

        if ratio < MIN_THROUGHPUT_RATIO {
            eprintln!("FAIL: telemetry throughput ratio {ratio:.3} below {MIN_THROUGHPUT_RATIO}");
            failed = true;
        }
        if obs.scrapes.len() < 2 || obs.scrapes.iter().any(String::is_empty) {
            eprintln!(
                "FAIL: expected >=2 non-empty scrapes, got {}",
                obs.scrapes.len()
            );
            failed = true;
        }
        if !obs.monotone {
            eprintln!("FAIL: collector counters regressed across scrapes");
            failed = true;
        }
        if obs.parse_errors > 0 || obs.frames_ingested == 0 {
            eprintln!(
                "FAIL: collector ingested {} frames with {} parse errors",
                obs.frames_ingested, obs.parse_errors
            );
            failed = true;
        }
        if bucket_distance > 1 {
            eprintln!(
                "FAIL: collector p99 {} us vs local {} us differ by {} buckets",
                obs.collector_p99, run.p99, bucket_distance
            );
            failed = true;
        }

        json.push_str(&format!(
            concat!(
                ",\n  \"telemetry\": {{\n",
                "    \"agent_interval_ms\": {},\n",
                "    \"baseline_throughput\": {:.1},\n",
                "    \"telemetry_throughput\": {:.1},\n",
                "    \"throughput_ratio\": {:.4},\n",
                "    \"scrapes\": {},\n",
                "    \"scrape_counters_monotone\": {},\n",
                "    \"frames_ingested\": {},\n",
                "    \"parse_errors\": {},\n",
                "    \"collector_p99_us\": {},\n",
                "    \"local_p99_us\": {},\n",
                "    \"p99_bucket_distance\": {}\n",
                "  }}",
            ),
            AGENT_INTERVAL.as_millis(),
            base.throughput,
            run.throughput,
            ratio,
            obs.scrapes.len(),
            obs.monotone,
            obs.frames_ingested,
            obs.parse_errors,
            obs.collector_p99,
            run.p99,
            bucket_distance,
        ));
        json.push_str(&format!(
            ",\n  \"cost_attribution\": {}",
            obs.cost.to_json()
        ));
    }
    if let Some(r) = &reshard {
        json.push_str(&format!(
            concat!(
                ",\n  \"reshard\": {{\n",
                "    \"gids\": {},\n",
                "    \"splits_completed\": {},\n",
                "    \"records_transferred\": {},\n",
                "    \"elapsed_seconds\": {:.3},\n",
                "    \"migration_records_per_sec\": {:.1},\n",
                "    \"compacted_records\": {},\n",
                "    \"sample_mismatches\": {}\n",
                "  }}",
            ),
            r.gids,
            r.splits_completed,
            r.records_transferred,
            r.elapsed.as_secs_f64(),
            r.throughput,
            r.compacted_records,
            r.sample_mismatches,
        ));
    }
    json.push_str("\n}\n");

    let mut f = std::fs::File::create(&cfg.out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {}", cfg.out);

    if failed {
        std::process::exit(1);
    }
    println!("OK");
}

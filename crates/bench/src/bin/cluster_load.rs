//! Open-loop cluster load harness: drives ≥100k concurrent tainted
//! connections through the simulated cluster on the event-driven
//! [`dista_simnet::Reactor`], recording throughput and p50/p99/p999
//! latency into `dista-obs` histograms and writing the result as
//! `BENCH_cluster_load.json` so the perf trajectory is tracked per PR.
//!
//! Each connection performs `--crossings` boundary crossings: the client
//! encodes its payload into the DisTA interleaved wire format (width 4,
//! Global IDs registered in the cluster's Taint Map for the tainted
//! fraction), ships it as a length-prefixed frame, and the server
//! decodes the frame at the boundary and acks with the decoded byte and
//! tainted-byte counts. Latency is the client-observed crossing round
//! trip. A per-connection response deadline rides the reactor's timer
//! wheel, so the wheel itself is exercised at full connection count —
//! the workload shape the per-connection `BLOCK_TIMEOUT` parking model
//! could never reach.
//!
//! Flags: `--connections N`, `--crossings N`, `--taint-fraction F`,
//! `--payload BYTES`, `--wire v1|v2` (which `WireCodec` frames the
//! crossings; default v1), `--smoke` (12k connections, CI-sized),
//! `--gate-p99-us N` (exit non-zero if p99 exceeds the bound),
//! `--out PATH`.

use std::collections::HashMap;
use std::io::Write as _;
use std::time::{Duration, Instant};

use dista_core::{Cluster, Mode};
use dista_jre::{V1Codec, V2Codec, WireCodec, WireVersion};
use dista_obs::Histogram;
use dista_simnet::{NetError, NodeAddr, Reactor, TcpEndpoint, TcpListener, TimerHandle, Token};
use dista_taint::{GlobalId, TagValue};

const GID_WIDTH: usize = 4;
const LISTEN_PORT: u16 = 9400;
const ACK_LEN: usize = 8;
/// Any crossing not acked within this deadline counts as a timeout and
/// fails the run.
const RESPONSE_DEADLINE: Duration = Duration::from_secs(30);
/// New connections opened per client poll iteration (open-loop arrival
/// batch: arrivals never wait on responses).
const OPEN_BATCH: usize = 4_000;
/// Latency bucket grid in microseconds, dense enough for a meaningful
/// p999 at sim speeds.
const LATENCY_BOUNDS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    500_000, 1_000_000, 5_000_000,
];

struct Config {
    connections: usize,
    crossings: u32,
    taint_fraction: f64,
    payload: usize,
    gate_p99_us: Option<u64>,
    out: String,
    smoke: bool,
    wire: WireVersion,
}

/// The stack codec for the selected wire protocol version.
fn codec_for(wire: WireVersion) -> Box<dyn WireCodec> {
    match wire {
        WireVersion::V1 => Box::new(V1Codec::new(GID_WIDTH)),
        WireVersion::V2 => Box::new(V2Codec::new(GID_WIDTH)),
    }
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let smoke = flag("--smoke");
    Config {
        connections: value("--connections")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 12_000 } else { 100_000 }),
        crossings: value("--crossings")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        taint_fraction: value("--taint-fraction")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5),
        payload: value("--payload")
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
        gate_p99_us: value("--gate-p99-us").and_then(|v| v.parse().ok()),
        out: value("--out").unwrap_or_else(|| "BENCH_cluster_load.json".to_string()),
        smoke,
        wire: match value("--wire").as_deref() {
            Some("v2") => WireVersion::V2,
            Some("v1") | None => WireVersion::V1,
            Some(other) => panic!("unknown --wire value {other:?}; expected v1 or v2"),
        },
    }
}

/// Per-accepted-connection server state: a reassembly buffer for
/// length-prefixed frames plus the ack sequence counter.
struct ServerConn {
    ep: TcpEndpoint,
    buf: Vec<u8>,
    seq: u32,
}

/// Server poller: one thread, one reactor, every accepted connection a
/// token. Decodes each frame at the boundary and acks
/// `[decoded_data_len][tainted_bytes]`.
fn run_server(
    listener: TcpListener,
    expected_conns: usize,
    wire_version: WireVersion,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let codec = codec_for(wire_version);
        let reactor = Reactor::new();
        const LISTENER: Token = Token(0);
        listener.register_acceptable(&reactor, LISTENER);
        let mut conns: HashMap<u64, ServerConn> = HashMap::new();
        let mut next_token: u64 = 1;
        let mut accepted = 0usize;
        let mut closed = 0usize;
        let mut frames_decoded: u64 = 0;
        let mut events = Vec::new();
        let mut chunk = vec![0u8; 64 * 1024];
        let mut data = Vec::new();
        let mut runs: Vec<(GlobalId, usize)> = Vec::new();
        loop {
            if accepted >= expected_conns && closed >= accepted {
                break;
            }
            reactor.poll(&mut events, Some(Duration::from_millis(50)));
            for ev in events.drain(..) {
                if ev.token == LISTENER {
                    while let Some(ep) = listener.try_accept() {
                        let token = Token(next_token);
                        ep.register_readable(&reactor, token);
                        conns.insert(
                            next_token,
                            ServerConn {
                                ep,
                                buf: Vec::new(),
                                seq: 0,
                            },
                        );
                        next_token += 1;
                        accepted += 1;
                    }
                    continue;
                }
                let Some(conn) = conns.get_mut(&ev.token.0) else {
                    continue;
                };
                let mut eof = false;
                loop {
                    match conn.ep.try_read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                        Err(NetError::WouldBlock) => break,
                        Err(_) => {
                            eof = true;
                            break;
                        }
                    }
                }
                // Drain every complete [u32 len][wire] frame.
                let mut consumed = 0;
                while conn.buf.len() - consumed >= 4 {
                    let hdr = &conn.buf[consumed..consumed + 4];
                    let frame_len = u32::from_be_bytes(hdr.try_into().unwrap()) as usize;
                    if conn.buf.len() - consumed < 4 + frame_len {
                        break;
                    }
                    let wire = &conn.buf[consumed + 4..consumed + 4 + frame_len];
                    // The frame holds exactly one encoded payload, so a
                    // single pass must drain it (decoded data is never
                    // longer than its wire bytes in either protocol).
                    let used = codec
                        .decode_available(wire, wire.len().max(1), &mut data, &mut runs)
                        .expect("well-formed frame");
                    assert_eq!(used, wire.len(), "frame must decode in one pass");
                    let tainted: usize = runs
                        .iter()
                        .filter(|(gid, _)| *gid != GlobalId(0))
                        .map(|(_, len)| len)
                        .sum();
                    frames_decoded += 1;
                    conn.seq += 1;
                    let mut ack = [0u8; ACK_LEN];
                    ack[..4].copy_from_slice(&(data.len() as u32).to_be_bytes());
                    ack[4..].copy_from_slice(&(tainted as u32).to_be_bytes());
                    let _ = conn.ep.write(&ack);
                    consumed += 4 + frame_len;
                }
                conn.buf.drain(..consumed);
                if eof {
                    reactor.deregister(ev.token);
                    conns.remove(&ev.token.0);
                    closed += 1;
                }
            }
        }
        frames_decoded
    })
}

/// Per-connection client state machine.
struct ClientConn {
    ep: TcpEndpoint,
    crossings_left: u32,
    sent_at: Instant,
    deadline: TimerHandle,
    ack_buf: Vec<u8>,
    tainted: bool,
}

struct RunStats {
    completed_crossings: u64,
    timeouts: u64,
    mismatches: u64,
    peak_concurrent: usize,
    tainted_connections: usize,
    elapsed: Duration,
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    cluster: &Cluster,
    cfg: &Config,
    server_addr: NodeAddr,
    latency_us: &Histogram,
    tainted_frame: &[u8],
    clean_frame: &[u8],
) -> RunStats {
    let reactor = Reactor::new();
    let client_ip = cluster.vm(0).ip();
    let net = cluster.net();
    let mut conns: HashMap<u64, ClientConn> = HashMap::new();
    let mut opened = 0usize;
    let mut peak_concurrent = 0usize;
    let mut tainted_connections = 0usize;
    let mut completed_crossings: u64 = 0;
    let mut timeouts: u64 = 0;
    let mut mismatches: u64 = 0;
    let mut events = Vec::new();
    let mut chunk = vec![0u8; 4 * 1024];
    let started = Instant::now();
    // Deterministic taint assignment: connection i is tainted when its
    // index falls under the configured fraction of each 1000-slot band.
    let tainted_per_mille = (cfg.taint_fraction.clamp(0.0, 1.0) * 1000.0).round() as usize;

    // Phase 1 — establish every connection. Nothing can complete before
    // its first frame, so the full count is genuinely concurrent.
    while opened < cfg.connections {
        let ep = net
            .tcp_connect_from(client_ip, server_addr)
            .expect("connect");
        let token = Token(opened as u64 + 1);
        let tainted = (opened % 1000) < tainted_per_mille;
        if tainted {
            tainted_connections += 1;
        }
        ep.register_readable(&reactor, token);
        conns.insert(
            token.0,
            ClientConn {
                ep,
                crossings_left: cfg.crossings,
                sent_at: Instant::now(),
                deadline: reactor.set_timer(token, RESPONSE_DEADLINE),
                ack_buf: Vec::with_capacity(ACK_LEN),
                tainted,
            },
        );
        opened += 1;
    }
    peak_concurrent = peak_concurrent.max(conns.len());

    // Phase 2 — open-loop crossing kickoff: a batch of first frames per
    // iteration regardless of ack progress, acks processed as polled.
    let mut kickoff = 1u64;
    while !conns.is_empty() {
        let mut launched = 0;
        while launched < OPEN_BATCH && kickoff <= cfg.connections as u64 {
            if let Some(conn) = conns.get_mut(&kickoff) {
                let frame = if conn.tainted {
                    tainted_frame
                } else {
                    clean_frame
                };
                conn.ep.write(frame).expect("first crossing write");
                conn.sent_at = Instant::now();
                reactor.cancel_timer(conn.deadline);
                conn.deadline = reactor.set_timer(Token(kickoff), RESPONSE_DEADLINE);
            }
            kickoff += 1;
            launched += 1;
        }
        peak_concurrent = peak_concurrent.max(conns.len());

        reactor.poll(&mut events, Some(Duration::from_millis(50)));
        for ev in events.drain(..) {
            let Some(conn) = conns.get_mut(&ev.token.0) else {
                continue;
            };
            if ev.readiness.is_timer() {
                // Response deadline expired without an ack.
                timeouts += 1;
                reactor.deregister(ev.token);
                conn.ep.close();
                conns.remove(&ev.token.0);
                continue;
            }
            let mut dead = false;
            loop {
                match conn.ep.try_read(&mut chunk) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.ack_buf.extend_from_slice(&chunk[..n]),
                    Err(NetError::WouldBlock) => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            while conn.ack_buf.len() >= ACK_LEN {
                let data_len = u32::from_be_bytes(conn.ack_buf[..4].try_into().unwrap()) as usize;
                let tainted_bytes =
                    u32::from_be_bytes(conn.ack_buf[4..8].try_into().unwrap()) as usize;
                conn.ack_buf.drain(..ACK_LEN);
                reactor.cancel_timer(conn.deadline);
                latency_us.observe(conn.sent_at.elapsed().as_micros() as u64);
                completed_crossings += 1;
                let expect_tainted = if conn.tainted { cfg.payload } else { 0 };
                if data_len != cfg.payload || tainted_bytes != expect_tainted {
                    mismatches += 1;
                }
                conn.crossings_left -= 1;
                if conn.crossings_left == 0 {
                    dead = true;
                    break;
                }
                let frame = if conn.tainted {
                    tainted_frame
                } else {
                    clean_frame
                };
                conn.ep.write(frame).expect("crossing write");
                conn.sent_at = Instant::now();
                conn.deadline = reactor.set_timer(ev.token, RESPONSE_DEADLINE);
            }
            if dead {
                reactor.cancel_timer(conn.deadline);
                reactor.deregister(ev.token);
                conn.ep.close();
                conns.remove(&ev.token.0);
            }
        }
    }
    RunStats {
        completed_crossings,
        timeouts,
        mismatches,
        peak_concurrent,
        tainted_connections,
        elapsed: started.elapsed(),
    }
}

fn main() {
    let cfg = parse_args();
    println!(
        "cluster_load: {} connections x {} crossings, taint fraction {}, payload {} B, wire {:?}{}",
        cfg.connections,
        cfg.crossings,
        cfg.taint_fraction,
        cfg.payload,
        cfg.wire,
        if cfg.smoke { " (smoke)" } else { "" }
    );

    let cluster = Cluster::builder(Mode::Dista)
        .nodes("load", 2)
        .build()
        .expect("cluster");
    let server_addr = NodeAddr::new(cluster.vm(1).ip(), LISTEN_PORT);
    let listener = cluster.net().tcp_listen(server_addr).expect("listen");

    // One tainted and one clean wire frame, reused verbatim by every
    // connection: the Global ID is minted once and registered in the
    // cluster's Taint Map, exactly as the boundary encoder would per
    // taint (registrations amortize; data bytes do not).
    let vm = cluster.vm(0);
    let taint = vm.store().mint_source_taint(TagValue::str("cluster-load"));
    let gid = vm
        .taint_map()
        .expect("dista mode has a taint map")
        .global_id_for(taint)
        .expect("gid registration");
    let payload: Vec<u8> = (0..cfg.payload).map(|i| (i % 251) as u8).collect();
    let codec = codec_for(cfg.wire);
    let frame_for = |gid_value: u32| {
        let runs = [(payload.len(), GlobalId(gid_value))];
        let mut wire = Vec::new();
        codec
            .encode_into(&payload, &runs, &mut wire)
            .expect("frame encode");
        let mut frame = Vec::with_capacity(4 + wire.len());
        frame.extend_from_slice(&(wire.len() as u32).to_be_bytes());
        frame.extend_from_slice(&wire);
        frame
    };
    let tainted_frame = frame_for(gid.0);
    let clean_frame = frame_for(0);

    let latency_us = cluster
        .net()
        .registry()
        .histogram("cluster_load_latency_us", LATENCY_BOUNDS_US);
    let server = run_server(listener, cfg.connections, cfg.wire);
    let stats = run_client(
        &cluster,
        &cfg,
        server_addr,
        &latency_us,
        &tainted_frame,
        &clean_frame,
    );
    let frames_decoded = server.join().expect("server thread");

    let elapsed_s = stats.elapsed.as_secs_f64().max(1e-9);
    let throughput = stats.completed_crossings as f64 / elapsed_s;
    let (p50, p99, p999) = (
        latency_us.quantile(0.50),
        latency_us.quantile(0.99),
        latency_us.quantile(0.999),
    );
    println!(
        "peak concurrent {}  crossings {}  decoded {}  elapsed {:.2}s",
        stats.peak_concurrent, stats.completed_crossings, frames_decoded, elapsed_s
    );
    println!(
        "throughput {throughput:.0} crossings/s  latency p50 {p50} us  p99 {p99} us  p999 {p999} us"
    );

    // Hand-rolled JSON (the vendored serde is a stub); all keys plain.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"{}\",\n",
            "  \"wire_protocol\": \"{}\",\n",
            "  \"smoke\": {},\n",
            "  \"connections\": {},\n",
            "  \"peak_concurrent\": {},\n",
            "  \"crossings_per_connection\": {},\n",
            "  \"taint_fraction\": {},\n",
            "  \"tainted_connections\": {},\n",
            "  \"payload_bytes\": {},\n",
            "  \"completed_crossings\": {},\n",
            "  \"timeouts\": {},\n",
            "  \"mismatches\": {},\n",
            "  \"elapsed_seconds\": {:.3},\n",
            "  \"throughput_crossings_per_sec\": {:.1},\n",
            "  \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {}, \"mean\": {:.1} }}\n",
            "}}\n"
        ),
        "cluster_load",
        match cfg.wire {
            WireVersion::V1 => "v1",
            WireVersion::V2 => "v2",
        },
        cfg.smoke,
        cfg.connections,
        stats.peak_concurrent,
        cfg.crossings,
        cfg.taint_fraction,
        stats.tainted_connections,
        cfg.payload,
        stats.completed_crossings,
        stats.timeouts,
        stats.mismatches,
        elapsed_s,
        throughput,
        p50,
        p99,
        p999,
        latency_us.mean(),
    );
    let mut f = std::fs::File::create(&cfg.out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {}", cfg.out);
    cluster.shutdown();

    // Gates.
    let min_concurrent = if cfg.smoke { 10_000 } else { 100_000 };
    let mut failed = false;
    if stats.peak_concurrent < min_concurrent.min(cfg.connections) {
        eprintln!(
            "FAIL: peak concurrency {} below the {} floor",
            stats.peak_concurrent, min_concurrent
        );
        failed = true;
    }
    if stats.timeouts > 0 || stats.mismatches > 0 {
        eprintln!(
            "FAIL: {} timeouts, {} ack mismatches",
            stats.timeouts, stats.mismatches
        );
        failed = true;
    }
    let expected = cfg.connections as u64 * cfg.crossings as u64;
    if stats.completed_crossings != expected || frames_decoded != expected {
        eprintln!(
            "FAIL: completed {} / decoded {} crossings, expected {}",
            stats.completed_crossings, frames_decoded, expected
        );
        failed = true;
    }
    if throughput <= 0.0 {
        eprintln!("FAIL: zero throughput");
        failed = true;
    }
    if let Some(bound) = cfg.gate_p99_us {
        if p99 > bound {
            eprintln!("FAIL: p99 {p99} us above the {bound} us bound");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK");
}

//! # dista-bench — the experiment harness
//!
//! One target per table/claim of the paper's evaluation (see the
//! experiment index in `DESIGN.md`):
//!
//! | target | artifact |
//! |---|---|
//! | `bin/table1_methods` | Table I — instrumented method inventory |
//! | `bin/table2_micro_soundness` | Table II — RQ1 over the 30 cases |
//! | `bin/table3_systems` | Table III — systems/protocols/workloads |
//! | `bin/table4_scenarios` | Table IV — SDT/SIM sources & sinks |
//! | `bench/table5_micro` + `bin/table5_overhead` | Table V — micro overhead |
//! | `bin/table6_systems_overhead` | Table VI — real-system overhead |
//! | `bin/claim_net_overhead` | §V-F ≈5× network bytes |
//! | `bin/claim_global_taints` | §V-F global-taint census & scaling |
//! | `bin/table_usability` | §V-E launch-script LOC |
//! | `bench/taint_tree`, `bench/wire_format`, `bench/gid_width`, `bench/taintmap_throughput` | design ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod systems;
pub mod table;

pub use dista_jre::Mode;
pub use systems::{run_system, run_system_with, Scenario, SystemId, SystemRun};

/// The simulated link cost used by the overhead experiments, in
/// nanoseconds per byte (`DISTA_WIRE_NS`, default 8 ≈ 1 Gbit/s).
///
/// The paper's testbed moves real bytes through real NICs, so its wire
/// expansion costs wall-clock time; the simulator needs an explicit link
/// model for the same effect. Correctness tests run with a free link
/// (0 ns/B) — only the overhead experiments charge for bandwidth.
pub fn wire_ns_per_byte() -> u64 {
    std::env::var("DISTA_WIRE_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// The link-model fault config used by the overhead experiments.
pub fn bench_link_model() -> dista_simnet::FaultConfig {
    dista_simnet::FaultConfig {
        wire_ns_per_byte: wire_ns_per_byte(),
        ..Default::default()
    }
}

//! The five real-world system workloads of Table III, runnable in any
//! mode and scenario for the Table VI overhead experiment.

use std::time::{Duration, Instant};

use dista_core::{Cluster, DistaError, Mode};
use dista_jre::{FileInputStream, JreError, Vm, FILE_INPUT_STREAM_CLASS, LOGGER_CLASS};
use dista_simnet::NodeAddr;
use dista_taint::{MethodDesc, SourceSinkSpec, TagValue, TaintedBytes};

/// Reads a workload payload from the node's disk through the (possibly
/// instrumented) file API — the SIM scenarios' source point fires once
/// per read, so payload-heavy workloads mint the "relatively large and
/// indeterminate" taint population the paper describes.
fn read_data_file(vm: &Vm, path: &str) -> Result<TaintedBytes, JreError> {
    Ok(FileInputStream::open(vm, path)?.read()?.into_tainted())
}

/// Which Table III system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemId {
    /// Leader election (3 nodes).
    ZooKeeper,
    /// Pi job (RM + NM + client).
    MapReduce,
    /// Long-text message distribution (broker + producer + consumer).
    ActiveMq,
    /// Long-text message distribution (nameserver + broker + clients).
    RocketMq,
    /// Get from a table (master + 2 RS + ZK + client) — cross-system.
    HBase,
}

impl SystemId {
    /// All five systems, Table III order.
    pub const ALL: [SystemId; 5] = [
        SystemId::ZooKeeper,
        SystemId::MapReduce,
        SystemId::ActiveMq,
        SystemId::RocketMq,
        SystemId::HBase,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SystemId::ZooKeeper => "ZooKeeper",
            SystemId::MapReduce => "MapReduce/Yarn",
            SystemId::ActiveMq => "ActiveMQ",
            SystemId::RocketMq => "RocketMQ",
            SystemId::HBase => "HBase+ZooKeeper",
        }
    }

    /// The paper's workload description (Table III).
    pub fn workload(self) -> &'static str {
        match self {
            SystemId::ZooKeeper => "Leader election",
            SystemId::MapReduce => "Calculate the value of Pi",
            SystemId::ActiveMq | SystemId::RocketMq => "Long text message distribution",
            SystemId::HBase => "Get data from a table",
        }
    }

    /// Protocols exercised (Table III).
    pub fn protocols(self) -> &'static str {
        match self {
            SystemId::ZooKeeper => "JRE TCP, Netty",
            SystemId::MapReduce => "JRE NIO, Yarn RPC",
            SystemId::ActiveMq => "TCP, UDP, NIO, HTTP(S)",
            SystemId::RocketMq => "TCP (Netty), HTTP",
            SystemId::HBase => "JRE NIO, protobuf RPC",
        }
    }
}

/// The taint-tracking scenario of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No sources/sinks registered (the "Original"-style run).
    None,
    /// Specific data trace.
    Sdt,
    /// System input/output monitor.
    Sim,
}

/// Outcome of one system workload run.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// System that ran.
    pub system: SystemId,
    /// Mode it ran in.
    pub mode: Mode,
    /// Scenario used.
    pub scenario: Scenario,
    /// Wall-clock workload duration.
    pub duration: Duration,
    /// Distinct global taints registered in the Taint Map.
    pub global_taints: u64,
    /// Sink events that observed tainted data (across all nodes).
    pub tainted_sinks: usize,
}

fn sim_spec() -> SourceSinkSpec {
    let mut spec = SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
        .add_sink(MethodDesc::new(LOGGER_CLASS, "info"));
    spec
}

fn spec_for(system: SystemId, scenario: Scenario) -> SourceSinkSpec {
    match scenario {
        Scenario::None => SourceSinkSpec::new(),
        Scenario::Sim => sim_spec(),
        Scenario::Sdt => {
            let mut spec = SourceSinkSpec::new();
            match system {
                SystemId::ZooKeeper => {
                    spec.add_source(MethodDesc::new(dista_zookeeper::FLE_CLASS, "getVote"))
                        .add_sink(MethodDesc::new(dista_zookeeper::FLE_CLASS, "checkLeader"));
                }
                SystemId::MapReduce => {
                    spec.add_source(MethodDesc::new(
                        dista_mapreduce::YARN_CLIENT_CLASS,
                        "createApplication",
                    ))
                    .add_sink(MethodDesc::new(
                        dista_mapreduce::YARN_CLIENT_CLASS,
                        "getApplicationReport",
                    ));
                }
                SystemId::ActiveMq => {
                    spec.add_source(MethodDesc::new(
                        dista_activemq::PRODUCER_CLASS,
                        "createTextMessage",
                    ))
                    .add_sink(MethodDesc::new(dista_activemq::CONSUMER_CLASS, "receive"));
                }
                SystemId::RocketMq => {
                    spec.add_source(MethodDesc::new(
                        dista_rocketmq::PRODUCER_CLASS,
                        "createMessage",
                    ))
                    .add_sink(MethodDesc::new(
                        dista_rocketmq::CONSUMER_CLASS,
                        "consumeMessage",
                    ));
                }
                SystemId::HBase => {
                    spec.add_source(MethodDesc::new(dista_hbase::HTABLE_CLASS, "tableName"))
                        .add_sink(MethodDesc::new(dista_hbase::HTABLE_CLASS, "getResult"));
                }
            }
            spec
        }
    }
}

fn cluster_for(system: SystemId, mode: Mode, scenario: Scenario) -> Result<Cluster, DistaError> {
    let nodes = match system {
        SystemId::ZooKeeper | SystemId::ActiveMq | SystemId::RocketMq | SystemId::MapReduce => 3,
        SystemId::HBase => 4,
    };
    Cluster::builder(mode)
        .nodes("node", nodes)
        .spec(spec_for(system, scenario))
        .build()
}

fn run_zookeeper(cluster: &Cluster) -> Result<(), JreError> {
    use dista_zookeeper::{ZkClient, ZkEnsemble, ZkEnsembleConfig};
    let ensemble = ZkEnsemble::start(
        cluster.vms(),
        ZkEnsembleConfig {
            txn_logs: vec![vec![10, 20, 30], vec![10, 20], vec![10]],
            ..Default::default()
        },
    )?;
    // A client session after the election, like a freshly-served
    // ensemble taking traffic; znode payloads are loaded from data files
    // (each read is a SIM source point).
    let client_vm = cluster.vm(2);
    let blob = "znode-payload ".repeat(100);
    for i in 0..40 {
        client_vm
            .fs()
            .write(format!("data/znode-{i}"), blob.clone().into_bytes());
    }
    let client = ZkClient::connect(client_vm, ensemble.any_client_addr())
        .map_err(|_| JreError::Protocol("zk client failed"))?;
    for i in 0..40 {
        let payload = read_data_file(client_vm, &format!("data/znode-{i}"))?;
        client
            .create(&format!("/node-{i}"), payload)
            .map_err(|_| JreError::Protocol("zk create failed"))?;
    }
    for i in 0..40 {
        client
            .get(&format!("/node-{i}"))
            .map_err(|_| JreError::Protocol("zk get failed"))?;
    }
    client.close();
    ensemble.shutdown();
    Ok(())
}

fn run_mapreduce(cluster: &Cluster) -> Result<(), JreError> {
    cluster
        .vm(1)
        .fs()
        .write("etc/hadoop/yarn-site.xml", b"hostname=worker-1".to_vec());
    cluster.vm(1).fs().write(
        "container/stdout.template",
        b"yarn container stdout\n".repeat(32),
    );
    let result = dista_mapreduce::run_pi_job(cluster.vms(), 8, 15_000)?;
    if (result.pi - std::f64::consts::PI).abs() > 0.2 {
        return Err(JreError::Protocol("pi estimate out of range"));
    }
    Ok(())
}

/// Number of long-text messages each MQ workload distributes.
const MQ_MESSAGES: usize = 30;

fn run_activemq(cluster: &Cluster) -> Result<(), JreError> {
    use dista_activemq::{seed_config, Broker, Consumer, Producer, PRODUCER_CLASS};
    seed_config(cluster.vm(0), "main-broker");
    let broker = Broker::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 61616))?;
    let consumer = Consumer::subscribe(cluster.vm(2), broker.addr(), "news")?;
    let producer_vm = cluster.vm(1);
    let producer = Producer::connect(producer_vm, broker.addr())?;
    let text = "long text message payload ".repeat(1500);
    for i in 0..MQ_MESSAGES {
        producer_vm
            .fs()
            .write(format!("data/article-{i}.txt"), text.clone().into_bytes());
    }
    for i in 0..MQ_MESSAGES {
        // The message text is loaded from a data file (SIM source); the
        // first message is additionally the SDT source variable.
        let mut body = read_data_file(producer_vm, &format!("data/article-{i}.txt"))?;
        if i == 0 {
            let sdt = producer_vm.source_point(
                PRODUCER_CLASS,
                "createTextMessage",
                TagValue::str("message_1"),
            );
            body.apply_taint(producer_vm.store(), sdt);
        }
        producer.send("news", body)?;
    }
    for _ in 0..MQ_MESSAGES {
        let message = consumer.receive()?;
        if message.body.len() != text.len() {
            return Err(JreError::Protocol("message corrupted"));
        }
    }
    producer.close();
    consumer.close();
    broker.shutdown();
    Ok(())
}

fn run_rocketmq(cluster: &Cluster) -> Result<(), JreError> {
    use dista_rocketmq::{seed_config, BrokerServer, MqConsumer, MqProducer, NameServer};
    seed_config(cluster.vm(1), "broker-a");
    let ns = NameServer::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 9876))?;
    let broker = BrokerServer::start(
        cluster.vm(1),
        NodeAddr::new([10, 0, 0, 2], 10911),
        &["TopicBench"],
    )?;
    broker.register_with(ns.addr())?;
    let producer_vm = cluster.vm(2);
    let producer = MqProducer::start(producer_vm, ns.addr(), "TopicBench")?;
    let text = "long text message payload ".repeat(1500);
    for i in 0..MQ_MESSAGES {
        producer_vm
            .fs()
            .write(format!("data/article-{i}.txt"), text.clone().into_bytes());
    }
    for i in 0..MQ_MESSAGES {
        let mut body = read_data_file(producer_vm, &format!("data/article-{i}.txt"))?;
        if i == 0 {
            let sdt = producer_vm.source_point(
                dista_rocketmq::PRODUCER_CLASS,
                "createMessage",
                TagValue::str("mq_message_1"),
            );
            body.apply_taint(producer_vm.store(), sdt);
        }
        producer.send("TopicBench", body)?;
    }
    let consumer = MqConsumer::start(cluster.vm(2), ns.addr(), "TopicBench")?;
    for _ in 0..MQ_MESSAGES {
        let message = consumer.pull_blocking()?;
        if message.body.len() != text.len() {
            return Err(JreError::Protocol("message corrupted"));
        }
    }
    producer.close();
    consumer.close();
    broker.shutdown();
    ns.shutdown();
    Ok(())
}

fn run_hbase(cluster: &Cluster) -> Result<(), JreError> {
    use dista_hbase::{seed_config, HMaster, HTable, RegionServer};
    use dista_zookeeper::{ZkClient, ZkEnsemble, ZkEnsembleConfig};
    let zk_vms: Vec<_> = cluster.vms()[..3].to_vec();
    let ensemble = ZkEnsemble::start(&zk_vms, ZkEnsembleConfig::default())?;

    let mut region_servers = Vec::new();
    for (i, vm) in cluster.vms()[1..3].iter().enumerate() {
        seed_config(vm, &format!("rs-host-{i}"));
        let rs = RegionServer::start(vm, NodeAddr::new(vm.ip(), 16020))?;
        let zk = ZkClient::connect(vm, ensemble.any_client_addr())
            .map_err(|_| JreError::Protocol("zk connect failed"))?;
        rs.register_in_zk(&zk, i)?;
        zk.close();
        region_servers.push(rs);
    }
    let master = HMaster::start(cluster.vm(0), ensemble.any_client_addr())
        .map_err(|_| JreError::Protocol("master start failed"))?;
    let servers = master.wait_for_region_servers(2)?;
    master.assign_tables(&["users"], &servers)?;

    let client_vm = cluster.vm(3);
    let table = HTable::open(client_vm, ensemble.any_client_addr(), "users")?;
    let cell = "cell-value ".repeat(200);
    for i in 0..40 {
        client_vm
            .fs()
            .write(format!("data/row-{i}"), format!("{cell}{i}").into_bytes());
    }
    for i in 0..40 {
        let value = read_data_file(client_vm, &format!("data/row-{i}"))?;
        table.put(format!("row{i}").as_bytes(), value)?;
    }
    for i in 0..40 {
        let result = table.get(format!("row{i}").as_bytes())?;
        if !result.found {
            return Err(JreError::Protocol("row missing"));
        }
    }
    table.close();
    master.shutdown();
    for rs in region_servers {
        rs.shutdown();
    }
    ensemble.shutdown();
    Ok(())
}

/// Runs one system workload in the given mode/scenario, measuring
/// wall-clock duration and collecting the taint census.
///
/// # Errors
///
/// Any workload failure.
pub fn run_system(
    system: SystemId,
    mode: Mode,
    scenario: Scenario,
) -> Result<SystemRun, DistaError> {
    run_system_with(system, mode, scenario, dista_simnet::FaultConfig::default())
}

/// [`run_system`] with an explicit network model (used by the overhead
/// experiments to charge for link bandwidth).
///
/// # Errors
///
/// Any workload failure.
pub fn run_system_with(
    system: SystemId,
    mode: Mode,
    scenario: Scenario,
    faults: dista_simnet::FaultConfig,
) -> Result<SystemRun, DistaError> {
    let cluster = cluster_for(system, mode, scenario)?;
    cluster.net().set_faults(faults);
    let start = Instant::now();
    match system {
        SystemId::ZooKeeper => run_zookeeper(&cluster)?,
        SystemId::MapReduce => run_mapreduce(&cluster)?,
        SystemId::ActiveMq => run_activemq(&cluster)?,
        SystemId::RocketMq => run_rocketmq(&cluster)?,
        SystemId::HBase => run_hbase(&cluster)?,
    }
    let duration = start.elapsed();
    let global_taints = cluster.taint_map().stats().global_taints;
    let tainted_sinks = cluster.total_tainted_sink_events();
    cluster.shutdown();
    Ok(SystemRun {
        system,
        mode,
        scenario,
        duration,
        global_taints,
        tainted_sinks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_runs_in_every_mode_matrix_smoke() {
        // Full matrix is exercised by the table6 binary; here one cheap
        // representative per axis keeps CI fast.
        let r = run_system(SystemId::ZooKeeper, Mode::Dista, Scenario::Sdt).unwrap();
        assert!(r.tainted_sinks >= 2, "both followers checked the leader");
        assert!(r.global_taints >= 1);

        let r = run_system(SystemId::ActiveMq, Mode::Phosphor, Scenario::Sdt).unwrap();
        assert_eq!(r.tainted_sinks, 0, "phosphor drops inter-node taints");

        let r = run_system(SystemId::MapReduce, Mode::Original, Scenario::None).unwrap();
        assert_eq!(r.global_taints, 0);
    }

    #[test]
    fn sdt_global_taints_are_few_and_determinate() {
        // §V-F: "In SDT scenarios, the minimum number of global taints is
        // one, and the maximum is six."
        for system in [SystemId::ZooKeeper, SystemId::ActiveMq] {
            let r = run_system(system, Mode::Dista, Scenario::Sdt).unwrap();
            assert!(
                (1..=12).contains(&r.global_taints),
                "{}: {} global taints",
                system.name(),
                r.global_taints
            );
        }
    }
}

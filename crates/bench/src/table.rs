//! Plain-text table rendering for the bin targets.

use std::time::Duration;

/// A fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Milliseconds with two decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Overhead ratio in the paper's `N.NNX` style.
pub fn fmt_ratio(base: Duration, x: Duration) -> String {
    if base.is_zero() {
        return "-".to_string();
    }
    format!("{:.2}X", x.as_secs_f64() / base.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Case", "Time"]);
        t.row(vec!["a".into(), "1".into()])
            .row(vec!["longer-name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Case"));
        assert!(lines[2].starts_with("a "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["A"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(
            fmt_ratio(Duration::from_millis(100), Duration::from_millis(250)),
            "2.50X"
        );
        assert_eq!(fmt_ratio(Duration::ZERO, Duration::from_millis(1)), "-");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.50");
    }
}

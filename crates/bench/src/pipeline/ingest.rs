//! The ingest → store → analyze pipeline: RocketMQ feeds HBase feeds
//! MapReduce, with one taint trace spanning all three.
//!
//! Per-record source taints are minted at a RocketMQ producer
//! (`RocketMQProducer.createMessage`), carried through the broker to a
//! bridge consumer that writes each record into an HBase table, and
//! finally picked up by a MapReduce WordCount job that scans the table
//! and sinks at `YarnClient.getApplicationReport`. Every boundary is a
//! real wire crossing on the simulated network, so the taints only
//! survive if the instrumented codec re-encodes them — exactly the
//! paper's cross-application claim.
//!
//! The harness is chaos-tolerant: every network-facing call retries
//! with [`dista_core::Cluster::poll_chaos`] interleaved, clients
//! reconnect after connection loss, the bridge holds the in-flight
//! message across failed puts and dedupes broker re-deliveries by
//! message id onto idempotent row keys. A seeded
//! [`broker_outage_plan`] crashes the broker and Taint Map shard 0 the
//! moment the store leg begins and heals both a fixed number of
//! workload operations later.

use std::collections::BTreeSet;
use std::time::Instant;

use dista_core::{Cluster, DistaError, FaultPlan, Mode, WireProtocol};
use dista_hbase::{HMaster, HTable, RegionServer};
use dista_jre::{JreError, Vm};
use dista_mapreduce::run_wordcount_job;
use dista_obs::{ObsConfig, STAGE_ANALYZE, STAGE_INGEST, STAGE_STORE};
use dista_rocketmq::{BrokerServer, MqConsumer, MqProducer, NameServer, PRODUCER_CLASS};
use dista_simnet::NodeAddr;
use dista_taint::{TagValue, Taint, TaintedBytes};
use dista_zookeeper::{ZkClient, ZkEnsemble, ZkEnsembleConfig};

/// Topic the producers publish to and the bridge consumes from.
pub const TOPIC: &str = "PipelineTopic";
/// Table the bridge writes into and the WordCount job scans.
pub const TABLE: &str = "records";

/// Retry budget for each chaos-tolerant step. Failed operations
/// advance the fault engine's step clock, so scheduled heals always
/// land within a bounded number of retries.
const MAX_ATTEMPTS: usize = 400;

/// Configuration for one ingest-pipeline run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Tracking mode for every VM.
    pub mode: Mode,
    /// Wire-protocol policy (v2 gives exact span-paired provenance,
    /// v1 leaves only the inferred reconstruction).
    pub wire: WireProtocol,
    /// Optional seeded chaos schedule (see [`broker_outage_plan`]).
    pub chaos: Option<FaultPlan>,
    /// Number of records pushed through the pipeline.
    pub records: usize,
}

impl IngestConfig {
    /// A small clean-run configuration on the v2 wire.
    pub fn new(mode: Mode) -> Self {
        IngestConfig {
            mode,
            wire: WireProtocol::V2,
            chaos: None,
            records: 6,
        }
    }
}

/// What one pipeline run produced, with the cluster still alive so
/// callers can reconstruct provenance from its flight recorders.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The cluster, post-run (all mini-system servers shut down).
    pub cluster: Cluster,
    /// Tag value of each record's source taint (`record:{i}`).
    pub record_tags: Vec<String>,
    /// Taint handle of each record, valid in the producer VM's store.
    pub record_taints: Vec<Taint>,
    /// Global ID each record's taint registered under (0 = never
    /// crossed a boundary / not tracked).
    pub record_gids: Vec<u32>,
    /// Tags observed at the final MapReduce sink.
    pub sink_tags: Vec<String>,
    /// Rows the analyze leg scanned out of HBase.
    pub rows_scanned: usize,
    /// Distinct words the WordCount job reported.
    pub distinct_words: usize,
    /// Chaos-induced retries across all legs (0 on clean runs).
    pub retries: u64,
    /// Degraded gid lookups still unresolved at the end (0 after heal).
    pub pending_after: usize,
}

/// The flagship seeded chaos schedule: the RocketMQ broker and Taint
/// Map shard 0 both crash the instant the store leg begins; the shard
/// heals 12 workload operations later and the broker 24, both well
/// inside the bridge's retry budget.
pub fn broker_outage_plan(seed: u64) -> FaultPlan {
    FaultPlan::builder(seed)
        .crash_vm_at_stage(STAGE_STORE, "mq-broker")
        .crash_shard_at_stage(STAGE_STORE, 0)
        .restart_shard_after_stage(STAGE_STORE, 12, 0)
        .restart_vm_after_stage(STAGE_STORE, 24, "mq-broker")
        .build()
}

/// The combined source/sink specification of all three systems: the
/// RocketMQ producer/consumer pair, the HBase table-name/get pair, and
/// the MapReduce application pair.
pub fn pipeline_spec() -> dista_taint::SourceSinkSpec {
    use dista_taint::MethodDesc;
    let mut spec = dista_taint::SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(PRODUCER_CLASS, "createMessage"))
        .add_sink(MethodDesc::new(
            dista_rocketmq::CONSUMER_CLASS,
            "consumeMessage",
        ))
        .add_source(MethodDesc::new(dista_hbase::HTABLE_CLASS, "tableName"))
        .add_sink(MethodDesc::new(dista_hbase::HTABLE_CLASS, "getResult"))
        .add_source(MethodDesc::new(
            dista_mapreduce::YARN_CLIENT_CLASS,
            "createApplication",
        ))
        .add_sink(MethodDesc::new(
            dista_mapreduce::YARN_CLIENT_CLASS,
            "getApplicationReport",
        ));
    spec
}

fn build_cluster(cfg: &IngestConfig) -> Result<Cluster, DistaError> {
    let mut builder = Cluster::builder(cfg.mode)
        .node("mq-ns", [10, 0, 0, 1])
        .node("mq-broker", [10, 0, 0, 2])
        .node("mq-producer", [10, 0, 0, 3])
        .node("mq-bridge", [10, 0, 0, 4])
        .node("zk-1", [10, 0, 0, 5])
        .node("zk-2", [10, 0, 0, 6])
        .node("zk-3", [10, 0, 0, 7])
        .node("hb-master", [10, 0, 0, 8])
        .node("hb-rs1", [10, 0, 0, 9])
        .node("mr-rm", [10, 0, 0, 10])
        .node("mr-nm1", [10, 0, 0, 11])
        .node("mr-client", [10, 0, 0, 12])
        .spec(pipeline_spec())
        .wire_protocol(cfg.wire)
        .observability(ObsConfig {
            ring_capacity: 65_536,
        })
        .taint_map_snapshots(true);
    if let Some(plan) = &cfg.chaos {
        builder = builder.chaos(plan.clone());
    }
    builder.build()
}

fn vm(cluster: &Cluster, name: &str) -> Vm {
    cluster
        .vm_named(name)
        .unwrap_or_else(|| panic!("pipeline cluster has no node {name:?}"))
        .clone()
}

/// Runs the full ingest → store → analyze pipeline under `cfg`.
///
/// # Errors
///
/// Standup failures, or a leg exhausting its retry budget under chaos.
pub fn run_ingest(cfg: &IngestConfig) -> Result<IngestOutcome, DistaError> {
    let mut cluster = build_cluster(cfg)?;
    let n = cfg.records;
    let mut retries: u64 = 0;

    let ns_vm = vm(&cluster, "mq-ns");
    let broker_vm = vm(&cluster, "mq-broker");
    let producer_vm = vm(&cluster, "mq-producer");
    let bridge_vm = vm(&cluster, "mq-bridge");
    let zk_vms = vec![
        vm(&cluster, "zk-1"),
        vm(&cluster, "zk-2"),
        vm(&cluster, "zk-3"),
    ];
    let master_vm = vm(&cluster, "hb-master");
    let rs_vm = vm(&cluster, "hb-rs1");
    let mr_vms = vec![
        vm(&cluster, "mr-rm"),
        vm(&cluster, "mr-nm1"),
        vm(&cluster, "mr-client"),
    ];
    let client_vm = mr_vms[2].clone();

    // Standup (not a pipeline stage; stage-keyed chaos waits for marks).
    dista_rocketmq::seed_config(&broker_vm, "pipeline-broker");
    let ns = NameServer::start(&ns_vm, NodeAddr::new([10, 0, 0, 1], 9876))?;
    let broker = BrokerServer::start(&broker_vm, NodeAddr::new([10, 0, 0, 2], 10911), &[TOPIC])?;
    broker.register_with(ns.addr())?;

    let ensemble = ZkEnsemble::start(&zk_vms, ZkEnsembleConfig::default())?;
    dista_hbase::seed_config(&rs_vm, "hb-rs1");
    let rs = RegionServer::start(&rs_vm, NodeAddr::new(rs_vm.ip(), 16020))?;
    let zk = ZkClient::connect(&rs_vm, ensemble.any_client_addr())
        .map_err(|_| JreError::Protocol("zk connect failed"))?;
    rs.register_in_zk(&zk, 0)?;
    zk.close();
    let master = HMaster::start(&master_vm, ensemble.any_client_addr())
        .map_err(|_| JreError::Protocol("master start failed"))?;
    let servers = master.wait_for_region_servers(1)?;
    master.assign_tables(&[TABLE], &servers)?;

    // ── Stage 1: ingest — producers mint per-record taints and publish.
    cluster.record_pipeline_stage("mq-producer", STAGE_INGEST, n as u64);
    cluster.poll_chaos()?;
    let ingest_t0 = Instant::now();
    let mut producer = MqProducer::start(&producer_vm, ns.addr(), TOPIC)?;
    let mut record_tags = Vec::with_capacity(n);
    let mut record_taints = Vec::with_capacity(n);
    for i in 0..n {
        let tag = format!("record:{i}");
        let taint = producer_vm.source_point(PRODUCER_CLASS, "createMessage", TagValue::str(&tag));
        let body = TaintedBytes::uniform(format!("rec{i} common").into_bytes(), taint);
        let mut attempts = 0;
        loop {
            match producer.send(TOPIC, body.clone()) {
                Ok(_) => break,
                Err(e) => {
                    attempts += 1;
                    if attempts > MAX_ATTEMPTS {
                        return Err(e.into());
                    }
                    retries += 1;
                    cluster.poll_chaos()?;
                    if let Ok(p) = MqProducer::start(&producer_vm, ns.addr(), TOPIC) {
                        producer = p;
                    }
                }
            }
        }
        record_tags.push(tag);
        record_taints.push(taint);
    }
    producer.close();
    cluster
        .observability()
        .stages_for("mq-producer")
        .stage(STAGE_INGEST)
        .record_ns(ingest_t0.elapsed().as_nanos() as u64);

    // ── Stage 2: store — the bridge drains the topic into HBase. The
    // broker outage plan crashes the broker and shard 0 right here.
    cluster.record_pipeline_stage("mq-bridge", STAGE_STORE, n as u64);
    cluster.poll_chaos()?;
    let store_t0 = Instant::now();
    let mut consumer = connect_consumer(&mut cluster, &bridge_vm, ns.addr(), &mut retries)?;
    let mut table = open_table(
        &mut cluster,
        &bridge_vm,
        ensemble.any_client_addr(),
        &mut retries,
    )?;
    let mut stored: BTreeSet<i64> = BTreeSet::new();
    let mut inflight = None;
    let mut attempts = 0;
    while stored.len() < n {
        attempts += 1;
        if attempts > MAX_ATTEMPTS {
            return Err(DistaError::Config(format!(
                "bridge retry budget exhausted with {}/{n} records stored",
                stored.len()
            )));
        }
        if inflight.is_none() {
            match consumer.try_pull() {
                Ok(found) => inflight = found,
                Err(_) => {
                    retries += 1;
                    cluster.poll_chaos()?;
                    // Reconnect re-pulls from offset 0; `stored` dedupes.
                    if let Ok(c) = MqConsumer::start(&bridge_vm, ns.addr(), TOPIC) {
                        consumer = c;
                    }
                    continue;
                }
            }
        }
        let Some(msg) = &inflight else { continue };
        if stored.contains(&msg.msg_id) {
            inflight = None;
            continue;
        }
        let row = format!("rec{:06}", msg.msg_id);
        match table.put(row.as_bytes(), msg.body.clone()) {
            Ok(()) => {
                stored.insert(msg.msg_id);
                inflight = None;
            }
            Err(_) => {
                retries += 1;
                cluster.poll_chaos()?;
                if let Ok(t) = HTable::open(&bridge_vm, ensemble.any_client_addr(), TABLE) {
                    table = t;
                }
            }
        }
    }
    consumer.close();
    table.close();
    cluster
        .observability()
        .stages_for("mq-bridge")
        .stage(STAGE_STORE)
        .record_ns(store_t0.elapsed().as_nanos() as u64);

    // Drain degraded gid lookups before the analyze leg: each
    // reconcile round-trip advances the step clock, so a scheduled
    // shard heal that has not fired yet fires here.
    let mut drain = 0;
    loop {
        cluster.poll_chaos()?;
        if cluster.pending_gids() == 0 {
            break;
        }
        let _ = cluster.reconcile_pending();
        drain += 1;
        if drain > MAX_ATTEMPTS {
            break; // leave the sentinels; callers assert on pending_after
        }
    }

    // ── Stage 3: analyze — WordCount over a scan of the whole table.
    cluster.record_pipeline_stage("mr-client", STAGE_ANALYZE, n as u64);
    cluster.poll_chaos()?;
    let analyze_t0 = Instant::now();
    let table = open_table(
        &mut cluster,
        &client_vm,
        ensemble.any_client_addr(),
        &mut retries,
    )?;
    let cells = table.scan(b"", b"")?;
    table.close();
    let mut input = TaintedBytes::from_plain(Vec::new());
    for cell in &cells {
        input.extend_tainted(&cell.value);
        input.extend_plain(b"\n");
    }
    let wc = run_wordcount_job(&mr_vms, input, 2, 2)?;
    cluster
        .observability()
        .stages_for("mr-client")
        .stage(STAGE_ANALYZE)
        .record_ns(analyze_t0.elapsed().as_nanos() as u64);

    master.shutdown();
    rs.shutdown();
    ensemble.shutdown();
    broker.shutdown();
    ns.shutdown();

    let record_gids = record_taints
        .iter()
        .map(|&t| {
            producer_vm
                .taint_map()
                .and_then(|c| c.cached_gid_for(t))
                .map(|g| g.0)
                .unwrap_or(0)
        })
        .collect();
    let sink_tags = client_vm.store().tag_values(wc.sink_taint);
    let pending_after = cluster.pending_gids();
    Ok(IngestOutcome {
        cluster,
        record_tags,
        record_taints,
        record_gids,
        sink_tags,
        rows_scanned: cells.len(),
        distinct_words: wc.report.word_counts.len(),
        retries,
        pending_after,
    })
}

fn connect_consumer(
    cluster: &mut Cluster,
    vm: &Vm,
    ns: NodeAddr,
    retries: &mut u64,
) -> Result<MqConsumer, DistaError> {
    let mut attempts = 0;
    loop {
        match MqConsumer::start(vm, ns, TOPIC) {
            Ok(c) => return Ok(c),
            Err(e) => {
                attempts += 1;
                if attempts > MAX_ATTEMPTS {
                    return Err(e.into());
                }
                *retries += 1;
                cluster.poll_chaos()?;
            }
        }
    }
}

fn open_table(
    cluster: &mut Cluster,
    vm: &Vm,
    zk: NodeAddr,
    retries: &mut u64,
) -> Result<HTable, DistaError> {
    let mut attempts = 0;
    loop {
        match HTable::open(vm, zk, TABLE) {
            Ok(t) => return Ok(t),
            Err(e) => {
                attempts += 1;
                if attempts > MAX_ATTEMPTS {
                    return Err(e.into());
                }
                *retries += 1;
                cluster.poll_chaos()?;
            }
        }
    }
}

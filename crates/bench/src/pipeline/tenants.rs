//! The ActiveMQ-fronted multi-tenant scenario: per-tenant source
//! classes, cross-tenant leak detection via sink reports + provenance.
//!
//! One broker fronts N tenants. Tenant `t`'s producer mints a distinct
//! source class per message (`tenant:{t}:msg:{m}`) and publishes to
//! the tenant's own destination; tenant `t`'s consumer subscribes to
//! that destination, and its `ActiveMQConsumer.receive` sink is the
//! isolation check: any tag from another tenant observed there is a
//! **cross-tenant hit**, the scenario's detection target.
//!
//! A seeded misroute ([`misroute_of`]) redirects exactly one message
//! to another tenant's destination, so the positive path asserts
//! exactly one hit attributed to the right `(from, to)` pair — and the
//! clean path (no misroute) asserts zero hits, the precision half.

use std::time::Instant;

use dista_activemq::{seed_config, Broker, Consumer, Producer, CONSUMER_CLASS, PRODUCER_CLASS};
use dista_core::{Cluster, DistaError, FaultPlan, Mode, WireProtocol};
use dista_jre::Vm;
use dista_obs::{ObsConfig, STAGE_DELIVER};
use dista_simnet::NodeAddr;
use dista_taint::{TagValue, Taint, TaintedBytes};

/// Retry budget per chaos-tolerant step (see `ingest::MAX_ATTEMPTS`).
const MAX_ATTEMPTS: usize = 400;

/// Stage name for the consumer drain leg (not one of the canonical
/// [`dista_obs::PIPELINE_STAGES`]; the cost report appends it after).
pub const STAGE_COLLECT: &str = "collect";

/// Configuration for one multi-tenant run.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tracking mode for every VM.
    pub mode: Mode,
    /// Wire-protocol policy.
    pub wire: WireProtocol,
    /// Optional seeded chaos schedule (see [`broker_deliver_outage`]).
    pub chaos: Option<FaultPlan>,
    /// Number of tenants (≥ 2 for a misroute to exist).
    pub tenants: usize,
    /// Messages per tenant.
    pub messages: usize,
    /// When set, seed for the single cross-tenant misroute; `None` is
    /// the clean control run.
    pub misroute_seed: Option<u64>,
}

impl TenantConfig {
    /// A small clean-run configuration on the v2 wire.
    pub fn new(mode: Mode) -> Self {
        TenantConfig {
            mode,
            wire: WireProtocol::V2,
            chaos: None,
            tenants: 3,
            messages: 4,
            misroute_seed: None,
        }
    }
}

/// One cross-tenant sink observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossTenantHit {
    /// Tenant whose data leaked (parsed from the tag).
    pub from_tenant: usize,
    /// Tenant whose consumer observed it.
    pub to_tenant: usize,
    /// The offending tag (`tenant:{from}:msg:{m}`).
    pub tag: String,
    /// Global ID the leaked taint registered under (0 if untracked).
    pub gid: u32,
}

/// What one multi-tenant run produced.
#[derive(Debug)]
pub struct TenantOutcome {
    /// The cluster, post-run (broker shut down).
    pub cluster: Cluster,
    /// Every cross-tenant hit, in consumer order.
    pub hits: Vec<CrossTenantHit>,
    /// Messages each tenant's consumer received.
    pub received: Vec<usize>,
    /// Messages each tenant's consumer was expected to receive (the
    /// per-tenant count shifted by the misroute, when one is seeded).
    pub expected: Vec<usize>,
    /// The seeded misroute as `(from_tenant, msg, to_tenant)`.
    pub misroute: Option<(usize, usize, usize)>,
    /// Chaos-induced retries across all legs.
    pub retries: u64,
    /// Degraded gid lookups still unresolved at the end.
    pub pending_after: usize,
}

/// The seeded misroute: which `(from_tenant, msg, to_tenant)` gets
/// redirected. Pure arithmetic on the seed so the same seed replays
/// the same leak; `to != from` always.
pub fn misroute_of(seed: u64, tenants: usize, messages: usize) -> (usize, usize, usize) {
    assert!(tenants >= 2, "a misroute needs at least two tenants");
    let from = (seed % tenants as u64) as usize;
    let msg = ((seed / 3) % messages as u64) as usize;
    let to = (from + 1 + ((seed / 7) as usize % (tenants - 1))) % tenants;
    (from, msg, to)
}

/// Chaos schedule for the tenant scenario: the broker crashes the
/// moment the deliver leg begins and heals 16 workload operations
/// later, inside the producers' retry budget.
pub fn broker_deliver_outage(seed: u64) -> FaultPlan {
    FaultPlan::builder(seed)
        .crash_vm_at_stage(STAGE_DELIVER, "amq-broker")
        .restart_vm_after_stage(STAGE_DELIVER, 16, "amq-broker")
        .build()
}

fn tenant_spec() -> dista_taint::SourceSinkSpec {
    use dista_taint::MethodDesc;
    let mut spec = dista_taint::SourceSinkSpec::new();
    spec.add_source(MethodDesc::new(PRODUCER_CLASS, "createTextMessage"))
        .add_sink(MethodDesc::new(CONSUMER_CLASS, "receive"));
    spec
}

fn build_cluster(cfg: &TenantConfig) -> Result<Cluster, DistaError> {
    let mut builder = Cluster::builder(cfg.mode).node("amq-broker", [10, 0, 0, 1]);
    for t in 0..cfg.tenants {
        builder = builder
            .node(format!("amq-prod-{t}"), [10, 0, 0, 10 + t as u8])
            .node(format!("amq-cons-{t}"), [10, 0, 0, 40 + t as u8]);
    }
    builder = builder
        .spec(tenant_spec())
        .wire_protocol(cfg.wire)
        .observability(ObsConfig {
            ring_capacity: 65_536,
        })
        .taint_map_snapshots(true);
    if let Some(plan) = &cfg.chaos {
        builder = builder.chaos(plan.clone());
    }
    builder.build()
}

/// Runs the multi-tenant scenario under `cfg`.
///
/// # Errors
///
/// Standup failures, or a leg exhausting its retry budget under chaos.
///
/// # Panics
///
/// Panics if `cfg.tenants < 2` while a misroute seed is set.
pub fn run_tenants(cfg: &TenantConfig) -> Result<TenantOutcome, DistaError> {
    let mut cluster = build_cluster(cfg)?;
    let (n_tenants, n_msgs) = (cfg.tenants, cfg.messages);
    let misroute = cfg
        .misroute_seed
        .map(|seed| misroute_of(seed, n_tenants, n_msgs));
    let mut retries: u64 = 0;

    let broker_vm = cluster.vm_named("amq-broker").expect("broker node").clone();
    let prod_vms: Vec<Vm> = (0..n_tenants)
        .map(|t| {
            cluster
                .vm_named(&format!("amq-prod-{t}"))
                .expect("producer node")
                .clone()
        })
        .collect();
    let cons_vms: Vec<Vm> = (0..n_tenants)
        .map(|t| {
            cluster
                .vm_named(&format!("amq-cons-{t}"))
                .expect("consumer node")
                .clone()
        })
        .collect();

    seed_config(&broker_vm, "tenant-broker");
    let broker = Broker::start(&broker_vm, NodeAddr::new([10, 0, 0, 1], 61616))?;

    // ── Deliver: every tenant publishes to its own destination; the
    // seeded misroute sends exactly one message to someone else's. The
    // broker queues per destination, so consumers can subscribe after.
    cluster.record_pipeline_stage("amq-broker", STAGE_DELIVER, (n_tenants * n_msgs) as u64);
    cluster.poll_chaos()?;
    let deliver_t0 = Instant::now();
    let mut message_taints: Vec<Vec<Taint>> = vec![Vec::new(); n_tenants];
    for (t, prod_vm) in prod_vms.iter().enumerate() {
        let mut producer = connect_producer(&mut cluster, prod_vm, broker.addr(), &mut retries)?;
        for m in 0..n_msgs {
            let tag = format!("tenant:{t}:msg:{m}");
            let taint =
                prod_vm.source_point(PRODUCER_CLASS, "createTextMessage", TagValue::str(&tag));
            let body = TaintedBytes::uniform(format!("t{t}m{m} payload").into_bytes(), taint);
            let dest_tenant = match misroute {
                Some((from, msg, to)) if from == t && msg == m => to,
                _ => t,
            };
            let dest = format!("tenant-{dest_tenant}");
            let mut attempts = 0;
            loop {
                match producer.send(&dest, body.clone()) {
                    Ok(_) => break,
                    Err(e) => {
                        attempts += 1;
                        if attempts > MAX_ATTEMPTS {
                            return Err(e.into());
                        }
                        retries += 1;
                        cluster.poll_chaos()?;
                        if let Ok(p) = Producer::connect(prod_vm, broker.addr()) {
                            producer = p;
                        }
                    }
                }
            }
            message_taints[t].push(taint);
        }
        producer.close();
    }
    cluster
        .observability()
        .stages_for("amq-broker")
        .stage(STAGE_DELIVER)
        .record_ns(deliver_t0.elapsed().as_nanos() as u64);

    // ── Collect: each tenant's consumer drains its destination; its
    // receive sink records every tag it observed.
    cluster.record_pipeline_stage("amq-broker", STAGE_COLLECT, (n_tenants * n_msgs) as u64);
    cluster.poll_chaos()?;
    let collect_t0 = Instant::now();
    let mut expected = vec![n_msgs; n_tenants];
    if let Some((from, _, to)) = misroute {
        expected[from] -= 1;
        expected[to] += 1;
    }
    let mut received = vec![0usize; n_tenants];
    for (t, cons_vm) in cons_vms.iter().enumerate() {
        let dest = format!("tenant-{t}");
        let mut consumer =
            subscribe_consumer(&mut cluster, cons_vm, broker.addr(), &dest, &mut retries)?;
        let mut attempts = 0;
        while received[t] < expected[t] {
            match consumer.receive() {
                Ok(_) => received[t] += 1,
                Err(e) => {
                    attempts += 1;
                    if attempts > MAX_ATTEMPTS {
                        return Err(e.into());
                    }
                    retries += 1;
                    cluster.poll_chaos()?;
                    if let Ok(c) = Consumer::subscribe(cons_vm, broker.addr(), &dest) {
                        consumer = c;
                    }
                }
            }
        }
        consumer.close();
    }
    cluster
        .observability()
        .stages_for("amq-broker")
        .stage(STAGE_COLLECT)
        .record_ns(collect_t0.elapsed().as_nanos() as u64);

    let mut drain = 0;
    loop {
        cluster.poll_chaos()?;
        if cluster.pending_gids() == 0 {
            break;
        }
        let _ = cluster.reconcile_pending();
        drain += 1;
        if drain > MAX_ATTEMPTS {
            break;
        }
    }
    broker.shutdown();

    // Isolation audit: a tag of tenant `u != t` at tenant `t`'s receive
    // sink is a leak; attribute it by parsing the tag's tenant prefix.
    let mut hits = Vec::new();
    for (t, cons_vm) in cons_vms.iter().enumerate() {
        let report = cons_vm.sink_report();
        for event in report.at(&format!("{CONSUMER_CLASS}.receive")) {
            for tag in &event.tags {
                let Some(from_tenant) = tag
                    .strip_prefix("tenant:")
                    .and_then(|rest| rest.split(':').next())
                    .and_then(|id| id.parse::<usize>().ok())
                else {
                    continue;
                };
                if from_tenant != t {
                    let msg = tag
                        .rsplit(':')
                        .next()
                        .and_then(|m| m.parse::<usize>().ok())
                        .unwrap_or(0);
                    let gid = message_taints
                        .get(from_tenant)
                        .and_then(|v| v.get(msg))
                        .and_then(|&taint| {
                            prod_vms[from_tenant]
                                .taint_map()
                                .and_then(|c| c.cached_gid_for(taint))
                        })
                        .map(|g| g.0)
                        .unwrap_or(0);
                    hits.push(CrossTenantHit {
                        from_tenant,
                        to_tenant: t,
                        tag: tag.clone(),
                        gid,
                    });
                }
            }
        }
    }

    let pending_after = cluster.pending_gids();
    Ok(TenantOutcome {
        cluster,
        hits,
        received,
        expected,
        misroute,
        retries,
        pending_after,
    })
}

fn connect_producer(
    cluster: &mut Cluster,
    vm: &Vm,
    broker: NodeAddr,
    retries: &mut u64,
) -> Result<Producer, DistaError> {
    let mut attempts = 0;
    loop {
        match Producer::connect(vm, broker) {
            Ok(p) => return Ok(p),
            Err(e) => {
                attempts += 1;
                if attempts > MAX_ATTEMPTS {
                    return Err(e.into());
                }
                *retries += 1;
                cluster.poll_chaos()?;
            }
        }
    }
}

fn subscribe_consumer(
    cluster: &mut Cluster,
    vm: &Vm,
    broker: NodeAddr,
    dest: &str,
    retries: &mut u64,
) -> Result<Consumer, DistaError> {
    let mut attempts = 0;
    loop {
        match Consumer::subscribe(vm, broker, dest) {
            Ok(c) => return Ok(c),
            Err(e) => {
                attempts += 1;
                if attempts > MAX_ATTEMPTS {
                    return Err(e.into());
                }
                *retries += 1;
                cluster.poll_chaos()?;
            }
        }
    }
}

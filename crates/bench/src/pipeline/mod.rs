//! Cross-system pipeline scenarios: taint provenance across
//! application boundaries.
//!
//! DisTA's headline claim is that taint survives crossing *between*
//! distributed applications. The single-system workloads in
//! [`crate::systems`] each exercise one application; this module
//! composes them into two flagship pipelines:
//!
//! * **Ingest / store / analyze** ([`ingest`]) — RocketMQ producers
//!   mint per-record source taints, a bridge consumer writes the
//!   records into an HBase region, and a MapReduce WordCount job scans
//!   the table and sinks the results. One
//!   `Cluster::provenance_stitched` call renders a hop-by-hop trace
//!   spanning all three systems.
//! * **Multi-tenant broker** ([`tenants`]) — an ActiveMQ broker fronts
//!   N tenants whose data carries distinct source classes; per-tenant
//!   consumers are isolation sinks, and a cross-tenant sink hit is the
//!   detection target (asserted positively for a seeded misroute and
//!   negatively for clean runs).
//!
//! Node names follow a `system-role` convention (`mq-producer`,
//! `hb-rs1`, `mr-client`, …) so a provenance trace can be segmented by
//! application with [`system_of`] / [`systems_spanned`]. Pipeline legs
//! are marked as stages ([`dista_core::Cluster::record_pipeline_stage`])
//! which both lands `pipeline_stage` flight events and fires
//! stage-keyed chaos triggers, and stage wall-time is attributed to
//! `pipeline_stage_ns{node,stage}` via [`dista_obs::StageSet`].

pub mod ingest;
pub mod tenants;

pub use ingest::{broker_outage_plan, run_ingest, IngestConfig, IngestOutcome};
pub use tenants::{
    broker_deliver_outage, misroute_of, run_tenants, CrossTenantHit, TenantConfig, TenantOutcome,
};

use dista_obs::ProvenanceTrace;

/// Maps a pipeline node name to the mini-system it belongs to, by the
/// `system-` prefix of the node naming convention. Unknown prefixes map
/// to the name itself.
pub fn system_of(node: &str) -> &str {
    const PREFIXES: [(&str, &str); 5] = [
        ("mq-", "rocketmq"),
        ("hb-", "hbase"),
        ("mr-", "mapreduce"),
        ("amq-", "activemq"),
        ("zk-", "zookeeper"),
    ];
    for (prefix, system) in PREFIXES {
        if node.starts_with(prefix) {
            return system;
        }
    }
    node
}

/// The distinct systems a provenance trace touches, in first-hop order
/// — the paper's "taint crossed three applications" check is
/// `systems_spanned(&trace).len() >= 3`.
pub fn systems_spanned(trace: &ProvenanceTrace) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for node in trace.nodes() {
        let system = system_of(node).to_string();
        if !out.contains(&system) {
            out.push(system);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_prefixes_map_to_systems() {
        assert_eq!(system_of("mq-producer"), "rocketmq");
        assert_eq!(system_of("mq-bridge"), "rocketmq");
        assert_eq!(system_of("hb-rs1"), "hbase");
        assert_eq!(system_of("mr-client"), "mapreduce");
        assert_eq!(system_of("amq-cons-2"), "activemq");
        assert_eq!(system_of("zk-1"), "zookeeper");
        assert_eq!(system_of("lonely"), "lonely");
    }
}

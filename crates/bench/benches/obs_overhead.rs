//! Cost of the telemetry layer on the hot path: the 1 MiB chunked-read
//! scenario (write one tainted megabyte, read it back in 64 KiB chunks
//! through the boundary wrappers) with cluster observability off vs on.
//! The flight recorder and cached instrument handles are designed to add
//! <10% latency — compare `obs_overhead/chunked_read_1mib/off` and
//! `…/on` in the criterion report.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dista_core::obs::ObsConfig;
use dista_core::{Cluster, ClusterBuilder, Mode};
use dista_jre::{InputStream, OutputStream, ServerSocket, Socket, SocketInputStream};
use dista_simnet::NodeAddr;
use dista_taint::{Payload, TagValue, TaintedBytes};

const TOTAL: usize = 1024 * 1024;
const CHUNK: usize = 64 * 1024;

struct Scenario {
    cluster: Cluster,
    out: dista_jre::SocketOutputStream,
    input: SocketInputStream,
    payload: Payload,
}

fn scenario(observed: bool) -> Scenario {
    let mut builder: ClusterBuilder = Cluster::builder(Mode::Dista).nodes("bench", 2);
    if observed {
        builder = builder.observability(ObsConfig::default());
    }
    let cluster = builder.build().expect("cluster");
    let server = ServerSocket::bind(cluster.vm(1), NodeAddr::new([10, 0, 0, 2], 80)).expect("bind");
    let client = Socket::connect(cluster.vm(0), server.local_addr()).expect("connect");
    let conn = server.accept().expect("accept");
    let taint = cluster.vm(0).taint_source(TagValue::str("hot"));
    // Register the taint up front — the one-time Taint Map RPC is not
    // what this benchmark measures.
    cluster
        .vm(0)
        .taint_map()
        .unwrap()
        .global_id_for(taint)
        .unwrap();
    Scenario {
        out: client.output_stream(),
        input: conn.input_stream(),
        payload: Payload::Tainted(TaintedBytes::uniform(vec![0x42u8; TOTAL], taint)),
        cluster,
    }
}

fn run_once(s: &Scenario) {
    s.out.write(&s.payload).expect("write");
    let mut read = 0;
    while read < TOTAL {
        let part = s.input.read_exact(CHUNK).expect("read");
        read += part.len();
    }
    assert_eq!(read, TOTAL);
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (label, observed) in [("off", false), ("on", true)] {
        let s = scenario(observed);
        group.bench_with_input(BenchmarkId::new("chunked_read_1mib", label), &s, |b, s| {
            b.iter(|| run_once(s))
        });
        s.cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

//! Ablation: the Taint Map as a single-point bottleneck (§III-D: "the
//! limit on the throughput of Taint Map may cause performance
//! degradation … our evaluation shows the performance degradation is
//! acceptable"). The service's per-request delay is varied; because each
//! distinct taint is registered/resolved exactly once, even a slow
//! service barely moves end-to-end time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dista_core::{Cluster, Mode};
use dista_microbench::{all_cases, run_case_on};
use dista_taintmap::TaintMapConfig;

const SIZE: usize = 16 * 1024;

fn bench_throttle(c: &mut Criterion) {
    let cases = all_cases();
    let raw = &cases[0];
    let mut group = c.benchmark_group("taintmap_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for delay_us in [0u64, 200, 1000] {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("tm", 2)
            .taint_map_config(TaintMapConfig {
                service_delay: Duration::from_micros(delay_us),
            })
            .build()
            .expect("cluster");
        group.bench_with_input(
            BenchmarkId::new("service_delay_us", delay_us),
            &cluster,
            |b, cluster| {
                b.iter(|| {
                    run_case_on(raw.as_ref(), cluster.vm(0), cluster.vm(1), SIZE).expect("case")
                });
            },
        );
        cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_throttle);
criterion_main!(benches);

//! The Taint Map as a single-point bottleneck (§III-D: "the limit on
//! the throughput of Taint Map may cause performance degradation … our
//! evaluation shows the performance degradation is acceptable") — and
//! the two levers this reproduction adds against it.
//!
//! Two benchmark groups:
//!
//! * `service_delay_us` — the original ablation: vary the service's
//!   per-frame delay; because each distinct taint is registered and
//!   resolved exactly once, even a slow service barely moves end-to-end
//!   time.
//! * `concurrent_clients` — the scaling comparison: several client
//!   threads register and resolve many distinct taints against (a) a
//!   single server over the **unbatched** single-item protocol (the
//!   measured baseline: one `REGISTER`/`LOOKUP` frame per item, the
//!   paper's deployment), (b) a single server with **batched** frames,
//!   and (c) a **4-shard** deployment with batched frames. The throttle
//!   is charged per frame, so batching amortizes it and sharding
//!   parallelizes what remains — batched+sharded must beat the
//!   unbatched single server.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dista_core::{Cluster, Mode};
use dista_microbench::{all_cases, run_case_on};
use dista_simnet::SimNet;
use dista_taint::{LocalId, TagValue, Taint, TaintStore};
use dista_taintmap::{TaintMapClient, TaintMapConfig, TaintMapEndpoint, TaintMapTopology};

const SIZE: usize = 16 * 1024;

fn bench_throttle(c: &mut Criterion) {
    let cases = all_cases();
    let raw = &cases[0];
    let mut group = c.benchmark_group("taintmap_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for delay_us in [0u64, 200, 1000] {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("tm", 2)
            .taint_map_config(TaintMapConfig {
                service_delay: Duration::from_micros(delay_us),
                ..Default::default()
            })
            .build()
            .expect("cluster");
        group.bench_with_input(
            BenchmarkId::new("service_delay_us", delay_us),
            &cluster,
            |b, cluster| {
                b.iter(|| {
                    run_case_on(raw.as_ref(), cluster.vm(0), cluster.vm(1), SIZE).expect("case")
                });
            },
        );
        cluster.shutdown();
    }
    group.finish();
}

static NEXT_VM: AtomicU32 = AtomicU32::new(1);

/// One client thread's work: register `n` fresh distinct taints, then
/// resolve all of them from a second, cache-cold VM.
fn client_workload(net: &SimNet, topology: &TaintMapTopology, n: usize, batched: bool) {
    let id = NEXT_VM.fetch_add(1, Ordering::Relaxed);
    let store = TaintStore::new(LocalId::new([10, 0, 1, (id % 200) as u8], id));
    let writer = TaintMapClient::connect_topology(net, topology.clone(), store.clone())
        .expect("writer connect");
    let taints: Vec<Taint> = (0..n as i64)
        .map(|i| store.mint_source_taint(TagValue::Int(i)))
        .collect();
    let gids = if batched {
        writer.global_ids_for(&taints).expect("register batch")
    } else {
        taints
            .iter()
            .map(|&t| writer.global_id_for(t).expect("register"))
            .collect()
    };

    let id = NEXT_VM.fetch_add(1, Ordering::Relaxed);
    let store2 = TaintStore::new(LocalId::new([10, 0, 2, (id % 200) as u8], id));
    let reader =
        TaintMapClient::connect_topology(net, topology.clone(), store2).expect("reader connect");
    if batched {
        let resolved = reader.taints_for(&gids).expect("lookup batch");
        assert_eq!(resolved.len(), n);
    } else {
        for &gid in &gids {
            reader.taint_for(gid).expect("lookup");
        }
    }
}

fn run_concurrent(net: &SimNet, topology: &TaintMapTopology, clients: usize, batched: bool) {
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| client_workload(net, topology, 48, batched));
        }
    });
}

fn bench_shards_and_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("taintmap_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // A visible fixed per-frame cost: what batching amortizes and
    // sharding parallelizes.
    let config = TaintMapConfig {
        service_delay: Duration::from_micros(50),
        ..Default::default()
    };
    for (label, shards, batched) in [
        ("unbatched_1shard", 1usize, false),
        ("batched_1shard", 1, true),
        ("batched_4shards", 4, true),
    ] {
        let net = SimNet::new();
        let endpoint = TaintMapEndpoint::builder()
            .shards(shards)
            .config(config)
            .connect(&net)
            .expect("endpoint");
        let topology = endpoint.topology();
        group.bench_with_input(
            BenchmarkId::new("concurrent_clients", label),
            &topology,
            |b, topology| {
                b.iter(|| run_concurrent(&net, topology, 4, batched));
            },
        );
        endpoint.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_throttle, bench_shards_and_batching);
criterion_main!(benches);

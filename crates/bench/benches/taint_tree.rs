//! Ablation: Phosphor's interned singleton taint tree vs a naive
//! per-value tag-set representation — the design §II-B justifies with
//! "avoiding storing the same tags repeatedly".

use std::collections::BTreeSet;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dista_taint::{LocalId, TagValue, Taint, TaintStore};

/// The strawman: every taint owns its full tag set.
#[derive(Clone, Default)]
struct NaiveTaint(BTreeSet<u32>);

impl NaiveTaint {
    fn union(&self, other: &NaiveTaint) -> NaiveTaint {
        let mut out = self.0.clone();
        out.extend(other.0.iter().copied());
        NaiveTaint(out)
    }
}

/// The workload both representations run: `tags` base taints, then a
/// left fold of unions over `rounds` pseudo-random pairs (the shape of
/// combining taints along a dataflow).
fn interned_workload(tags: u32, rounds: usize) -> Taint {
    let store = TaintStore::new(LocalId::default());
    let base: Vec<Taint> = (0..tags)
        .map(|i| store.mint_source_taint(TagValue::Int(i64::from(i))))
        .collect();
    let mut acc = Taint::EMPTY;
    for i in 0..rounds {
        acc = store.union(acc, base[i % base.len()]);
        let other = base[(i * 7 + 3) % base.len()];
        acc = store.union(acc, other);
    }
    acc
}

fn naive_workload(tags: u32, rounds: usize) -> NaiveTaint {
    let base: Vec<NaiveTaint> = (0..tags).map(|i| NaiveTaint(BTreeSet::from([i]))).collect();
    let mut acc = NaiveTaint::default();
    for i in 0..rounds {
        acc = acc.union(&base[i % base.len()]);
        let other = &base[(i * 7 + 3) % base.len()];
        acc = acc.union(other);
    }
    acc
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("taint_tree");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for tags in [8u32, 64, 256] {
        group.bench_with_input(BenchmarkId::new("interned", tags), &tags, |b, &tags| {
            b.iter(|| interned_workload(tags, 2000));
        });
        group.bench_with_input(BenchmarkId::new("naive", tags), &tags, |b, &tags| {
            b.iter(|| naive_workload(tags, 2000));
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    use dista_taint::{deserialize_taint, serialize_taint};
    let mut group = c.benchmark_group("taint_codec");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for tags in [1usize, 8, 64] {
        let sender = TaintStore::new(LocalId::new([10, 0, 0, 1], 1));
        let taint =
            sender.union_all((0..tags).map(|i| sender.mint_source_taint(TagValue::Int(i as i64))));
        let wire = serialize_taint(sender.tree(), taint);
        group.bench_with_input(BenchmarkId::new("serialize", tags), &tags, |b, _| {
            b.iter(|| serialize_taint(sender.tree(), taint).len());
        });
        group.bench_with_input(BenchmarkId::new("deserialize", tags), &tags, |b, _| {
            let receiver = TaintStore::new(LocalId::new([10, 0, 0, 2], 2));
            b.iter(|| deserialize_taint(&receiver, &wire).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree, bench_serialization);
criterion_main!(benches);

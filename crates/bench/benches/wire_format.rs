//! Ablation: DisTA's interleaved per-byte `[data][GID]` records vs a
//! trailer-block layout (`[data block][taint block]`) under fragmented
//! delivery — the "mismatched serialized taint length" rationale of
//! §III-D-2. The interleaved format decodes any record-aligned prefix;
//! the trailer format must buffer the whole message before *any* byte's
//! taint is known.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const GID_WIDTH: usize = 4;

/// Interleaved encode: `[b][gid]` per byte.
fn encode_interleaved(data: &[u8], gid: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * (1 + GID_WIDTH));
    for &b in data {
        out.push(b);
        out.extend_from_slice(&gid.to_be_bytes());
    }
    out
}

/// Trailer encode: all data, then all gids.
fn encode_trailer(data: &[u8], gid: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + data.len() * (1 + GID_WIDTH));
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(data);
    for _ in data {
        out.extend_from_slice(&gid.to_be_bytes());
    }
    out
}

/// Streaming decode of interleaved records from `chunk_size` fragments:
/// bytes become available (data, gid) as soon as each record completes.
fn decode_interleaved_chunked(wire: &[u8], chunk_size: usize) -> (usize, u64) {
    let rs = 1 + GID_WIDTH;
    let mut rem: Vec<u8> = Vec::with_capacity(rs * 2 + chunk_size);
    let mut bytes = 0usize;
    let mut gid_sum = 0u64;
    for chunk in wire.chunks(chunk_size) {
        rem.extend_from_slice(chunk);
        let whole = rem.len() - rem.len() % rs;
        for record in rem[..whole].chunks_exact(rs) {
            bytes += 1;
            gid_sum += u64::from(u32::from_be_bytes([
                record[1], record[2], record[3], record[4],
            ]));
        }
        rem.drain(..whole);
    }
    (bytes, gid_sum)
}

/// Streaming decode of the trailer format: nothing can be emitted until
/// the full message arrived, so every fragment is buffered.
fn decode_trailer_chunked(wire: &[u8], chunk_size: usize) -> (usize, u64) {
    let mut buf: Vec<u8> = Vec::new();
    for chunk in wire.chunks(chunk_size) {
        buf.extend_from_slice(chunk);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let data = &buf[4..4 + len];
    let gids = &buf[4 + len..];
    let mut gid_sum = 0u64;
    for record in gids.chunks_exact(GID_WIDTH) {
        gid_sum += u64::from(u32::from_be_bytes([
            record[0], record[1], record[2], record[3],
        ]));
    }
    (data.len(), gid_sum)
}

fn bench_wire(c: &mut Criterion) {
    let data = vec![0x5Au8; 64 * 1024];
    let interleaved = encode_interleaved(&data, 7);
    let trailer = encode_trailer(&data, 7);

    let mut group = c.benchmark_group("wire_format");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for chunk in [128usize, 1024, 8192] {
        group.bench_with_input(
            BenchmarkId::new("interleaved_decode", chunk),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    let (n, _) = decode_interleaved_chunked(&interleaved, chunk);
                    assert_eq!(n, data.len());
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("trailer_decode", chunk),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    let (n, _) = decode_trailer_chunked(&trailer, chunk);
                    assert_eq!(n, data.len());
                });
            },
        );
    }
    group.bench_function("interleaved_encode", |b| {
        b.iter(|| encode_interleaved(&data, 7).len());
    });
    group.bench_function("trailer_encode", |b| {
        b.iter(|| encode_trailer(&data, 7).len());
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);

//! Criterion version of Table V: representative micro-benchmark cases in
//! all three modes. (The full 30-case table is printed by the
//! `table5_overhead` bin target; criterion here gives statistically
//! sound per-mode comparisons on one case per family.)

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dista_core::Cluster;
use dista_microbench::{all_cases, run_case_on, Mode};

const SIZE: usize = 16 * 1024;

fn bench_modes(c: &mut Criterion) {
    let cases = all_cases();
    // One representative per family + the two socket extremes.
    let picks: Vec<usize> = vec![0, 1, 14, 22, 23, 24, 25, 26, 27, 28, 29];
    let mut group = c.benchmark_group("table5_micro");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for idx in picks {
        let case = &cases[idx];
        for mode in [Mode::Original, Mode::Phosphor, Mode::Dista] {
            let cluster = Cluster::builder(mode)
                .nodes("bench", 2)
                .build()
                .expect("cluster");
            group.bench_with_input(
                BenchmarkId::new(case.name(), mode),
                &cluster,
                |b, cluster| {
                    b.iter(|| {
                        run_case_on(case.as_ref(), cluster.vm(0), cluster.vm(1), SIZE)
                            .expect("case run")
                    });
                },
            );
            cluster.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);

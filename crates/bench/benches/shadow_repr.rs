//! Shadow-representation ablation backing the run-length refactor:
//!
//! 1. **Run-length vs dense shadows** on a 1 MiB uniformly-tainted
//!    payload — the common case the paper's byte-level shadows hit
//!    (§III-A): a whole network read carries one taint. Dense storage
//!    pays O(bytes) on every structural operation; run-length pays
//!    O(runs), which is O(1) here.
//! 2. **Striped vs single-lock taint tree** under 4-thread union
//!    contention — the interning workload every instrumented thread in
//!    a VM funnels through (§II-B singleton tree).

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dista_taint::{
    LocalId, SingleLockTaintTree, TagValue, Taint, TaintRuns, TaintStore, TaintTree,
};

const PAYLOAD: usize = 1 << 20; // 1 MiB
const CHUNK: usize = 4096; // stream-socket read size

/// The boundary-wrapper workload over a run-length shadow: build the
/// uniform 1 MiB shadow, drain it in socket-sized chunks, and union the
/// taints seen in each chunk (what `encode_wire` + `taint_union` do).
fn rle_workload(store: &TaintStore, taint: Taint) -> Taint {
    let mut shadow = TaintRuns::uniform(taint, PAYLOAD);
    let mut acc = Taint::EMPTY;
    while !shadow.is_empty() {
        let chunk = shadow.split_front(CHUNK);
        acc = store.union(acc, store.union_all(chunk.iter_runs().map(|(_, t)| t)));
    }
    acc
}

/// The identical workload over the pre-refactor dense `Vec<Taint>`.
fn dense_workload(store: &TaintStore, taint: Taint) -> Taint {
    let mut shadow = vec![taint; PAYLOAD];
    let mut acc = Taint::EMPTY;
    while !shadow.is_empty() {
        let n = CHUNK.min(shadow.len());
        let chunk: Vec<Taint> = shadow.drain(..n).collect();
        acc = store.union(acc, store.union_all(chunk.iter().copied()));
    }
    acc
}

fn bench_shadow(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_repr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let store = TaintStore::new(LocalId::default());
    let taint = store.mint_source_taint(TagValue::str("payload"));
    group.bench_function(BenchmarkId::new("run_length", "1MiB_uniform"), |b| {
        b.iter(|| black_box(rle_workload(&store, taint)));
    });
    group.bench_function(BenchmarkId::new("dense", "1MiB_uniform"), |b| {
        b.iter(|| black_box(dense_workload(&store, taint)));
    });
    group.finish();
}

const CONTENTION_THREADS: usize = 4;
const BASE_TAGS: usize = 32;
const UNIONS_PER_THREAD: usize = 20_000;

/// Per-thread union stream: deterministic pseudo-random pairs over the
/// shared base taints, identical for both tree implementations.
fn union_storm(union: impl Fn(Taint, Taint) -> Taint, base: &[Taint], seed: usize) -> Taint {
    let mut acc = Taint::EMPTY;
    for i in 0..UNIONS_PER_THREAD {
        let a = base[(i * 7 + seed) % base.len()];
        let b = base[(i * 13 + seed * 3 + 1) % base.len()];
        acc = union(acc, union(a, b));
    }
    acc
}

fn contended<T: Send + Sync + 'static>(
    tree: Arc<T>,
    base: Arc<Vec<Taint>>,
    union: fn(&T, Taint, Taint) -> Taint,
) {
    let barrier = Arc::new(Barrier::new(CONTENTION_THREADS));
    let handles: Vec<_> = (0..CONTENTION_THREADS)
        .map(|seed| {
            let tree = Arc::clone(&tree);
            let base = Arc::clone(&base);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                black_box(union_storm(|a, b| union(&tree, a, b), &base, seed))
            })
        })
        .collect();
    for h in handles {
        h.join().expect("contention thread panicked");
    }
}

fn bench_tree_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_contention");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function(
        BenchmarkId::new("striped", format!("{CONTENTION_THREADS}threads")),
        |b| {
            let tree = Arc::new(TaintTree::new());
            let base: Arc<Vec<Taint>> = Arc::new(
                (0..BASE_TAGS as i64)
                    .map(|i| {
                        let tag = tree.mint_tag(TagValue::Int(i), LocalId::default());
                        tree.taint_of_tag(tag)
                    })
                    .collect(),
            );
            b.iter(|| contended(Arc::clone(&tree), Arc::clone(&base), TaintTree::union));
        },
    );

    group.bench_function(
        BenchmarkId::new("single_lock", format!("{CONTENTION_THREADS}threads")),
        |b| {
            let tree = Arc::new(SingleLockTaintTree::new());
            let base: Arc<Vec<Taint>> = Arc::new(
                (0..BASE_TAGS as i64)
                    .map(|i| {
                        let tag = tree.mint_tag(TagValue::Int(i), LocalId::default());
                        tree.taint_of_tag(tag)
                    })
                    .collect(),
            );
            b.iter(|| {
                contended(
                    Arc::clone(&tree),
                    Arc::clone(&base),
                    SingleLockTaintTree::union,
                )
            });
        },
    );

    group.finish();
}

criterion_group!(benches, bench_shadow, bench_tree_contention);
criterion_main!(benches);

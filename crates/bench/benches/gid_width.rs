//! Ablation: Global ID wire width (2/4/8 bytes) — §III-D notes the
//! bandwidth overhead "depends on the length of the Global ID". Each
//! width runs the raw-socket round trip end-to-end; wall-clock and wire
//! bytes both scale with `1 + width`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dista_core::{Cluster, Mode};
use dista_microbench::{all_cases, run_case_on};

const SIZE: usize = 16 * 1024;

fn bench_gid_width(c: &mut Criterion) {
    let cases = all_cases();
    let raw = &cases[0];
    let mut group = c.benchmark_group("gid_width");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for width in [2usize, 4, 8] {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("gid", 2)
            .gid_width(width)
            .build()
            .expect("cluster");
        // Report the measured wire expansion once per width.
        cluster.net().metrics().reset();
        run_case_on(raw.as_ref(), cluster.vm(0), cluster.vm(1), SIZE).expect("probe");
        let bytes = cluster.net().metrics().snapshot().total_bytes();
        // Data crossing the wire: SIZE out, 2×SIZE back (the combined
        // reply), so the expected expansion is (1 + width)×.
        println!(
            "gid_width={width}: {bytes} wire bytes for {} data bytes (~{:.1}X, expect {}X)",
            SIZE * 3,
            bytes as f64 / (SIZE * 3) as f64,
            1 + width
        );
        group.bench_with_input(
            BenchmarkId::new("roundtrip", width),
            &cluster,
            |b, cluster| {
                b.iter(|| {
                    run_case_on(raw.as_ref(), cluster.vm(0), cluster.vm(1), SIZE).expect("case")
                });
            },
        );
        cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_gid_width);
criterion_main!(benches);

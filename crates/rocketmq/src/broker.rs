//! The RocketMQ broker: per-topic commit logs with send/pull RPCs.

use std::collections::HashMap;
use std::sync::Arc;

use dista_jre::{FileInputStream, JreError, ObjValue, Vm};
use dista_netty::{Bootstrap, NettyServer, ServerBootstrap};
use dista_simnet::NodeAddr;
use dista_taint::{Payload, Tainted, TaintedBytes};
use parking_lot::Mutex;

#[derive(Default)]
struct TopicLog {
    messages: Vec<(i64, TaintedBytes)>,
}

/// A running broker.
pub struct BrokerServer {
    vm: Vm,
    broker_name: Tainted<String>,
    server: Option<NettyServer>,
    topics: Vec<String>,
}

impl std::fmt::Debug for BrokerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerServer")
            .field("name", self.broker_name.value())
            .field("topics", &self.topics)
            .finish()
    }
}

impl BrokerServer {
    /// Starts the broker at `addr` serving `topics`, reading
    /// `conf/broker.conf` for the broker name (the SIM source point).
    ///
    /// # Errors
    ///
    /// Transport errors (address in use).
    pub fn start(vm: &Vm, addr: NodeAddr, topics: &[&str]) -> Result<Self, JreError> {
        let broker_name = match FileInputStream::open(vm, "conf/broker.conf") {
            Ok(file) => {
                let contents = file.read_to_string()?;
                let taint = contents.taint();
                let name = contents
                    .value()
                    .lines()
                    .find_map(|l| l.strip_prefix("brokerName="))
                    .unwrap_or("broker-a")
                    .to_string();
                Tainted::new(name, taint)
            }
            Err(_) => Tainted::untainted(vm.name().to_string()),
        };
        let logs: Arc<Mutex<HashMap<String, TopicLog>>> = Arc::new(Mutex::new(HashMap::new()));
        let handler_vm = vm.clone();
        let server = ServerBootstrap::new(vm)
            .child_handler(move |ctx, frame| {
                let Ok(request) = ObjValue::decode(&frame.into_tainted(), &handler_vm) else {
                    return;
                };
                let response = handle(&logs, &request);
                let _ = ctx.write(&Payload::Tainted(response.encode()));
            })
            .bind(addr)?;
        Ok(BrokerServer {
            vm: vm.clone(),
            broker_name,
            server: Some(server),
            topics: topics.iter().map(|t| t.to_string()).collect(),
        })
    }

    /// The broker's listen address.
    pub fn addr(&self) -> NodeAddr {
        self.server.as_ref().expect("server running").local_addr()
    }

    /// The configured broker name (file-tainted in SIM runs).
    pub fn name(&self) -> &Tainted<String> {
        &self.broker_name
    }

    /// Registers this broker's topics with the nameserver; the broker
    /// name (and its config-file taint) crosses the wire here.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn register_with(&self, nameserver: NodeAddr) -> Result<(), JreError> {
        let channel = Bootstrap::new(&self.vm).connect(nameserver)?;
        let request = ObjValue::Record(
            "RegisterBroker".into(),
            vec![
                (
                    "brokerName".into(),
                    ObjValue::Str(self.broker_name.value().clone(), self.broker_name.taint()),
                ),
                ("addr".into(), ObjValue::str_plain(self.addr().to_string())),
                (
                    "topics".into(),
                    ObjValue::List(
                        self.topics
                            .iter()
                            .map(|t| ObjValue::str_plain(t.clone()))
                            .collect(),
                    ),
                ),
            ],
        );
        channel.call(&Payload::Tainted(request.encode()))?;
        channel.close();
        Ok(())
    }

    /// Stops the broker.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

fn handle(logs: &Arc<Mutex<HashMap<String, TopicLog>>>, request: &ObjValue) -> ObjValue {
    match request.class_name() {
        Some("SendMessage") => {
            let topic = request
                .field("topic")
                .and_then(ObjValue::as_str)
                .unwrap_or("")
                .to_string();
            let id = request.field("id").and_then(ObjValue::as_int).unwrap_or(0);
            let body = match request.field("body") {
                Some(ObjValue::Bytes(b)) => b.clone(),
                _ => TaintedBytes::new(),
            };
            logs.lock()
                .entry(topic)
                .or_default()
                .messages
                .push((id, body));
            ObjValue::Record(
                "SendAck".into(),
                vec![("msgId".into(), ObjValue::int_plain(id))],
            )
        }
        Some("PullMessage") => {
            let topic = request
                .field("topic")
                .and_then(ObjValue::as_str)
                .unwrap_or("");
            let offset = request
                .field("offset")
                .and_then(ObjValue::as_int)
                .unwrap_or(0)
                .max(0) as usize;
            let logs = logs.lock();
            match logs.get(topic).and_then(|l| l.messages.get(offset)) {
                Some((id, body)) => ObjValue::Record(
                    "PullResult".into(),
                    vec![
                        ("found".into(), ObjValue::int_plain(1)),
                        ("msgId".into(), ObjValue::int_plain(*id)),
                        ("body".into(), ObjValue::Bytes(body.clone())),
                    ],
                ),
                None => ObjValue::Record(
                    "PullResult".into(),
                    vec![("found".into(), ObjValue::int_plain(0))],
                ),
            }
        }
        _ => ObjValue::Record("UnknownRpc".into(), vec![]),
    }
}

/// Writes a broker config onto `vm`'s disk so SIM runs taint the name.
pub fn seed_config(vm: &Vm, name: &str) {
    vm.fs().write(
        "conf/broker.conf",
        format!("brokerName={name}").into_bytes(),
    );
}

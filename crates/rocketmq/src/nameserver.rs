//! The NameServer: topic-route registry.

use std::collections::HashMap;
use std::sync::Arc;

use dista_jre::{JreError, Logger, ObjValue, Vm};
use dista_netty::{NettyServer, ServerBootstrap};
use dista_simnet::NodeAddr;
use dista_taint::Payload;
use parking_lot::Mutex;

/// A running NameServer.
pub struct NameServer {
    server: Option<NettyServer>,
}

impl std::fmt::Debug for NameServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameServer").finish()
    }
}

impl NameServer {
    /// Starts the registry at `addr` on `vm`.
    ///
    /// # Errors
    ///
    /// Transport errors (address in use).
    pub fn start(vm: &Vm, addr: NodeAddr) -> Result<Self, JreError> {
        let routes: Arc<Mutex<HashMap<String, String>>> = Arc::new(Mutex::new(HashMap::new()));
        let log = Logger::new(vm);
        let handler_vm = vm.clone();
        let server = ServerBootstrap::new(vm)
            .child_handler(move |ctx, frame| {
                let Ok(request) = ObjValue::decode(&frame.into_tainted(), &handler_vm) else {
                    return;
                };
                let response = match request.class_name() {
                    Some("RegisterBroker") => {
                        let name_taint = match request.field("brokerName") {
                            Some(ObjValue::Str(name, taint)) => {
                                // SIM sink: the registration is logged;
                                // the broker name carries its config
                                // file's taint across the wire.
                                log.info_taint(&format!("new broker registered: {name}"), *taint);
                                Some((name.clone(), *taint))
                            }
                            _ => None,
                        };
                        let broker_addr = request
                            .field("addr")
                            .and_then(ObjValue::as_str)
                            .unwrap_or("")
                            .to_string();
                        if let Some(ObjValue::List(topics)) = request.field("topics") {
                            let mut routes = routes.lock();
                            for topic in topics {
                                if let Some(t) = topic.as_str() {
                                    routes.insert(t.to_string(), broker_addr.clone());
                                }
                            }
                        }
                        let _ = name_taint;
                        ObjValue::Record("RegisterAck".into(), vec![])
                    }
                    Some("GetRouteInfo") => {
                        let topic = request
                            .field("topic")
                            .and_then(ObjValue::as_str)
                            .unwrap_or("");
                        match routes.lock().get(topic) {
                            Some(addr) => ObjValue::Record(
                                "RouteInfo".into(),
                                vec![("brokerAddr".into(), ObjValue::str_plain(addr.clone()))],
                            ),
                            None => ObjValue::Record("RouteNotFound".into(), vec![]),
                        }
                    }
                    _ => ObjValue::Record("UnknownRpc".into(), vec![]),
                };
                let _ = ctx.write(&Payload::Tainted(response.encode()));
            })
            .bind(addr)?;
        Ok(NameServer {
            server: Some(server),
        })
    }

    /// The registry address.
    pub fn addr(&self) -> NodeAddr {
        self.server.as_ref().expect("server running").local_addr()
    }

    /// Stops the registry.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

//! Producer and consumer clients (pull model).

use std::str::FromStr;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

use dista_jre::{JreError, ObjValue, Vm};
use dista_netty::{Bootstrap, NettyChannel};
use dista_simnet::NodeAddr;
use dista_taint::{Payload, TagValue, Taint, TaintedBytes};

use crate::{CONSUMER_CLASS, PRODUCER_CLASS};

static NEXT_MSG_ID: AtomicI64 = AtomicI64::new(1);

fn lookup_route(vm: &Vm, nameserver: NodeAddr, topic: &str) -> Result<NodeAddr, JreError> {
    let channel = Bootstrap::new(vm).connect(nameserver)?;
    let request = ObjValue::Record(
        "GetRouteInfo".into(),
        vec![("topic".into(), ObjValue::str_plain(topic))],
    );
    let reply = channel.call(&Payload::Tainted(request.encode()))?;
    channel.close();
    let decoded = ObjValue::decode(&reply.into_tainted(), vm)?;
    if decoded.class_name() != Some("RouteInfo") {
        return Err(JreError::Protocol("no route for topic"));
    }
    let addr = decoded
        .field("brokerAddr")
        .and_then(ObjValue::as_str)
        .ok_or(JreError::Protocol("route missing broker addr"))?;
    NodeAddr::from_str(addr).map_err(|_| JreError::Protocol("malformed broker addr"))
}

/// A message received by a consumer (RocketMQ's `MessageExt`).
#[derive(Debug, Clone)]
pub struct MessageExt {
    /// Producer-assigned id.
    pub msg_id: i64,
    /// Topic it was pulled from.
    pub topic: String,
    /// Body with per-byte taints.
    pub body: TaintedBytes,
}

impl MessageExt {
    /// Union of the body's taints.
    pub fn taint(&self, vm: &Vm) -> Taint {
        self.body.taint_union(vm.store())
    }
}

/// A producer client.
#[derive(Debug)]
pub struct MqProducer {
    vm: Vm,
    broker: NettyChannel,
}

impl MqProducer {
    /// Resolves `topic` through the nameserver and connects to its
    /// broker.
    ///
    /// # Errors
    ///
    /// Route-lookup or transport errors.
    pub fn start(vm: &Vm, nameserver: NodeAddr, topic: &str) -> Result<Self, JreError> {
        let broker_addr = lookup_route(vm, nameserver, topic)?;
        Ok(MqProducer {
            vm: vm.clone(),
            broker: Bootstrap::new(vm).connect(broker_addr)?,
        })
    }

    /// `createMessage` — the SDT source point: the body is tainted with
    /// a fresh message tag when registered.
    pub fn create_message(&self, text: &str) -> TaintedBytes {
        let id = NEXT_MSG_ID.load(Ordering::Relaxed);
        let taint = self.vm.source_point(
            PRODUCER_CLASS,
            "createMessage",
            TagValue::str(format!("mq_message_{id}")),
        );
        TaintedBytes::uniform(text.as_bytes().to_vec(), taint)
    }

    /// Sends a message body to `topic`; returns the message id.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn send(&self, topic: &str, body: TaintedBytes) -> Result<i64, JreError> {
        let id = NEXT_MSG_ID.fetch_add(1, Ordering::Relaxed);
        let request = ObjValue::Record(
            "SendMessage".into(),
            vec![
                ("topic".into(), ObjValue::str_plain(topic)),
                ("id".into(), ObjValue::int_plain(id)),
                ("body".into(), ObjValue::Bytes(body)),
            ],
        );
        let reply = self.broker.call(&Payload::Tainted(request.encode()))?;
        let decoded = ObjValue::decode(&reply.into_tainted(), &self.vm)?;
        if decoded.class_name() != Some("SendAck") {
            return Err(JreError::Protocol("send not acknowledged"));
        }
        Ok(id)
    }

    /// Closes the broker channel.
    pub fn close(&self) {
        self.broker.close();
    }
}

/// A pull-model consumer client.
#[derive(Debug)]
pub struct MqConsumer {
    vm: Vm,
    broker: NettyChannel,
    topic: String,
    offset: AtomicI64,
}

impl MqConsumer {
    /// Resolves `topic` and connects to its broker.
    ///
    /// # Errors
    ///
    /// Route-lookup or transport errors.
    pub fn start(vm: &Vm, nameserver: NodeAddr, topic: &str) -> Result<Self, JreError> {
        let broker_addr = lookup_route(vm, nameserver, topic)?;
        Ok(MqConsumer {
            vm: vm.clone(),
            broker: Bootstrap::new(vm).connect(broker_addr)?,
            topic: topic.to_string(),
            offset: AtomicI64::new(0),
        })
    }

    /// One pull attempt; `None` if no message at the current offset.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn try_pull(&self) -> Result<Option<MessageExt>, JreError> {
        let offset = self.offset.load(Ordering::Relaxed);
        let request = ObjValue::Record(
            "PullMessage".into(),
            vec![
                ("topic".into(), ObjValue::str_plain(self.topic.clone())),
                ("offset".into(), ObjValue::int_plain(offset)),
            ],
        );
        let reply = self.broker.call(&Payload::Tainted(request.encode()))?;
        let decoded = ObjValue::decode(&reply.into_tainted(), &self.vm)?;
        if decoded.field("found").and_then(ObjValue::as_int) != Some(1) {
            return Ok(None);
        }
        self.offset.fetch_add(1, Ordering::Relaxed);
        let msg_id = decoded
            .field("msgId")
            .and_then(ObjValue::as_int)
            .unwrap_or(0);
        let body = match decoded.field("body") {
            Some(ObjValue::Bytes(b)) => b.clone(),
            _ => TaintedBytes::new(),
        };
        let message = MessageExt {
            msg_id,
            topic: self.topic.clone(),
            body,
        };
        // The SDT sink: consumeMessage on the received MessageExt.
        self.vm
            .sink_point(CONSUMER_CLASS, "consumeMessage", message.taint(&self.vm));
        Ok(Some(message))
    }

    /// Polls until a message arrives.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`JreError::Protocol`] after the poll budget.
    pub fn pull_blocking(&self) -> Result<MessageExt, JreError> {
        for _ in 0..5000 {
            if let Some(message) = self.try_pull()? {
                return Ok(message);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        Err(JreError::Protocol("no message arrived"))
    }

    /// Closes the broker channel.
    pub fn close(&self) {
        self.broker.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{seed_config, BrokerServer};
    use crate::nameserver::NameServer;
    use dista_core::{Cluster, Mode};
    use dista_jre::{FILE_INPUT_STREAM_CLASS, LOGGER_CLASS};
    use dista_taint::{MethodDesc, SourceSinkSpec};

    fn sdt_spec() -> SourceSinkSpec {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(PRODUCER_CLASS, "createMessage"))
            .add_sink(MethodDesc::new(CONSUMER_CLASS, "consumeMessage"));
        spec
    }

    /// Nameserver on node 1, broker on node 2, producer/consumer on
    /// node 3 (the paper's three-peer deployment + client).
    fn stack(mode: Mode, spec: SourceSinkSpec) -> (Cluster, NameServer, BrokerServer) {
        let cluster = Cluster::builder(mode)
            .nodes("mq", 3)
            .spec(spec)
            .build()
            .unwrap();
        seed_config(cluster.vm(1), "broker-a");
        let ns = NameServer::start(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 9876)).unwrap();
        let broker = BrokerServer::start(
            cluster.vm(1),
            NodeAddr::new([10, 0, 0, 2], 10911),
            &["TopicTest"],
        )
        .unwrap();
        broker.register_with(ns.addr()).unwrap();
        (cluster, ns, broker)
    }

    #[test]
    fn sdt_message_taint_reaches_consumer() {
        let (cluster, ns, broker) = stack(Mode::Dista, sdt_spec());
        let producer = MqProducer::start(cluster.vm(2), ns.addr(), "TopicTest").unwrap();
        let long_text = "rocketmq payload ".repeat(300);
        let body = producer.create_message(&long_text);
        producer.send("TopicTest", body).unwrap();

        let consumer = MqConsumer::start(cluster.vm(2), ns.addr(), "TopicTest").unwrap();
        let message = consumer.pull_blocking().unwrap();
        assert_eq!(message.body.len(), long_text.len());
        let tags = cluster
            .vm(2)
            .store()
            .tag_values(message.taint(cluster.vm(2)));
        assert_eq!(tags.len(), 1);
        assert!(tags[0].starts_with("mq_message_"), "got {tags:?}");
        let report = cluster.vm(2).sink_report();
        assert!(report
            .at("DefaultMQPushConsumer.consumeMessage")
            .iter()
            .any(|e| e.is_tainted()));
        producer.close();
        consumer.close();
        broker.shutdown();
        ns.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn phosphor_drops_the_message_taint() {
        let (cluster, ns, broker) = stack(Mode::Phosphor, sdt_spec());
        let producer = MqProducer::start(cluster.vm(2), ns.addr(), "TopicTest").unwrap();
        let body = producer.create_message("text");
        assert!(!body.taint_union(cluster.vm(2).store()).is_empty());
        producer.send("TopicTest", body).unwrap();
        let consumer = MqConsumer::start(cluster.vm(2), ns.addr(), "TopicTest").unwrap();
        let message = consumer.pull_blocking().unwrap();
        assert!(message.taint(cluster.vm(2)).is_empty());
        producer.close();
        consumer.close();
        broker.shutdown();
        ns.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn sim_broker_config_taint_reaches_nameserver_log() {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
            .add_sink(MethodDesc::new(LOGGER_CLASS, "info"));
        let (cluster, ns, broker) = stack(Mode::Dista, spec);
        let report = cluster.vm(0).sink_report();
        let events = report.at("LOG.info");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tags.len(), 1);
        assert!(events[0].tags[0].starts_with("conf/broker.conf#r"));
        broker.shutdown();
        ns.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn pull_on_empty_topic_is_none() {
        let (cluster, ns, broker) = stack(Mode::Dista, SourceSinkSpec::new());
        let consumer = MqConsumer::start(cluster.vm(2), ns.addr(), "TopicTest").unwrap();
        assert!(consumer.try_pull().unwrap().is_none());
        consumer.close();
        broker.shutdown();
        ns.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn unknown_topic_has_no_route() {
        let (cluster, ns, broker) = stack(Mode::Dista, SourceSinkSpec::new());
        assert!(matches!(
            MqProducer::start(cluster.vm(2), ns.addr(), "NoSuchTopic"),
            Err(JreError::Protocol(_))
        ));
        broker.shutdown();
        ns.shutdown();
        cluster.shutdown();
    }
}

//! # dista-rocketmq — a mini RocketMQ on the Netty-like transport
//!
//! The paper's second message-middleware subject (Table III): "RocketMQ —
//! TCP, UDP, HTTP(S) — Long text message distribution". RocketMQ's real
//! remoting layer is built on Netty, so this reproduction runs on
//! `dista-netty` — every hop (producer→nameserver, producer→broker,
//! consumer→broker) crosses the instrumented NIO boundary.
//!
//! Roles:
//! * [`NameServer`] — topic-route registry; brokers register, clients
//!   look up routes.
//! * [`BrokerServer`] — per-topic message store with send/pull RPCs.
//! * [`MqProducer`] / [`MqConsumer`] — clients on their own nodes;
//!   consumers use RocketMQ's pull model.
//!
//! Taint scenarios (Table IV):
//! * **SDT** — source: the producer's `Message`
//!   (`DefaultMQProducer.createMessage`); sink: the `MessageExt` received
//!   on the consumer (`DefaultMQPushConsumer.consumeMessage`).
//! * **SIM** — source: the broker's `conf/broker.conf` read; sink:
//!   `LOG.info` on the nameserver (broker registration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod client;
mod nameserver;

pub use broker::{seed_config, BrokerServer};
pub use client::{MessageExt, MqConsumer, MqProducer};
pub use nameserver::NameServer;

/// SDT source descriptor class.
pub const PRODUCER_CLASS: &str = "DefaultMQProducer";
/// SDT sink descriptor class.
pub const CONSUMER_CLASS: &str = "DefaultMQPushConsumer";

//! The lock-light metrics registry.
//!
//! A [`MetricsRegistry`] is a named collection of *instruments* —
//! [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, optionally
//! labeled into families (`boundary_data_bytes{node=n1,dir=out}`).
//! Instrument handles are cheap `Arc` clones around atomics: hot paths
//! resolve a handle once at construction time and then pay one relaxed
//! atomic op per update. The registry itself is only locked when a new
//! instrument is interned or a snapshot is taken.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A label set: sorted `(key, value)` pairs identifying one member of an
/// instrument family.
pub type Labels = Vec<(String, String)>;

fn label_vec(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

/// Monotonically increasing event/byte counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not connected to any registry (still functional).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts `n` (rollback of an optimistic count).
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (between benchmark phases).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating point gauge (stored as `f64` bits).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not connected to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// Fixed-bucket latency/size histogram.
///
/// Bucket bounds are inclusive upper edges in the instrument's unit
/// (microseconds for latencies, items for batch sizes); one implicit
/// `+Inf` bucket catches the rest. Observation is two relaxed atomic adds
/// plus a linear scan over a handful of bounds — no locks.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells; the last one is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Default bounds for latency histograms, in microseconds.
pub const LATENCY_US_BOUNDS: &[u64] = &[10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000];

/// Default bounds for batch-size histograms, in items.
pub const BATCH_SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

impl Histogram {
    /// Creates a detached histogram with the given inclusive upper
    /// bucket bounds (must be sorted ascending).
    pub fn detached(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds sorted");
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bucket bound containing the `q`-quantile observation
    /// (`0.0 <= q <= 1.0`), or 0 when empty. Resolution is the bucket
    /// grid: p99 of values that all landed in the `<=500` bucket reports
    /// 500. Observations past the last bound report `u64::MAX` — a
    /// deliberately alarming value for latency SLO gates.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bound, count) in self.buckets() {
            seen += count;
            if seen >= rank {
                return bound;
            }
        }
        u64::MAX
    }

    /// `(upper_bound, count)` pairs; the final pair uses `u64::MAX` as
    /// the overflow bound.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.inner
            .bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner.sum.store(0, Ordering::Relaxed);
    }

    /// The inclusive upper bucket bounds this histogram was built with
    /// (the implicit overflow bucket is not listed).
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Folds `other`'s observations into `self` bucket-by-bucket.
    ///
    /// Merging is how the telemetry collector combines per-VM
    /// histograms into one cluster-wide distribution: counts, sums and
    /// bucket tallies add, so `count`, `sum`, `mean` are exact after a
    /// merge and `quantile` stays correct to bucket resolution (see the
    /// `merge_prop` property suite for the formal bound). `other` is
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms on
    /// different grids silently misbins, so it is refused outright.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.inner.bounds, other.inner.bounds,
            "histogram merge requires identical bucket bounds"
        );
        for (mine, theirs) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.inner.count.fetch_add(other.count(), Ordering::Relaxed);
        self.inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Rebuilds a detached histogram from dumped `(upper_bound, count)`
    /// pairs (as produced by [`Histogram::buckets`] and carried in
    /// [`SampleValue::Histogram`]) plus the observed sum. The final pair
    /// must be the `u64::MAX` overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or its last bound is not the
    /// overflow marker.
    pub fn from_buckets(buckets: &[(u64, u64)], sum: u64) -> Self {
        assert!(
            buckets.last().is_some_and(|(b, _)| *b == u64::MAX),
            "bucket dump must end with the u64::MAX overflow bucket"
        );
        let bounds: Vec<u64> = buckets[..buckets.len() - 1]
            .iter()
            .map(|(b, _)| *b)
            .collect();
        let count: u64 = buckets.iter().map(|(_, c)| *c).sum();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                buckets: buckets.iter().map(|(_, c)| AtomicU64::new(*c)).collect(),
                count: AtomicU64::new(count),
                sum: AtomicU64::new(sum),
            }),
        }
    }
}

#[derive(Default)]
struct RegistryState {
    counters: BTreeMap<(String, Labels), Counter>,
    gauges: BTreeMap<(String, Labels), Gauge>,
    histograms: BTreeMap<(String, Labels), Histogram>,
}

/// A named collection of instruments shared by every layer of one
/// simulated cluster.
///
/// Cloning is cheap; all clones observe the same instruments. See the
/// module docs for the locking discipline.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    state: Arc<Mutex<RegistryState>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &st.counters.len())
            .field("gauges", &st.gauges.len())
            .field("histograms", &st.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The unlabeled counter `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter `name{labels}` (created on first use).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.state
            .lock()
            .counters
            .entry((name.to_string(), label_vec(labels)))
            .or_default()
            .clone()
    }

    /// The unlabeled gauge `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge `name{labels}` (created on first use).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.state
            .lock()
            .gauges
            .entry((name.to_string(), label_vec(labels)))
            .or_default()
            .clone()
    }

    /// The unlabeled histogram `name` (created on first use with the
    /// given bounds; later calls reuse the existing instrument).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// The histogram `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        self.state
            .lock()
            .histograms
            .entry((name.to_string(), label_vec(labels)))
            .or_insert_with(|| Histogram::detached(bounds))
            .clone()
    }

    /// Point-in-time dump of every instrument.
    pub fn snapshot(&self) -> MetricsDump {
        let st = self.state.lock();
        let mut samples = Vec::new();
        for ((name, labels), c) in &st.counters {
            samples.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Counter(c.get()),
            });
        }
        for ((name, labels), g) in &st.gauges {
            samples.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Gauge(g.get()),
            });
        }
        for ((name, labels), h) in &st.histograms {
            samples.push(Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: SampleValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                },
            });
        }
        MetricsDump { samples }
    }

    /// Zeroes every instrument (between benchmark phases). Handles stay
    /// valid.
    pub fn reset(&self) {
        let st = self.state.lock();
        for c in st.counters.values() {
            c.reset();
        }
        for g in st.gauges.values() {
            g.reset();
        }
        for h in st.histograms.values() {
            h.reset();
        }
    }
}

/// One instrument's value in a [`MetricsDump`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// `(upper_bound, count)` pairs, overflow bucket last.
        buckets: Vec<(u64, u64)>,
    },
}

/// One named, labeled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// The value.
    pub value: SampleValue,
}

impl Sample {
    fn render_key(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            let labels: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{}{{{}}}", self.name, labels.join(","))
        }
    }
}

/// Point-in-time view of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsDump {
    /// Every sample, sorted by (kind, name, labels).
    pub samples: Vec<Sample>,
}

impl MetricsDump {
    /// Sum of every counter named `name` across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// The gauge named `name` with exactly these labels, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let want = label_vec(labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .and_then(|s| match s.value {
                SampleValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Plain-text rendering, one instrument per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{} {v}\n", s.render_key()));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{} {v:.4}\n", s.render_key()));
                }
                SampleValue::Histogram { count, sum, .. } => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        *sum as f64 / *count as f64
                    };
                    out.push_str(&format!(
                        "{} count={count} sum={sum} mean={mean:.1}\n",
                        s.render_key()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_walks_bucket_bounds() {
        let h = Histogram::detached(&[10, 100, 1000]);
        assert_eq!(h.quantile(0.99), 0, "empty histogram");
        for _ in 0..90 {
            h.observe(5); // <=10 bucket
        }
        for _ in 0..9 {
            h.observe(50); // <=100 bucket
        }
        h.observe(5000); // overflow
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.9), 10);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), u64::MAX, "overflow observation");
    }

    #[test]
    fn counters_are_shared_by_name_and_labels() {
        let r = MetricsRegistry::new();
        r.counter("hits").add(2);
        r.counter("hits").inc();
        assert_eq!(r.counter("hits").get(), 3);
        r.counter_with("hits", &[("node", "n1")]).inc();
        assert_eq!(r.counter("hits").get(), 3, "labeled member is distinct");
        assert_eq!(r.counter_with("hits", &[("node", "n1")]).get(), 1);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let r = MetricsRegistry::new();
        r.counter_with("x", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(r.counter_with("x", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    fn gauge_set_get() {
        let r = MetricsRegistry::new();
        r.gauge("ratio").set(5.25);
        assert_eq!(r.gauge("ratio").get(), 5.25);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::detached(&[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5_055);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(10, 1), (100, 1), (u64::MAX, 1)]);
        assert!((h.mean() - 1685.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_collects_everything() {
        let r = MetricsRegistry::new();
        r.counter("c").add(7);
        r.gauge("g").set(1.5);
        r.histogram("h", &[1]).observe(9);
        let dump = r.snapshot();
        assert_eq!(dump.samples.len(), 3);
        assert_eq!(dump.counter_total("c"), 7);
        assert_eq!(dump.gauge_value("g", &[]), Some(1.5));
        let text = dump.render_text();
        assert!(text.contains("c 7"));
        assert!(text.contains("g 1.5000"));
        assert!(text.contains("h count=1 sum=9"));
    }

    #[test]
    fn counter_total_sums_family_members() {
        let r = MetricsRegistry::new();
        r.counter_with("bytes", &[("node", "n1")]).add(3);
        r.counter_with("bytes", &[("node", "n2")]).add(4);
        assert_eq!(r.snapshot().counter_total("bytes"), 7);
    }

    #[test]
    fn merge_adds_buckets_counts_and_sums() {
        let a = Histogram::detached(&[10, 100]);
        let b = Histogram::detached(&[10, 100]);
        a.observe(5);
        a.observe(500);
        b.observe(5);
        b.observe(50);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 560);
        assert_eq!(a.buckets(), vec![(10, 2), (100, 1), (u64::MAX, 1)]);
        // `b` is untouched.
        assert_eq!(b.count(), 2);
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn merge_refuses_mismatched_bounds() {
        Histogram::detached(&[10]).merge(&Histogram::detached(&[20]));
    }

    #[test]
    fn from_buckets_round_trips_a_dump() {
        let h = Histogram::detached(&[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        let rebuilt = Histogram::from_buckets(&h.buckets(), h.sum());
        assert_eq!(rebuilt.count(), 3);
        assert_eq!(rebuilt.sum(), h.sum());
        assert_eq!(rebuilt.buckets(), h.buckets());
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));
        assert_eq!(rebuilt.bounds(), &[10, 100]);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        c.add(5);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("c").get(), 1);
    }
}

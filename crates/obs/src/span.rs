//! Wire-propagated trace context: span ids and the per-VM maps that
//! link them into parent/child chains.
//!
//! A *span* is one step of a taint's cluster journey: the root span is
//! minted with the taint at its source, and every boundary crossing
//! under the v2 wire protocol mints a child span whose id travels to
//! the peer inside an annotation frame (`dista-jre`'s `OP_ANNOT`). The
//! receiving VM binds the delivered gids to the crossing span, so a
//! later re-encode on that VM names it as the parent — the chain
//! `root → crossing₁ → crossing₂ → …` reconstructs the exact path
//! without any gid-matching inference.
//!
//! Span ids are drawn from one cluster-shared [`crate::Observability`]
//! allocator (all VMs live in one process), so ids are unique across
//! the cluster and `0` is reserved to mean "no span".

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// A per-VM map from a 32-bit id (local taint id or global taint id —
/// the two uses never share one tracker) to the span that owns it on
/// this VM.
///
/// Two trackers exist per VM:
///
/// * **taint → root span**: written when a source mints, read when the
///   Taint Map registers the taint and the root span transfers to the
///   gid.
/// * **gid → delivering span**: written at registration (root span) and
///   on every inbound boundary decode (crossing span), read when an
///   outbound encode needs its parent and when a Taint Map lookup
///   event wants the span that delivered the gid.
///
/// A disabled tracker ([`SpanTracker::disabled`]) ignores writes and
/// answers `0`, so call sites never branch on "is tracing on".
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    inner: Option<Arc<Mutex<HashMap<u32, u64>>>>,
}

impl SpanTracker {
    /// A tracker whose every operation is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled, empty tracker.
    pub fn new() -> Self {
        SpanTracker {
            inner: Some(Arc::new(Mutex::new(HashMap::new()))),
        }
    }

    /// Whether bindings are actually retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Binds `id` to `span`, replacing any earlier binding (the most
    /// recent delivery wins — that is the parent of the next hop).
    /// Binding to span 0 is a no-op: an annotation-less crossing must
    /// not erase what is known about the gid.
    pub fn bind(&self, id: u32, span: u64) {
        if span == 0 {
            return;
        }
        if let Some(map) = &self.inner {
            map.lock().insert(id, span);
        }
    }

    /// The span owning `id`, or 0 when unknown (or disabled).
    pub fn get(&self, id: u32) -> u64 {
        match &self.inner {
            Some(map) => map.lock().get(&id).copied().unwrap_or(0),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracker_ignores_bindings() {
        let t = SpanTracker::disabled();
        assert!(!t.is_enabled());
        t.bind(1, 7);
        assert_eq!(t.get(1), 0);
    }

    #[test]
    fn latest_binding_wins_and_zero_is_ignored() {
        let t = SpanTracker::new();
        assert!(t.is_enabled());
        assert_eq!(t.get(42), 0, "unknown id answers 0");
        t.bind(42, 7);
        t.bind(42, 9);
        assert_eq!(t.get(42), 9);
        t.bind(42, 0);
        assert_eq!(t.get(42), 9, "span 0 must not erase a binding");
    }

    #[test]
    fn clones_share_the_map() {
        let a = SpanTracker::new();
        let b = a.clone();
        a.bind(1, 5);
        assert_eq!(b.get(1), 5);
    }
}

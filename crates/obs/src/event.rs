//! Structured flight-recorder events.
//!
//! Events are deliberately built from primitive types only (strings,
//! integers, byte ranges) so that `dista-obs` stays a leaf crate: every
//! layer of the stack — taint tree, JNI boundary, Taint Map client,
//! cluster — can record events without `dista-obs` depending on any of
//! them. Cross-VM ordering comes from a cluster-shared logical clock
//! ([`crate::ObsClock`]); each event carries the sequence number it drew.

/// Which transport a boundary crossing used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Stream socket (TCP).
    Tcp,
    /// Datagram socket (UDP).
    Udp,
    /// Local file write/read through the simulated FS.
    File,
}

impl Transport {
    /// Lower-case wire name, used by exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Transport::Tcp => "tcp",
            Transport::Udp => "udp",
            Transport::File => "file",
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One Global-ID-bearing byte range inside an encoded wire payload.
///
/// `start..end` index into the *data* bytes of the payload (not the
/// expanded wire bytes), matching how the paper reports "bytes 17..21
/// of the message carried gid 42".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GidSpan {
    /// The global taint id carried by the range.
    pub gid: u32,
    /// First tainted data byte (inclusive).
    pub start: usize,
    /// One past the last tainted data byte.
    pub end: usize,
}

/// The payload of one recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEventKind {
    /// A source point minted a fresh local taint.
    SourceMinted {
        /// Local taint id on the minting VM.
        taint: u32,
        /// The source tag, e.g. `zk.zxid`.
        tag: String,
        /// Root trace span minted alongside the taint (0 when trace
        /// context is off).
        span: u64,
    },
    /// The Taint Map assigned `gid` to a serialized local taint.
    TaintMapRegister {
        /// Local taint id on the registering VM.
        taint: u32,
        /// The global id the service handed back.
        gid: u32,
        /// Root span of the minted taint, now bound to the gid (0 when
        /// trace context is off).
        span: u64,
    },
    /// A VM resolved `gid` back into a local taint.
    TaintMapLookup {
        /// The global id that was looked up.
        gid: u32,
        /// The local taint id it interned to on this VM.
        taint: u32,
        /// The crossing span that delivered the gid to this VM (0 when
        /// unknown — v1 peer or trace context off).
        span: u64,
    },
    /// The client redialed a Taint Map shard after a primary failure.
    TaintMapFailover {
        /// Index of the shard that failed over.
        shard: usize,
    },
    /// Outbound boundary: data bytes were expanded into wire records.
    BoundaryEncode {
        /// Transport the payload left on.
        transport: Transport,
        /// Sender address, `ip:port`.
        from: String,
        /// Receiver address, `ip:port`.
        to: String,
        /// Plain data byte count.
        data_bytes: usize,
        /// Expanded wire byte count.
        wire_bytes: usize,
        /// Tainted ranges of the data bytes.
        spans: Vec<GidSpan>,
        /// Crossing span id carried in the v2 annotation frame (0 when
        /// no annotation was sent — v1 wire or untainted payload).
        span: u64,
        /// Parent span — the span that delivered the tainted gids to
        /// this VM, or the root span minted at the source (0 = none).
        parent: u64,
    },
    /// Inbound boundary: wire records were collapsed back into data.
    BoundaryDecode {
        /// Transport the payload arrived on.
        transport: Transport,
        /// Sender address, `ip:port`.
        from: String,
        /// Receiver address, `ip:port`.
        to: String,
        /// Recovered data byte count.
        data_bytes: usize,
        /// Consumed wire byte count.
        wire_bytes: usize,
        /// Tainted ranges of the recovered data bytes.
        spans: Vec<GidSpan>,
        /// Crossing span id received in the v2 annotation frame (0 when
        /// the peer sent none — v1 wire or untainted payload). A
        /// nonzero value pairs this decode exactly with the encode that
        /// minted the same span.
        span: u64,
    },
    /// A sink point observed a tainted value.
    SinkHit {
        /// Sink identifier, e.g. `LOG.info`.
        sink: String,
        /// Source tags reaching the sink.
        tags: Vec<String>,
        /// Global ids known for the sunk taint (empty if never crossed
        /// a boundary).
        gids: Vec<u32>,
    },
    /// Boundary decode could not resolve `gid` (owning shard
    /// unreachable past the retry budget) and attached a `PendingGid`
    /// sentinel taint instead of dropping the taint.
    DegradedLookup {
        /// The unresolved global id.
        gid: u32,
        /// Index of the unreachable shard.
        shard: usize,
    },
    /// The reconciler resolved a pending sentinel after the partition
    /// healed: `gid` now maps to the correct local taint.
    PendingResolved {
        /// The global id that was pending.
        gid: u32,
        /// The correct local taint it resolved to.
        taint: u32,
    },
    /// A chaos-layer fault applied (partition, heal, reset, crash or
    /// restart trigger), described in the fault log's wording.
    FaultInjected {
        /// Human-readable description of the applied fault.
        fault: String,
    },
    /// A Taint Map shard primary was crashed ungracefully.
    ShardCrashed {
        /// Index of the crashed shard.
        shard: usize,
    },
    /// A crashed shard primary was restarted from its write-ahead
    /// snapshot.
    ShardRestarted {
        /// Index of the restarted shard.
        shard: usize,
        /// Registrations recovered by replaying the snapshot log.
        replayed: u64,
    },
    /// A live resharding cut over: residue class `class` gained a new
    /// tail server owning gids at and above `lo_gid`, and the class
    /// table advanced to `epoch` (stale-epoch clients refetch).
    ShardSplit {
        /// Residue class whose tail range migrated.
        class: usize,
        /// Extended server index of the new range owner.
        target: usize,
        /// First gid of the migrated range.
        lo_gid: u32,
        /// The class table epoch after the cutover.
        epoch: u64,
    },
    /// An interrupted split was repaired: crashed sides restarted from
    /// their WALs and the copy re-armed from its durable checkpoint.
    SplitHealed {
        /// Residue class of the in-flight split.
        class: usize,
    },
    /// A shard's WAL was folded into a fresh snapshot and truncated,
    /// bounding its next restart's replay by live records.
    WalCompacted {
        /// Base or extended index of the compacted server.
        shard: usize,
        /// Records folded into the snapshot.
        records: u64,
    },
    /// A cross-system pipeline harness completed a named stage on this
    /// node (ingest → store → analyze, or tenant delivery). Stage
    /// events let a trace reader segment one provenance narrative by
    /// application boundary.
    PipelineStage {
        /// Stage label, e.g. `ingest`.
        stage: String,
        /// Records the stage handled.
        records: u64,
    },
}

impl ObsEventKind {
    /// Short kind name, used by exporters and the text report.
    pub fn name(&self) -> &'static str {
        match self {
            ObsEventKind::SourceMinted { .. } => "source_minted",
            ObsEventKind::TaintMapRegister { .. } => "taintmap_register",
            ObsEventKind::TaintMapLookup { .. } => "taintmap_lookup",
            ObsEventKind::TaintMapFailover { .. } => "taintmap_failover",
            ObsEventKind::BoundaryEncode { .. } => "boundary_encode",
            ObsEventKind::BoundaryDecode { .. } => "boundary_decode",
            ObsEventKind::SinkHit { .. } => "sink_hit",
            ObsEventKind::DegradedLookup { .. } => "degraded_lookup",
            ObsEventKind::PendingResolved { .. } => "pending_resolved",
            ObsEventKind::FaultInjected { .. } => "fault_injected",
            ObsEventKind::ShardCrashed { .. } => "shard_crashed",
            ObsEventKind::ShardRestarted { .. } => "shard_restarted",
            ObsEventKind::ShardSplit { .. } => "shard_split",
            ObsEventKind::SplitHealed { .. } => "split_healed",
            ObsEventKind::WalCompacted { .. } => "wal_compacted",
            ObsEventKind::PipelineStage { .. } => "pipeline_stage",
        }
    }
}

/// One entry in a VM's flight-recorder ring.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Cluster-wide logical sequence number (shared clock).
    pub seq: u64,
    /// Name of the VM that recorded the event.
    pub node: String,
    /// The event payload.
    pub kind: ObsEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let k = ObsEventKind::SourceMinted {
            taint: 1,
            tag: "t".into(),
            span: 0,
        };
        assert_eq!(k.name(), "source_minted");
        assert_eq!(Transport::Tcp.to_string(), "tcp");
        let k = ObsEventKind::ShardSplit {
            class: 0,
            target: 2,
            lo_gid: 9,
            epoch: 1,
        };
        assert_eq!(k.name(), "shard_split");
        assert_eq!(
            ObsEventKind::SplitHealed { class: 0 }.name(),
            "split_healed"
        );
        let k = ObsEventKind::WalCompacted {
            shard: 1,
            records: 3,
        };
        assert_eq!(k.name(), "wal_compacted");
        let k = ObsEventKind::PipelineStage {
            stage: "ingest".into(),
            records: 4,
        };
        assert_eq!(k.name(), "pipeline_stage");
    }
}

//! Cluster-wide taint telemetry for the DisTA reproduction.
//!
//! This crate is the observability layer threaded through the whole
//! stack: a lock-light [`MetricsRegistry`] of atomic instruments, a
//! per-VM [`FlightRecorder`] ring of structured [`ObsEvent`]s, a
//! provenance reconstruction ([`reconstruct`]) that turns those events
//! into the paper's "minted on n1 → crossed socket n1→n2 → sunk at
//! LOG.info on n3" narrative, and exporters for JSONL, Chrome-trace and
//! plain text.
//!
//! `dista-obs` is deliberately a *leaf* crate — events and instruments
//! are built from primitive types only — so `dista-simnet`,
//! `dista-taint`, `dista-jre`, `dista-taintmap`, `dista-netty` and
//! `dista-core` can all depend on it without cycles.
//!
//! # Cost model
//!
//! * Instrument handles are `Arc`-wrapped atomics resolved once at
//!   construction sites; updates are single relaxed atomic ops.
//! * The flight recorder's [`FlightRecorder::record_with`] takes a
//!   closure, and a disabled recorder never calls it — plain-mode runs
//!   pay a branch on an `Option` and nothing else. `tests/mode_matrix.rs`
//!   guards this invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod event;
mod export;
mod provenance;
mod recorder;
mod registry;
mod span;
mod telemetry;

pub use attribution::{
    ObsReport, PhaseCost, PhaseHandle, PhaseSet, PipelineCostReport, StageCost, StageSet, PHASES,
    PHASE_CODEC_DECODE, PHASE_CODEC_ENCODE, PHASE_MAP_RPC, PHASE_TAINT_TREE, PIPELINE_STAGES,
    STAGE_ANALYZE, STAGE_DELIVER, STAGE_INGEST, STAGE_STORE,
};
pub use event::{GidSpan, ObsEvent, ObsEventKind, Transport};
pub use export::{to_chrome_trace, to_jsonl, to_text_report};
pub use provenance::{reconstruct, reconstruct_inferred, Hop, ProvenanceTrace};
pub use recorder::{FlightRecorder, ObsClock};
pub use registry::{
    Counter, Gauge, Histogram, Labels, MetricsDump, MetricsRegistry, Sample, SampleValue,
    BATCH_SIZE_BOUNDS, LATENCY_US_BOUNDS,
};
pub use span::SpanTracker;
pub use telemetry::{AgentScope, Collector, CollectorConfig, PushPoint, TelemetryAgent};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for cluster observability.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Capacity of each VM's flight-recorder ring, in events.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 8_192,
        }
    }
}

#[derive(Debug)]
struct ObsShared {
    registry: MetricsRegistry,
    clock: ObsClock,
    config: ObsConfig,
    /// Cluster-wide span id allocator; 0 is reserved for "no span", so
    /// the first id handed out is 1.
    span_next: AtomicU64,
}

/// The observability context handed to every layer of one cluster.
///
/// A disabled context ([`Observability::disabled`]) hands out
/// disconnected instruments and no-op recorders, so call sites never
/// branch on "is observability on" themselves. Cloning is cheap and all
/// clones share the same registry and clock.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    shared: Option<Arc<ObsShared>>,
}

impl Observability {
    /// A context where everything is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled context with a fresh registry and clock.
    pub fn new(config: ObsConfig) -> Self {
        Self::with_registry(config, MetricsRegistry::new())
    }

    /// An enabled context writing into an existing registry (so network
    /// metrics and taint metrics land in one place).
    pub fn with_registry(config: ObsConfig, registry: MetricsRegistry) -> Self {
        Observability {
            shared: Some(Arc::new(ObsShared {
                registry,
                clock: ObsClock::new(),
                config,
                span_next: AtomicU64::new(1),
            })),
        }
    }

    /// Whether this context actually records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The shared registry, if enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.shared.as_deref().map(|s| &s.registry)
    }

    /// The shared cluster clock, if enabled.
    pub fn clock(&self) -> Option<&ObsClock> {
        self.shared.as_deref().map(|s| &s.clock)
    }

    /// A flight recorder for VM `node`: enabled (and stamped from the
    /// shared clock) when this context is enabled, a no-op otherwise.
    /// Ring overflow is surfaced as `flight_dropped_events{node=…}` in
    /// the shared registry.
    pub fn recorder_for(&self, node: &str) -> FlightRecorder {
        match &self.shared {
            Some(s) => FlightRecorder::with_drop_counter(
                node,
                s.config.ring_capacity,
                s.clock.clone(),
                s.registry
                    .counter_with("flight_dropped_events", &[("node", node)]),
            ),
            None => FlightRecorder::disabled(),
        }
    }

    /// Mints a fresh cluster-unique trace span id, or 0 when disabled.
    pub fn next_span(&self) -> u64 {
        match &self.shared {
            Some(s) => s.span_next.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// A [`SpanTracker`] matching this context's state: enabled maps
    /// when tracing is on, a no-op tracker otherwise.
    pub fn span_tracker(&self) -> SpanTracker {
        if self.is_enabled() {
            SpanTracker::new()
        } else {
            SpanTracker::disabled()
        }
    }

    /// A [`PhaseSet`] for VM `node`, wired into the shared registry
    /// when enabled, disabled handles otherwise.
    pub fn phases_for(&self, node: &str) -> PhaseSet {
        match self.registry() {
            Some(reg) => PhaseSet::for_node(reg, node),
            None => PhaseSet::disabled(),
        }
    }

    /// A pipeline [`StageSet`] for VM `node`, wired into the shared
    /// registry when enabled, disabled handles otherwise.
    pub fn stages_for(&self, node: &str) -> StageSet {
        match self.registry() {
            Some(reg) => StageSet::for_node(reg, node),
            None => StageSet::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_hands_out_noops() {
        let obs = Observability::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.registry().is_none());
        assert!(!obs.recorder_for("n1").is_enabled());
    }

    #[test]
    fn enabled_context_shares_clock_across_recorders() {
        let obs = Observability::new(ObsConfig::default());
        assert!(obs.is_enabled());
        let a = obs.recorder_for("a");
        let b = obs.recorder_for("b");
        a.record_with(|| ObsEventKind::TaintMapFailover { shard: 0 });
        b.record_with(|| ObsEventKind::TaintMapFailover { shard: 1 });
        let (ea, eb) = (a.events(), b.events());
        assert_eq!(ea.len(), 1);
        assert_eq!(eb.len(), 1);
        assert!(ea[0].seq < eb[0].seq);
    }

    #[test]
    fn with_registry_reuses_external_instruments() {
        let reg = MetricsRegistry::new();
        reg.counter("net_bytes").add(5);
        let obs = Observability::with_registry(ObsConfig::default(), reg.clone());
        obs.registry().unwrap().counter("net_bytes").add(2);
        assert_eq!(reg.counter("net_bytes").get(), 7);
    }

    #[test]
    fn config_default_ring_capacity() {
        assert_eq!(ObsConfig::default().ring_capacity, 8_192);
    }

    #[test]
    fn span_ids_are_unique_and_zero_when_disabled() {
        let obs = Observability::new(ObsConfig::default());
        assert_eq!(obs.next_span(), 1, "0 is reserved for no-span");
        assert_eq!(obs.next_span(), 2);
        assert!(obs.span_tracker().is_enabled());
        let off = Observability::disabled();
        assert_eq!(off.next_span(), 0);
        assert!(!off.span_tracker().is_enabled());
        assert!(!off.phases_for("n1").is_enabled());
    }

    #[test]
    fn recorder_overflow_lands_in_registry() {
        let obs = Observability::new(ObsConfig { ring_capacity: 2 });
        let rec = obs.recorder_for("n1");
        for _ in 0..5 {
            rec.record_with(|| ObsEventKind::TaintMapFailover { shard: 0 });
        }
        let dump = obs.registry().unwrap().snapshot();
        assert_eq!(dump.counter_total("flight_dropped_events"), 3);
    }
}

//! Live telemetry plane: per-VM agents push metric deltas to a cluster
//! collector that serves Prometheus-style scrapes.
//!
//! The data structures live here (leaf crate, no transport); the SimNet
//! plumbing — the collector's listener thread, the reactor-timer agent
//! ticks, the in-simulation scrape endpoint — is `dista-core`'s
//! `telemetry` module.
//!
//! # Push protocol
//!
//! A [`TelemetryAgent`] snapshots the shared [`MetricsRegistry`] on
//! every tick and emits a *delta frame*: a line-oriented text frame
//! listing only the samples whose value changed since the agent's last
//! push (values themselves stay cumulative, so a lost frame degrades to
//! a late update, never a wrong one):
//!
//! ```text
//! agent <node> <push_seq>
//! c <name> <labels> <value>
//! g <name> <labels> <f64-bits>
//! h <name> <labels> <sum> <bound>:<count> … <max>:<count>
//! end
//! ```
//!
//! `<labels>` is `k=v,k=v` in sorted order, or `-` when unlabeled.
//! Gauges ship their IEEE-754 bit pattern so the text round-trip is
//! exact. Histogram bucket bounds ride along in every line, so the
//! [`Collector`] can rebuild (and merge) histograms without sharing
//! bound tables out of band.
//!
//! # Collector
//!
//! The [`Collector`] keeps, per node, the latest cumulative value of
//! every sample plus a bounded ring of per-push deltas (the time
//! series), and merges histogram families across VMs via
//! [`Histogram::merge`] for true cluster-wide quantiles.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::registry::{Histogram, Labels, MetricsDump, MetricsRegistry, Sample, SampleValue};

/// What a [`TelemetryAgent`] considers "its" samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentScope {
    /// Samples carrying a `node=<agent node>` label — the per-VM agent
    /// of a cluster whose VMs share one registry.
    NodeLabeled,
    /// Every sample in the registry — a whole-process agent.
    All,
}

/// Per-VM telemetry agent: snapshots a registry and emits delta frames.
#[derive(Debug)]
pub struct TelemetryAgent {
    node: String,
    registry: MetricsRegistry,
    scope: AgentScope,
    push_seq: u64,
    last: BTreeMap<(String, Labels), String>,
}

fn render_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        "-".to_string()
    } else {
        let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        parts.join(",")
    }
}

fn parse_labels(field: &str) -> Result<Labels, String> {
    if field == "-" {
        return Ok(Vec::new());
    }
    let mut labels: Labels = Vec::new();
    for pair in field.split(',') {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("malformed label pair {pair:?}"))?;
        labels.push((k.to_string(), v.to_string()));
    }
    labels.sort();
    Ok(labels)
}

fn render_value(value: &SampleValue) -> String {
    match value {
        SampleValue::Counter(v) => v.to_string(),
        SampleValue::Gauge(v) => v.to_bits().to_string(),
        SampleValue::Histogram { sum, buckets, .. } => {
            let mut out = sum.to_string();
            for (bound, count) in buckets {
                out.push_str(&format!(" {bound}:{count}"));
            }
            out
        }
    }
}

impl TelemetryAgent {
    /// An agent for VM `node`, pushing the samples labeled
    /// `node=<node>` out of the cluster-shared `registry`.
    pub fn for_node(node: &str, registry: MetricsRegistry) -> Self {
        Self::with_scope(node, registry, AgentScope::NodeLabeled)
    }

    /// An agent with an explicit [`AgentScope`].
    pub fn with_scope(node: &str, registry: MetricsRegistry, scope: AgentScope) -> Self {
        TelemetryAgent {
            node: node.to_string(),
            registry,
            scope,
            push_seq: 0,
            last: BTreeMap::new(),
        }
    }

    /// The node name stamped into every frame header.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Number of frames emitted so far.
    pub fn pushes(&self) -> u64 {
        self.push_seq
    }

    fn in_scope(&self, sample: &Sample) -> bool {
        match self.scope {
            AgentScope::All => true,
            AgentScope::NodeLabeled => sample
                .labels
                .iter()
                .any(|(k, v)| k == "node" && *v == self.node),
        }
    }

    /// Snapshots the registry and renders the delta since the last
    /// push. Returns `None` when nothing in scope changed (no frame
    /// goes on the wire — an idle cluster costs one snapshot per tick
    /// and zero bytes).
    pub fn delta_frame(&mut self) -> Option<String> {
        let dump = self.registry.snapshot();
        let mut lines: Vec<String> = Vec::new();
        for sample in dump.samples.iter() {
            if !self.in_scope(sample) {
                continue;
            }
            let kind = match sample.value {
                SampleValue::Counter(_) => 'c',
                SampleValue::Gauge(_) => 'g',
                SampleValue::Histogram { .. } => 'h',
            };
            let line = format!(
                "{kind} {} {} {}",
                sample.name,
                render_labels(&sample.labels),
                render_value(&sample.value)
            );
            let key = (sample.name.clone(), sample.labels.clone());
            if self.last.get(&key) != Some(&line) {
                self.last.insert(key, line.clone());
                lines.push(line);
            }
        }
        if lines.is_empty() {
            return None;
        }
        self.push_seq += 1;
        let mut frame = format!("agent {} {}\n", self.node, self.push_seq);
        for line in lines {
            frame.push_str(&line);
            frame.push('\n');
        }
        frame.push_str("end\n");
        Some(frame)
    }
}

/// One parsed delta frame, as retained in a node's time-series ring.
#[derive(Debug, Clone, PartialEq)]
pub struct PushPoint {
    /// The agent's frame sequence number (1-based, per node).
    pub push_seq: u64,
    /// The samples whose (cumulative) values this push updated.
    pub samples: Vec<Sample>,
}

/// Tuning knobs for the [`Collector`].
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Per-node time-series ring capacity, in pushes. Older pushes are
    /// dropped (counted by [`Collector::ring_dropped`]); the latest
    /// cumulative values are never dropped.
    pub ring_capacity: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig { ring_capacity: 512 }
    }
}

#[derive(Debug, Default)]
struct NodeSeries {
    last_push_seq: u64,
    latest: BTreeMap<(String, Labels), SampleValue>,
    ring: VecDeque<PushPoint>,
}

/// The cluster telemetry collector: latest values + bounded per-node
/// time-series rings + cross-VM histogram merging + scrape exposition.
///
/// Transport-free: `dista-core` feeds it frames received over SimNet
/// and serves its expositions from the in-simulation scrape endpoint,
/// and tests can drive it directly.
#[derive(Debug, Default)]
pub struct Collector {
    config: CollectorConfig,
    nodes: Mutex<BTreeMap<String, NodeSeries>>,
    frames_ingested: AtomicU64,
    samples_ingested: AtomicU64,
    parse_errors: AtomicU64,
    ring_dropped: AtomicU64,
    scrapes_served: AtomicU64,
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let mut fields = line.split_whitespace();
    let kind = fields.next().ok_or("empty sample line")?;
    let name = fields.next().ok_or("missing sample name")?.to_string();
    let labels = parse_labels(fields.next().ok_or("missing labels")?)?;
    let value = match kind {
        "c" => SampleValue::Counter(
            fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("bad counter value")?,
        ),
        "g" => SampleValue::Gauge(f64::from_bits(
            fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("bad gauge bits")?,
        )),
        "h" => {
            let sum: u64 = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("bad histogram sum")?;
            let mut buckets: Vec<(u64, u64)> = Vec::new();
            for pair in fields.by_ref() {
                let (bound, count) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("malformed bucket {pair:?}"))?;
                buckets.push((
                    bound.parse().map_err(|_| "bad bucket bound")?,
                    count.parse().map_err(|_| "bad bucket count")?,
                ));
            }
            if buckets.last().map(|(b, _)| *b) != Some(u64::MAX) {
                return Err("histogram missing overflow bucket".to_string());
            }
            let count = buckets.iter().map(|(_, c)| *c).sum();
            SampleValue::Histogram {
                count,
                sum,
                buckets,
            }
        }
        other => return Err(format!("unknown sample kind {other:?}")),
    };
    if fields.next().is_some() && kind != "h" {
        return Err("trailing fields on sample line".to_string());
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

impl Collector {
    /// A collector with default config.
    pub fn new() -> Self {
        Self::with_config(CollectorConfig::default())
    }

    /// A collector with explicit knobs.
    pub fn with_config(config: CollectorConfig) -> Self {
        Collector {
            config,
            ..Default::default()
        }
    }

    /// Ingests one delta frame. Malformed frames count as parse errors
    /// and leave prior state untouched.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line.
    pub fn ingest(&self, frame: &str) -> Result<(), String> {
        let result = self.ingest_inner(frame);
        if result.is_err() {
            self.parse_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn ingest_inner(&self, frame: &str) -> Result<(), String> {
        let mut lines = frame.lines();
        let header = lines.next().ok_or("empty frame")?;
        let mut hf = header.split_whitespace();
        if hf.next() != Some("agent") {
            return Err(format!("bad frame header {header:?}"));
        }
        let node = hf.next().ok_or("missing node in header")?.to_string();
        let push_seq: u64 = hf
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("bad push_seq in header")?;
        let mut samples: Vec<Sample> = Vec::new();
        let mut terminated = false;
        for line in lines {
            if line == "end" {
                terminated = true;
                break;
            }
            samples.push(parse_sample(line)?);
        }
        if !terminated {
            return Err("frame missing end marker".to_string());
        }
        let mut nodes = self.nodes.lock();
        let series = nodes.entry(node).or_default();
        series.last_push_seq = push_seq;
        for s in &samples {
            series
                .latest
                .insert((s.name.clone(), s.labels.clone()), s.value.clone());
        }
        self.samples_ingested
            .fetch_add(samples.len() as u64, Ordering::Relaxed);
        series.ring.push_back(PushPoint { push_seq, samples });
        while series.ring.len() > self.config.ring_capacity.max(1) {
            series.ring.pop_front();
            self.ring_dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.frames_ingested.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Node names seen so far.
    pub fn nodes(&self) -> Vec<String> {
        self.nodes.lock().keys().cloned().collect()
    }

    /// The retained time series (oldest push first) for `node`.
    pub fn series(&self, node: &str) -> Vec<PushPoint> {
        self.nodes
            .lock()
            .get(node)
            .map(|s| s.ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The latest cumulative values across every node, as one dump.
    /// Samples are disambiguated by their label sets (per-VM metrics
    /// carry `node=` labels); identical keys from different agents are
    /// last-write-wins.
    pub fn latest_dump(&self) -> MetricsDump {
        let nodes = self.nodes.lock();
        let mut merged: BTreeMap<(String, Labels), SampleValue> = BTreeMap::new();
        for series in nodes.values() {
            for (key, value) in &series.latest {
                merged.insert(key.clone(), value.clone());
            }
        }
        MetricsDump {
            samples: merged
                .into_iter()
                .map(|((name, labels), value)| Sample {
                    name,
                    labels,
                    value,
                })
                .collect(),
        }
    }

    /// Merges every latest histogram sample named `name` (across all
    /// nodes and label sets) into one cluster-wide histogram, or `None`
    /// when no node has pushed one yet.
    pub fn merged_histogram(&self, name: &str) -> Option<Histogram> {
        let nodes = self.nodes.lock();
        let mut merged: Option<Histogram> = None;
        for series in nodes.values() {
            for ((n, _), value) in &series.latest {
                if n != name {
                    continue;
                }
                if let SampleValue::Histogram { sum, buckets, .. } = value {
                    let h = Histogram::from_buckets(buckets, *sum);
                    match &merged {
                        Some(m) => m.merge(&h),
                        None => merged = Some(h),
                    }
                }
            }
        }
        merged
    }

    /// Histogram family names present in the latest values.
    fn histogram_families(&self) -> Vec<String> {
        let nodes = self.nodes.lock();
        let mut names: Vec<String> = Vec::new();
        for series in nodes.values() {
            for ((n, _), value) in &series.latest {
                if matches!(value, SampleValue::Histogram { .. }) && !names.contains(n) {
                    names.push(n.clone());
                }
            }
        }
        names.sort();
        names
    }

    /// Delta frames ingested successfully.
    pub fn frames_ingested(&self) -> u64 {
        self.frames_ingested.load(Ordering::Relaxed)
    }

    /// Samples ingested across all frames.
    pub fn samples_ingested(&self) -> u64 {
        self.samples_ingested.load(Ordering::Relaxed)
    }

    /// Frames rejected as malformed.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors.load(Ordering::Relaxed)
    }

    /// Time-series points evicted from full rings.
    pub fn ring_dropped(&self) -> u64 {
        self.ring_dropped.load(Ordering::Relaxed)
    }

    /// Scrapes served (text and JSON combined).
    pub fn scrapes_served(&self) -> u64 {
        self.scrapes_served.load(Ordering::Relaxed)
    }

    fn prom_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
        let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Prometheus-style text exposition of the latest values, the
    /// cluster-merged histogram quantiles and the collector's own
    /// health counters. Counts as one served scrape.
    pub fn scrape_text(&self) -> String {
        let served = self.scrapes_served.fetch_add(1, Ordering::Relaxed) + 1;
        let dump = self.latest_dump();
        let mut out = String::new();
        for s in &dump.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        s.name,
                        Self::prom_labels(&s.labels, None)
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        s.name,
                        Self::prom_labels(&s.labels, None)
                    ));
                }
                SampleValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let mut cumulative = 0u64;
                    for (bound, c) in buckets {
                        cumulative += c;
                        let le = if *bound == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            bound.to_string()
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            s.name,
                            Self::prom_labels(&s.labels, Some(("le", &le)))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {sum}\n",
                        s.name,
                        Self::prom_labels(&s.labels, None)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {count}\n",
                        s.name,
                        Self::prom_labels(&s.labels, None)
                    ));
                }
            }
        }
        for family in self.histogram_families() {
            if let Some(h) = self.merged_histogram(&family) {
                for (q, label) in [(0.50, "p50"), (0.99, "p99"), (0.999, "p999")] {
                    out.push_str(&format!(
                        "{family}_cluster{{q=\"{label}\"}} {}\n",
                        h.quantile(q)
                    ));
                }
                out.push_str(&format!("{family}_cluster_count {}\n", h.count()));
            }
        }
        out.push_str(&format!(
            "dista_collector_frames_ingested_total {}\n",
            self.frames_ingested()
        ));
        out.push_str(&format!(
            "dista_collector_samples_ingested_total {}\n",
            self.samples_ingested()
        ));
        out.push_str(&format!(
            "dista_collector_parse_errors_total {}\n",
            self.parse_errors()
        ));
        out.push_str(&format!("dista_collector_scrapes_total {served}\n"));
        out
    }

    /// Hand-rolled JSON dump: latest values per sample plus the merged
    /// cluster quantiles and collector health. Counts as one served
    /// scrape.
    pub fn scrape_json(&self) -> String {
        let served = self.scrapes_served.fetch_add(1, Ordering::Relaxed) + 1;
        let dump = self.latest_dump();
        let mut samples: Vec<String> = Vec::new();
        for s in &dump.samples {
            let labels: Vec<String> = s
                .labels
                .iter()
                .map(|(k, v)| format!("\"{k}\":\"{v}\""))
                .collect();
            let value = match &s.value {
                SampleValue::Counter(v) => format!("\"counter\":{v}"),
                SampleValue::Gauge(v) => format!("\"gauge\":{v:?}"),
                SampleValue::Histogram { count, sum, .. } => {
                    format!("\"count\":{count},\"sum\":{sum}")
                }
            };
            samples.push(format!(
                "{{\"name\":\"{}\",\"labels\":{{{}}},{value}}}",
                s.name,
                labels.join(",")
            ));
        }
        let mut merged: Vec<String> = Vec::new();
        for family in self.histogram_families() {
            if let Some(h) = self.merged_histogram(&family) {
                merged.push(format!(
                    "\"{family}\":{{\"p50\":{},\"p99\":{},\"p999\":{},\"count\":{}}}",
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.count()
                ));
            }
        }
        let nodes: Vec<String> = self.nodes().iter().map(|n| format!("\"{n}\"")).collect();
        format!(
            "{{\"nodes\":[{}],\"samples\":[{}],\"merged\":{{{}}},\
             \"frames_ingested\":{},\"scrapes_served\":{served}}}",
            nodes.join(","),
            samples.join(","),
            merged.join(","),
            self.frames_ingested()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_node(node: &str) -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter_with("reqs", &[("node", node)]).add(3);
        reg.gauge_with("load", &[("node", node)]).set(1.5);
        reg.histogram_with("lat_us", &[("node", node)], &[10, 100])
            .observe(50);
        reg
    }

    #[test]
    fn first_delta_is_full_then_only_changes() {
        let reg = registry_with_node("n1");
        let mut agent = TelemetryAgent::for_node("n1", reg.clone());
        let frame = agent.delta_frame().expect("first frame is full");
        assert!(frame.starts_with("agent n1 1\n"));
        assert!(frame.contains("c reqs node=n1 3"));
        assert!(frame.ends_with("end\n"));
        assert!(agent.delta_frame().is_none(), "nothing changed");
        reg.counter_with("reqs", &[("node", "n1")]).inc();
        let frame = agent.delta_frame().expect("counter changed");
        assert!(frame.contains("c reqs node=n1 4"));
        assert!(
            !frame.contains("g load"),
            "unchanged samples are not re-pushed"
        );
        assert_eq!(agent.pushes(), 2);
    }

    #[test]
    fn node_scope_excludes_other_nodes() {
        let reg = registry_with_node("n1");
        reg.counter_with("reqs", &[("node", "n2")]).add(9);
        reg.counter("global").add(1);
        let mut agent = TelemetryAgent::for_node("n1", reg);
        let frame = agent.delta_frame().unwrap();
        assert!(frame.contains("node=n1"));
        assert!(!frame.contains("node=n2"));
        assert!(!frame.contains("global"));
    }

    #[test]
    fn collector_round_trips_values() {
        let reg = registry_with_node("n1");
        let mut agent = TelemetryAgent::for_node("n1", reg);
        let collector = Collector::new();
        collector.ingest(&agent.delta_frame().unwrap()).unwrap();
        assert_eq!(collector.nodes(), vec!["n1"]);
        assert_eq!(collector.frames_ingested(), 1);
        let dump = collector.latest_dump();
        assert_eq!(dump.counter_total("reqs"), 3);
        assert_eq!(dump.gauge_value("load", &[("node", "n1")]), Some(1.5));
        let h = collector.merged_histogram("lat_us").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 100);
    }

    #[test]
    fn merged_histogram_spans_nodes() {
        let collector = Collector::new();
        for node in ["a", "b"] {
            let reg = MetricsRegistry::new();
            let h = reg.histogram_with("lat", &[("node", node)], &[10, 100]);
            h.observe(5);
            if node == "b" {
                for _ in 0..99 {
                    h.observe(500);
                }
            }
            let mut agent = TelemetryAgent::for_node(node, reg);
            collector.ingest(&agent.delta_frame().unwrap()).unwrap();
        }
        let merged = collector.merged_histogram("lat").unwrap();
        assert_eq!(merged.count(), 101);
        assert_eq!(merged.quantile(0.99), u64::MAX, "overflow dominates p99");
        assert_eq!(merged.quantile(0.01), 10);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let collector = Collector::with_config(CollectorConfig { ring_capacity: 2 });
        let reg = MetricsRegistry::new();
        let c = reg.counter_with("x", &[("node", "n1")]);
        let mut agent = TelemetryAgent::for_node("n1", reg.clone());
        for _ in 0..5 {
            c.inc();
            collector.ingest(&agent.delta_frame().unwrap()).unwrap();
        }
        let series = collector.series("n1");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].push_seq, 4);
        assert_eq!(series[1].push_seq, 5);
        assert_eq!(collector.ring_dropped(), 3);
        assert_eq!(collector.frames_ingested(), 5);
    }

    #[test]
    fn malformed_frames_are_counted_not_applied() {
        let collector = Collector::new();
        assert!(collector.ingest("agent n1 zzz\nend\n").is_err());
        assert!(collector.ingest("agent n1 1\nc broken\nend\n").is_err());
        assert!(collector.ingest("agent n1 1\nc x - 1\n").is_err());
        assert_eq!(collector.parse_errors(), 3);
        assert_eq!(collector.frames_ingested(), 0);
        assert!(collector.nodes().is_empty() || collector.latest_dump().samples.is_empty());
    }

    #[test]
    fn scrape_text_is_prometheus_shaped_and_counts() {
        let reg = registry_with_node("n1");
        let mut agent = TelemetryAgent::for_node("n1", reg);
        let collector = Collector::new();
        collector.ingest(&agent.delta_frame().unwrap()).unwrap();
        let s1 = collector.scrape_text();
        assert!(s1.contains("reqs{node=\"n1\"} 3"));
        assert!(s1.contains("lat_us_bucket{node=\"n1\",le=\"10\"} 0"));
        assert!(s1.contains("lat_us_bucket{node=\"n1\",le=\"+Inf\"} 1"));
        assert!(s1.contains("lat_us_sum{node=\"n1\"} 50"));
        assert!(s1.contains("lat_us_count{node=\"n1\"} 1"));
        assert!(s1.contains("lat_us_cluster{q=\"p99\"} 100"));
        assert!(s1.contains("dista_collector_scrapes_total 1"));
        let s2 = collector.scrape_text();
        assert!(
            s2.contains("dista_collector_scrapes_total 2"),
            "scrape counter is monotone"
        );
        assert_eq!(collector.scrapes_served(), 2);
    }

    #[test]
    fn scrape_json_has_merged_quantiles() {
        let reg = registry_with_node("n1");
        let mut agent = TelemetryAgent::for_node("n1", reg);
        let collector = Collector::new();
        collector.ingest(&agent.delta_frame().unwrap()).unwrap();
        let json = collector.scrape_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"nodes\":[\"n1\"]"));
        assert!(json.contains("\"lat_us\":{\"p50\":100"));
        assert!(json.contains("\"scrapes_served\":1"));
    }

    #[test]
    fn gauge_bits_round_trip_exactly() {
        let reg = MetricsRegistry::new();
        reg.gauge_with("ratio", &[("node", "n1")])
            .set(0.1 + 0.2 + f64::EPSILON);
        let mut agent = TelemetryAgent::for_node("n1", reg.clone());
        let collector = Collector::new();
        collector.ingest(&agent.delta_frame().unwrap()).unwrap();
        assert_eq!(
            collector
                .latest_dump()
                .gauge_value("ratio", &[("node", "n1")]),
            Some(reg.gauge_with("ratio", &[("node", "n1")]).get())
        );
    }
}

//! Exporters: JSONL event dump, Chrome-trace (`chrome://tracing` /
//! Perfetto) format, and a plain-text cluster report.
//!
//! The vendored `serde` has no `serde_json`, so JSON is emitted by
//! hand; the event schema is flat enough that escaping strings is the
//! only subtlety.

use crate::event::{GidSpan, ObsEvent, ObsEventKind};
use crate::registry::MetricsDump;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn json_str_list(items: &[String]) -> String {
    let parts: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", parts.join(","))
}

fn json_spans(spans: &[GidSpan]) -> String {
    let parts: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"gid\":{},\"start\":{},\"end\":{}}}",
                s.gid, s.start, s.end
            )
        })
        .collect();
    format!("[{}]", parts.join(","))
}

fn kind_fields(kind: &ObsEventKind) -> String {
    match kind {
        ObsEventKind::SourceMinted { taint, tag, span } => {
            format!(
                "\"taint\":{taint},\"tag\":{},\"span\":{span}",
                json_str(tag)
            )
        }
        ObsEventKind::TaintMapRegister { taint, gid, span } => {
            format!("\"taint\":{taint},\"gid\":{gid},\"span\":{span}")
        }
        ObsEventKind::TaintMapLookup { gid, taint, span } => {
            format!("\"gid\":{gid},\"taint\":{taint},\"span\":{span}")
        }
        ObsEventKind::TaintMapFailover { shard } => format!("\"shard\":{shard}"),
        ObsEventKind::BoundaryEncode {
            transport,
            from,
            to,
            data_bytes,
            wire_bytes,
            spans,
            span,
            parent,
        } => format!(
            "\"transport\":{},\"from\":{},\"to\":{},\"data_bytes\":{data_bytes},\
             \"wire_bytes\":{wire_bytes},\"spans\":{},\"span\":{span},\"parent\":{parent}",
            json_str(transport.as_str()),
            json_str(from),
            json_str(to),
            json_spans(spans)
        ),
        ObsEventKind::BoundaryDecode {
            transport,
            from,
            to,
            data_bytes,
            wire_bytes,
            spans,
            span,
        } => format!(
            "\"transport\":{},\"from\":{},\"to\":{},\"data_bytes\":{data_bytes},\
             \"wire_bytes\":{wire_bytes},\"spans\":{},\"span\":{span}",
            json_str(transport.as_str()),
            json_str(from),
            json_str(to),
            json_spans(spans)
        ),
        ObsEventKind::SinkHit { sink, tags, gids } => {
            let gids: Vec<String> = gids.iter().map(|g| g.to_string()).collect();
            format!(
                "\"sink\":{},\"tags\":{},\"gids\":[{}]",
                json_str(sink),
                json_str_list(tags),
                gids.join(",")
            )
        }
        ObsEventKind::DegradedLookup { gid, shard } => {
            format!("\"gid\":{gid},\"shard\":{shard}")
        }
        ObsEventKind::PendingResolved { gid, taint } => {
            format!("\"gid\":{gid},\"taint\":{taint}")
        }
        ObsEventKind::FaultInjected { fault } => format!("\"fault\":{}", json_str(fault)),
        ObsEventKind::ShardCrashed { shard } => format!("\"shard\":{shard}"),
        ObsEventKind::ShardRestarted { shard, replayed } => {
            format!("\"shard\":{shard},\"replayed\":{replayed}")
        }
        ObsEventKind::ShardSplit {
            class,
            target,
            lo_gid,
            epoch,
        } => format!("\"class\":{class},\"target\":{target},\"lo_gid\":{lo_gid},\"epoch\":{epoch}"),
        ObsEventKind::SplitHealed { class } => format!("\"class\":{class}"),
        ObsEventKind::WalCompacted { shard, records } => {
            format!("\"shard\":{shard},\"records\":{records}")
        }
        ObsEventKind::PipelineStage { stage, records } => {
            format!("\"stage\":{},\"records\":{records}", json_str(stage))
        }
    }
}

/// Renders events as JSON Lines, one event object per line, sorted by
/// sequence number.
pub fn to_jsonl(events: &[ObsEvent]) -> String {
    let mut events: Vec<&ObsEvent> = events.iter().collect();
    events.sort_by_key(|e| e.seq);
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"seq\":{},\"node\":{},\"event\":{},{}}}\n",
            e.seq,
            json_str(&e.node),
            json_str(e.kind.name()),
            kind_fields(&e.kind)
        ));
    }
    out
}

/// Renders events in Chrome-trace ("Trace Event") JSON array format.
///
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>:
/// each VM becomes a process row (`pid`), and every recorded event is
/// an instant event (`"ph":"i"`) at its logical-clock timestamp (the
/// shared cluster clock stands in for microseconds, preserving order).
pub fn to_chrome_trace(events: &[ObsEvent]) -> String {
    let mut events: Vec<&ObsEvent> = events.iter().collect();
    events.sort_by_key(|e| e.seq);
    // Stable pid per node, in first-seen order.
    let mut nodes: Vec<&str> = Vec::new();
    for e in &events {
        if !nodes.contains(&e.node.as_str()) {
            nodes.push(&e.node);
        }
    }
    let mut entries: Vec<String> = Vec::new();
    for (pid, node) in nodes.iter().enumerate() {
        entries.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_str(node)
        ));
    }
    for e in &events {
        let pid = nodes.iter().position(|n| *n == e.node).unwrap_or(0);
        entries.push(format!(
            "{{\"name\":{},\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{pid},\"tid\":0,\
             \"args\":{{{}}}}}",
            json_str(e.kind.name()),
            e.seq,
            kind_fields(&e.kind)
        ));
    }
    format!("[{}]", entries.join(",\n"))
}

/// Renders a human-readable cluster report: the metrics dump followed by
/// a per-node event timeline.
pub fn to_text_report(dump: &MetricsDump, events: &[ObsEvent]) -> String {
    let mut out = String::from("== metrics ==\n");
    out.push_str(&dump.render_text());
    out.push_str("== events ==\n");
    let mut events: Vec<&ObsEvent> = events.iter().collect();
    events.sort_by_key(|e| e.seq);
    for e in events {
        out.push_str(&format!("[{:>6}] {:<8} {:?}\n", e.seq, e.node, e.kind));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Transport;
    use crate::registry::MetricsRegistry;

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent {
                seq: 1,
                node: "n2".into(),
                kind: ObsEventKind::TaintMapLookup {
                    gid: 42,
                    taint: 3,
                    span: 7,
                },
            },
            ObsEvent {
                seq: 0,
                node: "n1".into(),
                kind: ObsEventKind::BoundaryEncode {
                    transport: Transport::Tcp,
                    from: "10.0.0.1:9000".into(),
                    to: "10.0.0.2:9000".into(),
                    data_bytes: 4,
                    wire_bytes: 20,
                    spans: vec![GidSpan {
                        gid: 42,
                        start: 0,
                        end: 4,
                    }],
                    span: 7,
                    parent: 5,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line_sorted() {
        let out = to_jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"event\":\"boundary_encode\""));
        assert!(lines[0].contains("\"spans\":[{\"gid\":42,\"start\":0,\"end\":4}]"));
        assert!(lines[0].contains("\"span\":7,\"parent\":5"));
        assert!(lines[1].contains("\"event\":\"taintmap_lookup\""));
        assert!(lines[1].contains("\"span\":7"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_names_processes_and_orders_by_ts() {
        let out = to_chrome_trace(&sample_events());
        assert!(out.starts_with('[') && out.ends_with(']'));
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("\"name\":\"n1\""));
        assert!(out.contains("\"name\":\"n2\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.find("\"ts\":0").unwrap() < out.find("\"ts\":1").unwrap());
    }

    #[test]
    fn text_report_has_both_sections() {
        let r = MetricsRegistry::new();
        r.counter("hits").inc();
        let out = to_text_report(&r.snapshot(), &sample_events());
        assert!(out.contains("== metrics =="));
        assert!(out.contains("hits 1"));
        assert!(out.contains("== events =="));
        assert!(out.contains("n1"));
    }

    #[test]
    fn strings_are_escaped() {
        let events = vec![ObsEvent {
            seq: 0,
            node: "n\"1".into(),
            kind: ObsEventKind::SourceMinted {
                taint: 1,
                tag: "a\\b\nc".into(),
                span: 0,
            },
        }];
        let out = to_jsonl(&events);
        assert!(out.contains("n\\\"1"));
        assert!(out.contains("a\\\\b\\nc"));
    }
}

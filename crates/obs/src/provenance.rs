//! Provenance ledger: reconstruct the cross-VM journey of a global
//! taint id from flight-recorder events alone.
//!
//! The algorithm works on the merged, clock-ordered event stream of
//! every VM in a cluster:
//!
//! 1. Find the [`TaintMapRegister`](crate::ObsEventKind::TaintMapRegister)
//!    that assigned the gid — that names the registering node and its
//!    local taint id.
//! 2. Walk backwards on that node for the
//!    [`SourceMinted`](crate::ObsEventKind::SourceMinted) of the same
//!    local taint — the minting hop.
//! 3. Every [`BoundaryEncode`](crate::ObsEventKind::BoundaryEncode)
//!    whose gid spans contain the gid opens a crossing. Under the v2
//!    wire protocol the encode minted a crossing span id that traveled
//!    to the peer in an annotation frame, so the crossing is closed
//!    **exactly** by the [`BoundaryDecode`](crate::ObsEventKind::BoundaryDecode)
//!    carrying the same span id. When no span is available (v1 peer,
//!    trace context off) the crossing falls back to the original
//!    inference: the first later decode on the same `(from, to)`
//!    address pair that also carries the gid.
//!    [`ProvenanceTrace::exact`] reports whether every crossing was
//!    span-paired; [`reconstruct_inferred`] forces the fallback for
//!    comparison.
//! 4. Each node's first [`TaintMapLookup`](crate::ObsEventKind::TaintMapLookup)
//!    of the gid becomes a resolution hop.
//! 5. Every [`SinkHit`](crate::ObsEventKind::SinkHit) listing the gid
//!    becomes a sink hop.
//!
//! Hops are emitted in clock order, so the rendered trace reads as the
//! paper's running example: *minted on n1 → registered as gid 42 →
//! crossed tcp n1→n2 bytes 17..21 → sunk at LOG.info on n3*.

use crate::event::{ObsEvent, ObsEventKind, Transport};

/// One step in a [`ProvenanceTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum Hop {
    /// A source point minted the taint.
    Minted {
        /// Minting VM.
        node: String,
        /// Source tag.
        tag: String,
        /// Local taint id on the minting VM.
        taint: u32,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// The Taint Map assigned the global id.
    Registered {
        /// Registering VM.
        node: String,
        /// Local taint id that was serialized.
        taint: u32,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// The taint crossed a socket or file boundary.
    Crossed {
        /// Transport used.
        transport: Transport,
        /// Sending VM.
        from_node: String,
        /// Receiving VM, if the matching decode was observed.
        to_node: Option<String>,
        /// Sender address `ip:port`.
        from: String,
        /// Receiver address `ip:port`.
        to: String,
        /// Tainted data byte range `start..end` in the payload.
        bytes: (usize, usize),
        /// Crossing span id the encode put on the wire (0 when none
        /// was sent — v1 wire or trace context off).
        span: u64,
        /// Clock sequence of the encode event.
        seq: u64,
    },
    /// A VM resolved the gid back to a local taint.
    Resolved {
        /// Resolving VM.
        node: String,
        /// Local taint id it interned to.
        taint: u32,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// A VM could not reach the owning shard and attached a
    /// `PendingGid` sentinel instead of a real taint (degraded mode).
    Pending {
        /// VM that degraded the lookup.
        node: String,
        /// Index of the unreachable shard.
        shard: usize,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// A sink observed the taint.
    Sunk {
        /// VM the sink fired on.
        node: String,
        /// Sink identifier, e.g. `LOG.info`.
        sink: String,
        /// Clock sequence of the event.
        seq: u64,
    },
}

impl Hop {
    /// The hop's cluster sequence number (total order across VMs).
    pub fn seq(&self) -> u64 {
        match self {
            Hop::Minted { seq, .. }
            | Hop::Registered { seq, .. }
            | Hop::Crossed { seq, .. }
            | Hop::Resolved { seq, .. }
            | Hop::Pending { seq, .. }
            | Hop::Sunk { seq, .. } => *seq,
        }
    }
}

impl std::fmt::Display for Hop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hop::Minted { node, tag, .. } => write!(f, "minted on {node} (tag {tag})"),
            Hop::Registered { node, .. } => write!(f, "registered on {node}"),
            Hop::Crossed {
                transport,
                from_node,
                to_node,
                bytes,
                ..
            } => {
                let to = to_node.as_deref().unwrap_or("?");
                write!(
                    f,
                    "crossed {transport} {from_node}\u{2192}{to} bytes {}..{}",
                    bytes.0, bytes.1
                )
            }
            Hop::Resolved { node, .. } => write!(f, "resolved on {node}"),
            Hop::Pending { node, shard, .. } => {
                write!(f, "pending on {node} (shard {shard} unreachable)")
            }
            Hop::Sunk { node, sink, .. } => write!(f, "sunk at {sink} on {node}"),
        }
    }
}

/// The reconstructed journey of one global taint id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvenanceTrace {
    /// The gid that was traced.
    pub gid: u32,
    /// The hops, in cluster clock order.
    pub hops: Vec<Hop>,
    /// True when every boundary crossing was paired by a propagated
    /// span id (no gid-matching inference was needed). Vacuously true
    /// for traces with no crossings; always false for traces built by
    /// [`reconstruct_inferred`].
    pub exact: bool,
}

impl ProvenanceTrace {
    /// True when no event mentioned the gid.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Number of completed boundary crossings (encode matched to a
    /// decode).
    pub fn crossings(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| {
                matches!(
                    h,
                    Hop::Crossed {
                        to_node: Some(_),
                        ..
                    }
                )
            })
            .count()
    }

    /// Distinct VM names the taint touched, in first-seen order.
    pub fn nodes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for hop in &self.hops {
            let names: Vec<&str> = match hop {
                Hop::Minted { node, .. }
                | Hop::Registered { node, .. }
                | Hop::Resolved { node, .. }
                | Hop::Pending { node, .. }
                | Hop::Sunk { node, .. } => vec![node.as_str()],
                Hop::Crossed {
                    from_node, to_node, ..
                } => {
                    let mut v = vec![from_node.as_str()];
                    if let Some(t) = to_node {
                        v.push(t.as_str());
                    }
                    v
                }
            };
            for n in names {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Number of degraded lookups (a `PendingGid` sentinel stood in for
    /// the real taint while the owning shard was unreachable).
    pub fn pending_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| matches!(h, Hop::Pending { .. }))
            .count()
    }

    /// True when every [`Hop::Pending`] is followed (in clock order) by
    /// a [`Hop::Resolved`] on the same node — the soundness condition
    /// for degraded mode: no delivered byte is left holding a sentinel
    /// after the partition healed.
    pub fn pending_all_resolved(&self) -> bool {
        self.hops.iter().all(|h| match h {
            Hop::Pending { node, seq, .. } => self.hops.iter().any(|later| {
                matches!(later, Hop::Resolved { node: rn, seq: rs, .. }
                    if rn == node && rs > seq)
            }),
            _ => true,
        })
    }

    /// The sinks that observed the taint, as `(node, sink)` pairs.
    pub fn sinks(&self) -> Vec<(&str, &str)> {
        self.hops
            .iter()
            .filter_map(|h| match h {
                Hop::Sunk { node, sink, .. } => Some((node.as_str(), sink.as_str())),
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Display for ProvenanceTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gid {}: ", self.gid)?;
        if self.hops.is_empty() {
            return write!(f, "(no events)");
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " \u{2192} ")?;
            }
            write!(f, "{hop}")?;
        }
        Ok(())
    }
}

fn spans_contain(spans: &[crate::event::GidSpan], gid: u32) -> Option<(usize, usize)> {
    spans
        .iter()
        .find(|s| s.gid == gid)
        .map(|s| (s.start, s.end))
}

/// Reconstructs the journey of `gid` from the merged event stream of
/// every recorder in a cluster, pairing boundary crossings by their
/// wire-propagated span ids where available (exact) and falling back
/// to gid-matching inference elsewhere. `events` need not be
/// pre-sorted.
pub fn reconstruct(events: &[ObsEvent], gid: u32) -> ProvenanceTrace {
    reconstruct_impl(events, gid, true)
}

/// Like [`reconstruct`], but ignores propagated span ids and always
/// uses the gid-matching inference — the pre-trace-context behavior,
/// kept for v1 interop comparisons. The result's
/// [`exact`](ProvenanceTrace::exact) flag is always false.
pub fn reconstruct_inferred(events: &[ObsEvent], gid: u32) -> ProvenanceTrace {
    reconstruct_impl(events, gid, false)
}

fn reconstruct_impl(events: &[ObsEvent], gid: u32, use_spans: bool) -> ProvenanceTrace {
    let mut events: Vec<&ObsEvent> = events.iter().collect();
    events.sort_by_key(|e| e.seq);

    let mut hops: Vec<Hop> = Vec::new();

    // 1. Registration names the origin node + local taint.
    let registration = events.iter().find_map(|e| match &e.kind {
        ObsEventKind::TaintMapRegister { taint, gid: g, .. } if *g == gid => {
            Some((e.node.clone(), *taint, e.seq))
        }
        _ => None,
    });

    if let Some((ref reg_node, reg_taint, reg_seq)) = registration {
        // 2. The minting event precedes registration on the same node.
        let minted = events
            .iter()
            .rev()
            .filter(|e| e.seq < reg_seq && e.node == *reg_node)
            .find_map(|e| match &e.kind {
                ObsEventKind::SourceMinted { taint, tag, .. } if *taint == reg_taint => {
                    Some(Hop::Minted {
                        node: e.node.clone(),
                        tag: tag.clone(),
                        taint: *taint,
                        seq: e.seq,
                    })
                }
                _ => None,
            });
        if let Some(m) = minted {
            hops.push(m);
        }
        hops.push(Hop::Registered {
            node: reg_node.clone(),
            taint: reg_taint,
            seq: reg_seq,
        });
    }

    // 3. Boundary crossings: pair each gid-carrying encode with its
    //    decode — exactly, by the span id the annotation frame carried
    //    to the peer, or (when no span is available) by inference: the
    //    first later gid-carrying decode on the same address pair.
    let mut used_decodes: Vec<u64> = Vec::new();
    let mut all_span_paired = true;
    for e in &events {
        if let ObsEventKind::BoundaryEncode {
            transport,
            from,
            to,
            spans,
            span,
            ..
        } = &e.kind
        {
            let Some(bytes) = spans_contain(spans, gid) else {
                continue;
            };
            let span_matched = if use_spans && *span != 0 {
                events.iter().find(|d| {
                    d.seq > e.seq
                        && !used_decodes.contains(&d.seq)
                        && matches!(&d.kind,
                            ObsEventKind::BoundaryDecode { span: ds, spans: dss, .. }
                                if ds == span && spans_contain(dss, gid).is_some())
                })
            } else {
                None
            };
            let matched = match span_matched {
                Some(d) => Some(d),
                None => {
                    all_span_paired = false;
                    events.iter().find(|d| {
                        d.seq > e.seq
                            && !used_decodes.contains(&d.seq)
                            && matches!(&d.kind,
                                ObsEventKind::BoundaryDecode { from: df, to: dt, spans: ds, .. }
                                    if df == from && dt == to && spans_contain(ds, gid).is_some())
                    })
                }
            };
            let to_node = matched.map(|d| {
                used_decodes.push(d.seq);
                d.node.clone()
            });
            hops.push(Hop::Crossed {
                transport: *transport,
                from_node: e.node.clone(),
                to_node,
                from: from.clone(),
                to: to.clone(),
                bytes,
                span: *span,
                seq: e.seq,
            });
        }
    }

    // 4. First lookup per node is a resolution hop. Degraded lookups
    //    become pending hops; a later `PendingResolved` on the node
    //    closes them with a (reconciled) resolution hop.
    let mut resolved_nodes: Vec<String> = Vec::new();
    for e in &events {
        match &e.kind {
            ObsEventKind::TaintMapLookup { gid: g, taint, .. }
                if *g == gid && !resolved_nodes.contains(&e.node) =>
            {
                resolved_nodes.push(e.node.clone());
                hops.push(Hop::Resolved {
                    node: e.node.clone(),
                    taint: *taint,
                    seq: e.seq,
                });
            }
            ObsEventKind::DegradedLookup { gid: g, shard } if *g == gid => {
                hops.push(Hop::Pending {
                    node: e.node.clone(),
                    shard: *shard,
                    seq: e.seq,
                });
            }
            ObsEventKind::PendingResolved { gid: g, taint } if *g == gid => {
                resolved_nodes.push(e.node.clone());
                hops.push(Hop::Resolved {
                    node: e.node.clone(),
                    taint: *taint,
                    seq: e.seq,
                });
            }
            _ => {}
        }
    }

    // 5. Sink hits listing the gid.
    for e in &events {
        if let ObsEventKind::SinkHit { sink, gids, .. } = &e.kind {
            if gids.contains(&gid) {
                hops.push(Hop::Sunk {
                    node: e.node.clone(),
                    sink: sink.clone(),
                    seq: e.seq,
                });
            }
        }
    }

    hops.sort_by_key(|h| h.seq());
    ProvenanceTrace {
        gid,
        hops,
        exact: use_spans && all_span_paired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::GidSpan;

    fn ev(seq: u64, node: &str, kind: ObsEventKind) -> ObsEvent {
        ObsEvent {
            seq,
            node: node.to_string(),
            kind,
        }
    }

    fn span(gid: u32, start: usize, end: usize) -> GidSpan {
        GidSpan { gid, start, end }
    }

    /// The paper's running example: mint on n1, register gid 42, hop
    /// n1→n2 then n2→n3, sink at LOG.info on n3. When `v2` is true the
    /// crossings carry propagated trace spans (root 1, crossings 2 and
    /// 3); when false every span field is 0, as a v1 peer would record.
    fn example_events_wire(v2: bool) -> Vec<ObsEvent> {
        let s = |id: u64| if v2 { id } else { 0 };
        vec![
            ev(
                0,
                "n1",
                ObsEventKind::SourceMinted {
                    taint: 7,
                    tag: "zk.zxid".into(),
                    span: s(1),
                },
            ),
            ev(
                1,
                "n1",
                ObsEventKind::TaintMapRegister {
                    taint: 7,
                    gid: 42,
                    span: s(1),
                },
            ),
            ev(
                2,
                "n1",
                ObsEventKind::BoundaryEncode {
                    transport: Transport::Tcp,
                    from: "10.0.0.1:9000".into(),
                    to: "10.0.0.2:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                    span: s(2),
                    parent: s(1),
                },
            ),
            ev(
                3,
                "n2",
                ObsEventKind::BoundaryDecode {
                    transport: Transport::Tcp,
                    from: "10.0.0.1:9000".into(),
                    to: "10.0.0.2:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                    span: s(2),
                },
            ),
            ev(
                4,
                "n2",
                ObsEventKind::TaintMapLookup {
                    gid: 42,
                    taint: 3,
                    span: s(2),
                },
            ),
            ev(
                5,
                "n2",
                ObsEventKind::BoundaryEncode {
                    transport: Transport::Tcp,
                    from: "10.0.0.2:9001".into(),
                    to: "10.0.0.3:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                    span: s(3),
                    parent: s(2),
                },
            ),
            ev(
                6,
                "n3",
                ObsEventKind::BoundaryDecode {
                    transport: Transport::Tcp,
                    from: "10.0.0.2:9001".into(),
                    to: "10.0.0.3:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                    span: s(3),
                },
            ),
            ev(
                7,
                "n3",
                ObsEventKind::TaintMapLookup {
                    gid: 42,
                    taint: 5,
                    span: s(3),
                },
            ),
            ev(
                8,
                "n3",
                ObsEventKind::SinkHit {
                    sink: "LOG.info".into(),
                    tags: vec!["zk.zxid".into()],
                    gids: vec![42],
                },
            ),
        ]
    }

    fn example_events() -> Vec<ObsEvent> {
        example_events_wire(true)
    }

    #[test]
    fn reconstructs_two_hop_path() {
        let trace = reconstruct(&example_events(), 42);
        assert!(trace.exact, "v2 events span-pair every crossing");
        assert_eq!(trace.crossings(), 2);
        assert_eq!(trace.nodes(), vec!["n1", "n2", "n3"]);
        assert_eq!(trace.sinks(), vec![("n3", "LOG.info")]);
        assert!(matches!(trace.hops.first(), Some(Hop::Minted { node, .. }) if node == "n1"));
        assert!(matches!(trace.hops.last(), Some(Hop::Sunk { node, .. }) if node == "n3"));
        let rendered = trace.to_string();
        assert!(rendered.contains("minted on n1 (tag zk.zxid)"));
        assert!(rendered.contains("crossed tcp n1\u{2192}n2 bytes 17..21"));
        assert!(rendered.contains("crossed tcp n2\u{2192}n3 bytes 17..21"));
        assert!(rendered.contains("sunk at LOG.info on n3"));
    }

    #[test]
    fn unknown_gid_yields_empty_trace() {
        let trace = reconstruct(&example_events(), 999);
        assert!(trace.is_empty());
        assert_eq!(trace.to_string(), "gid 999: (no events)");
    }

    #[test]
    fn unmatched_encode_is_an_open_crossing() {
        let events = vec![
            ev(
                0,
                "n1",
                ObsEventKind::TaintMapRegister {
                    taint: 1,
                    gid: 9,
                    span: 0,
                },
            ),
            ev(
                1,
                "n1",
                ObsEventKind::BoundaryEncode {
                    transport: Transport::Udp,
                    from: "10.0.0.1:5000".into(),
                    to: "10.0.0.2:5000".into(),
                    data_bytes: 8,
                    wire_bytes: 40,
                    spans: vec![span(9, 0, 8)],
                    span: 0,
                    parent: 0,
                },
            ),
        ];
        let trace = reconstruct(&events, 9);
        assert_eq!(trace.crossings(), 0, "no decode means no completed hop");
        assert!(!trace.exact, "an unpaired crossing is not exact");
        assert!(trace
            .to_string()
            .contains("crossed udp n1\u{2192}? bytes 0..8"));
    }

    #[test]
    fn degraded_lookup_is_a_pending_hop_until_reconciled() {
        let mut events = vec![
            ev(
                0,
                "n1",
                ObsEventKind::TaintMapRegister {
                    taint: 7,
                    gid: 42,
                    span: 0,
                },
            ),
            ev(1, "n2", ObsEventKind::DegradedLookup { gid: 42, shard: 1 }),
        ];
        let open = reconstruct(&events, 42);
        assert_eq!(open.pending_hops(), 1);
        assert!(!open.pending_all_resolved());
        assert!(open
            .to_string()
            .contains("pending on n2 (shard 1 unreachable)"));

        events.push(ev(
            2,
            "n2",
            ObsEventKind::PendingResolved { gid: 42, taint: 9 },
        ));
        let closed = reconstruct(&events, 42);
        assert_eq!(closed.pending_hops(), 1);
        assert!(closed.pending_all_resolved());
        assert!(closed.to_string().contains("resolved on n2"));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut events = example_events();
        events.reverse();
        let trace = reconstruct(&events, 42);
        assert_eq!(trace.crossings(), 2);
    }

    #[test]
    fn other_gids_in_same_payload_are_ignored() {
        let mut events = example_events();
        if let ObsEventKind::BoundaryEncode { spans, .. } = &mut events[2].kind {
            spans.push(span(77, 0, 4));
        }
        let trace = reconstruct(&events, 42);
        assert_eq!(trace.crossings(), 2);
        let other = reconstruct(&events, 77);
        // gid 77 appears only in one encode: open crossing, no registration.
        assert_eq!(other.crossings(), 0);
        assert_eq!(other.hops.len(), 1);
    }

    #[test]
    fn v1_events_fall_back_to_inference_with_identical_hops() {
        let exact = reconstruct(&example_events_wire(true), 42);
        let v1 = reconstruct(&example_events_wire(false), 42);
        assert!(exact.exact);
        assert!(!v1.exact, "span-less events cannot be exact");
        assert_eq!(v1.crossings(), 2, "inference still closes both hops");
        assert_eq!(v1.nodes(), exact.nodes());
        assert_eq!(v1.to_string(), exact.to_string());
    }

    #[test]
    fn inferred_mode_ignores_spans_but_agrees_on_unambiguous_paths() {
        let events = example_events_wire(true);
        let exact = reconstruct(&events, 42);
        let inferred = reconstruct_inferred(&events, 42);
        assert!(exact.exact);
        assert!(!inferred.exact);
        assert_eq!(
            exact.hops, inferred.hops,
            "on an unambiguous path both pairings agree hop for hop"
        );
    }

    #[test]
    fn span_pairing_disambiguates_reordered_decodes() {
        // Two tainted payloads leave n1 for the same destination
        // address; their decode events land in the opposite order (the
        // receiver drained the second frame first). Address-pair
        // inference mis-pairs them; span pairing cannot.
        let mk_enc = |seq: u64, sp: u64| {
            ev(
                seq,
                "n1",
                ObsEventKind::BoundaryEncode {
                    transport: Transport::Tcp,
                    from: "10.0.0.1:9000".into(),
                    to: "10.0.0.2:9000".into(),
                    data_bytes: 8,
                    wire_bytes: 40,
                    spans: vec![span(42, 0, 4)],
                    span: sp,
                    parent: 0,
                },
            )
        };
        let mk_dec = |seq: u64, node: &str, sp: u64| {
            ev(
                seq,
                node,
                ObsEventKind::BoundaryDecode {
                    transport: Transport::Tcp,
                    from: "10.0.0.1:9000".into(),
                    to: "10.0.0.2:9000".into(),
                    data_bytes: 8,
                    wire_bytes: 40,
                    spans: vec![span(42, 0, 4)],
                    span: sp,
                },
            )
        };
        // Decode of span 11 (recorded by "late") comes after decode of
        // span 10 (recorded by "early"), but encode order is 10, 11.
        let events = vec![
            mk_enc(0, 10),
            mk_enc(1, 11),
            mk_dec(2, "late", 11),
            mk_dec(3, "early", 10),
        ];
        let exact = reconstruct(&events, 42);
        assert!(exact.exact);
        let to_nodes: Vec<Option<&str>> = exact
            .hops
            .iter()
            .filter_map(|h| match h {
                Hop::Crossed { to_node, .. } => Some(to_node.as_deref()),
                _ => None,
            })
            .collect();
        assert_eq!(to_nodes, vec![Some("early"), Some("late")]);

        let inferred = reconstruct_inferred(&events, 42);
        let inferred_to: Vec<Option<&str>> = inferred
            .hops
            .iter()
            .filter_map(|h| match h {
                Hop::Crossed { to_node, .. } => Some(to_node.as_deref()),
                _ => None,
            })
            .collect();
        assert_eq!(
            inferred_to,
            vec![Some("late"), Some("early")],
            "address-pair inference mis-pairs the reordered decodes"
        );
    }
}

//! Provenance ledger: reconstruct the cross-VM journey of a global
//! taint id from flight-recorder events alone.
//!
//! The algorithm works on the merged, clock-ordered event stream of
//! every VM in a cluster:
//!
//! 1. Find the [`TaintMapRegister`](crate::ObsEventKind::TaintMapRegister)
//!    that assigned the gid — that names the registering node and its
//!    local taint id.
//! 2. Walk backwards on that node for the
//!    [`SourceMinted`](crate::ObsEventKind::SourceMinted) of the same
//!    local taint — the minting hop.
//! 3. Every [`BoundaryEncode`](crate::ObsEventKind::BoundaryEncode)
//!    whose gid spans contain the gid opens a crossing; it is closed by
//!    the first later [`BoundaryDecode`](crate::ObsEventKind::BoundaryDecode)
//!    on the same `(from, to)` address pair that also carries the gid.
//! 4. Each node's first [`TaintMapLookup`](crate::ObsEventKind::TaintMapLookup)
//!    of the gid becomes a resolution hop.
//! 5. Every [`SinkHit`](crate::ObsEventKind::SinkHit) listing the gid
//!    becomes a sink hop.
//!
//! Hops are emitted in clock order, so the rendered trace reads as the
//! paper's running example: *minted on n1 → registered as gid 42 →
//! crossed tcp n1→n2 bytes 17..21 → sunk at LOG.info on n3*.

use crate::event::{ObsEvent, ObsEventKind, Transport};

/// One step in a [`ProvenanceTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum Hop {
    /// A source point minted the taint.
    Minted {
        /// Minting VM.
        node: String,
        /// Source tag.
        tag: String,
        /// Local taint id on the minting VM.
        taint: u32,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// The Taint Map assigned the global id.
    Registered {
        /// Registering VM.
        node: String,
        /// Local taint id that was serialized.
        taint: u32,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// The taint crossed a socket or file boundary.
    Crossed {
        /// Transport used.
        transport: Transport,
        /// Sending VM.
        from_node: String,
        /// Receiving VM, if the matching decode was observed.
        to_node: Option<String>,
        /// Sender address `ip:port`.
        from: String,
        /// Receiver address `ip:port`.
        to: String,
        /// Tainted data byte range `start..end` in the payload.
        bytes: (usize, usize),
        /// Clock sequence of the encode event.
        seq: u64,
    },
    /// A VM resolved the gid back to a local taint.
    Resolved {
        /// Resolving VM.
        node: String,
        /// Local taint id it interned to.
        taint: u32,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// A VM could not reach the owning shard and attached a
    /// `PendingGid` sentinel instead of a real taint (degraded mode).
    Pending {
        /// VM that degraded the lookup.
        node: String,
        /// Index of the unreachable shard.
        shard: usize,
        /// Clock sequence of the event.
        seq: u64,
    },
    /// A sink observed the taint.
    Sunk {
        /// VM the sink fired on.
        node: String,
        /// Sink identifier, e.g. `LOG.info`.
        sink: String,
        /// Clock sequence of the event.
        seq: u64,
    },
}

impl Hop {
    /// The hop's cluster sequence number (total order across VMs).
    pub fn seq(&self) -> u64 {
        match self {
            Hop::Minted { seq, .. }
            | Hop::Registered { seq, .. }
            | Hop::Crossed { seq, .. }
            | Hop::Resolved { seq, .. }
            | Hop::Pending { seq, .. }
            | Hop::Sunk { seq, .. } => *seq,
        }
    }
}

impl std::fmt::Display for Hop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hop::Minted { node, tag, .. } => write!(f, "minted on {node} (tag {tag})"),
            Hop::Registered { node, .. } => write!(f, "registered on {node}"),
            Hop::Crossed {
                transport,
                from_node,
                to_node,
                bytes,
                ..
            } => {
                let to = to_node.as_deref().unwrap_or("?");
                write!(
                    f,
                    "crossed {transport} {from_node}\u{2192}{to} bytes {}..{}",
                    bytes.0, bytes.1
                )
            }
            Hop::Resolved { node, .. } => write!(f, "resolved on {node}"),
            Hop::Pending { node, shard, .. } => {
                write!(f, "pending on {node} (shard {shard} unreachable)")
            }
            Hop::Sunk { node, sink, .. } => write!(f, "sunk at {sink} on {node}"),
        }
    }
}

/// The reconstructed journey of one global taint id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvenanceTrace {
    /// The gid that was traced.
    pub gid: u32,
    /// The hops, in cluster clock order.
    pub hops: Vec<Hop>,
}

impl ProvenanceTrace {
    /// True when no event mentioned the gid.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Number of completed boundary crossings (encode matched to a
    /// decode).
    pub fn crossings(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| {
                matches!(
                    h,
                    Hop::Crossed {
                        to_node: Some(_),
                        ..
                    }
                )
            })
            .count()
    }

    /// Distinct VM names the taint touched, in first-seen order.
    pub fn nodes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for hop in &self.hops {
            let names: Vec<&str> = match hop {
                Hop::Minted { node, .. }
                | Hop::Registered { node, .. }
                | Hop::Resolved { node, .. }
                | Hop::Pending { node, .. }
                | Hop::Sunk { node, .. } => vec![node.as_str()],
                Hop::Crossed {
                    from_node, to_node, ..
                } => {
                    let mut v = vec![from_node.as_str()];
                    if let Some(t) = to_node {
                        v.push(t.as_str());
                    }
                    v
                }
            };
            for n in names {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Number of degraded lookups (a `PendingGid` sentinel stood in for
    /// the real taint while the owning shard was unreachable).
    pub fn pending_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| matches!(h, Hop::Pending { .. }))
            .count()
    }

    /// True when every [`Hop::Pending`] is followed (in clock order) by
    /// a [`Hop::Resolved`] on the same node — the soundness condition
    /// for degraded mode: no delivered byte is left holding a sentinel
    /// after the partition healed.
    pub fn pending_all_resolved(&self) -> bool {
        self.hops.iter().all(|h| match h {
            Hop::Pending { node, seq, .. } => self.hops.iter().any(|later| {
                matches!(later, Hop::Resolved { node: rn, seq: rs, .. }
                    if rn == node && rs > seq)
            }),
            _ => true,
        })
    }

    /// The sinks that observed the taint, as `(node, sink)` pairs.
    pub fn sinks(&self) -> Vec<(&str, &str)> {
        self.hops
            .iter()
            .filter_map(|h| match h {
                Hop::Sunk { node, sink, .. } => Some((node.as_str(), sink.as_str())),
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Display for ProvenanceTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gid {}: ", self.gid)?;
        if self.hops.is_empty() {
            return write!(f, "(no events)");
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " \u{2192} ")?;
            }
            write!(f, "{hop}")?;
        }
        Ok(())
    }
}

fn spans_contain(spans: &[crate::event::GidSpan], gid: u32) -> Option<(usize, usize)> {
    spans
        .iter()
        .find(|s| s.gid == gid)
        .map(|s| (s.start, s.end))
}

/// Reconstructs the journey of `gid` from the merged event stream of
/// every recorder in a cluster. `events` need not be pre-sorted.
pub fn reconstruct(events: &[ObsEvent], gid: u32) -> ProvenanceTrace {
    let mut events: Vec<&ObsEvent> = events.iter().collect();
    events.sort_by_key(|e| e.seq);

    let mut hops: Vec<Hop> = Vec::new();

    // 1. Registration names the origin node + local taint.
    let registration = events.iter().find_map(|e| match &e.kind {
        ObsEventKind::TaintMapRegister { taint, gid: g } if *g == gid => {
            Some((e.node.clone(), *taint, e.seq))
        }
        _ => None,
    });

    if let Some((ref reg_node, reg_taint, reg_seq)) = registration {
        // 2. The minting event precedes registration on the same node.
        let minted = events
            .iter()
            .rev()
            .filter(|e| e.seq < reg_seq && e.node == *reg_node)
            .find_map(|e| match &e.kind {
                ObsEventKind::SourceMinted { taint, tag } if *taint == reg_taint => {
                    Some(Hop::Minted {
                        node: e.node.clone(),
                        tag: tag.clone(),
                        taint: *taint,
                        seq: e.seq,
                    })
                }
                _ => None,
            });
        if let Some(m) = minted {
            hops.push(m);
        }
        hops.push(Hop::Registered {
            node: reg_node.clone(),
            taint: reg_taint,
            seq: reg_seq,
        });
    }

    // 3. Boundary crossings: pair each gid-carrying encode with the
    //    first later gid-carrying decode on the same address pair.
    let mut used_decodes: Vec<u64> = Vec::new();
    for e in &events {
        if let ObsEventKind::BoundaryEncode {
            transport,
            from,
            to,
            spans,
            ..
        } = &e.kind
        {
            let Some(bytes) = spans_contain(spans, gid) else {
                continue;
            };
            let matched = events.iter().find(|d| {
                d.seq > e.seq
                    && !used_decodes.contains(&d.seq)
                    && matches!(&d.kind,
                        ObsEventKind::BoundaryDecode { from: df, to: dt, spans: ds, .. }
                            if df == from && dt == to && spans_contain(ds, gid).is_some())
            });
            let to_node = matched.map(|d| {
                used_decodes.push(d.seq);
                d.node.clone()
            });
            hops.push(Hop::Crossed {
                transport: *transport,
                from_node: e.node.clone(),
                to_node,
                from: from.clone(),
                to: to.clone(),
                bytes,
                seq: e.seq,
            });
        }
    }

    // 4. First lookup per node is a resolution hop. Degraded lookups
    //    become pending hops; a later `PendingResolved` on the node
    //    closes them with a (reconciled) resolution hop.
    let mut resolved_nodes: Vec<String> = Vec::new();
    for e in &events {
        match &e.kind {
            ObsEventKind::TaintMapLookup { gid: g, taint }
                if *g == gid && !resolved_nodes.contains(&e.node) =>
            {
                resolved_nodes.push(e.node.clone());
                hops.push(Hop::Resolved {
                    node: e.node.clone(),
                    taint: *taint,
                    seq: e.seq,
                });
            }
            ObsEventKind::DegradedLookup { gid: g, shard } if *g == gid => {
                hops.push(Hop::Pending {
                    node: e.node.clone(),
                    shard: *shard,
                    seq: e.seq,
                });
            }
            ObsEventKind::PendingResolved { gid: g, taint } if *g == gid => {
                resolved_nodes.push(e.node.clone());
                hops.push(Hop::Resolved {
                    node: e.node.clone(),
                    taint: *taint,
                    seq: e.seq,
                });
            }
            _ => {}
        }
    }

    // 5. Sink hits listing the gid.
    for e in &events {
        if let ObsEventKind::SinkHit { sink, gids, .. } = &e.kind {
            if gids.contains(&gid) {
                hops.push(Hop::Sunk {
                    node: e.node.clone(),
                    sink: sink.clone(),
                    seq: e.seq,
                });
            }
        }
    }

    hops.sort_by_key(|h| h.seq());
    ProvenanceTrace { gid, hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::GidSpan;

    fn ev(seq: u64, node: &str, kind: ObsEventKind) -> ObsEvent {
        ObsEvent {
            seq,
            node: node.to_string(),
            kind,
        }
    }

    fn span(gid: u32, start: usize, end: usize) -> GidSpan {
        GidSpan { gid, start, end }
    }

    /// The paper's running example: mint on n1, register gid 42, hop
    /// n1→n2 then n2→n3, sink at LOG.info on n3.
    fn example_events() -> Vec<ObsEvent> {
        vec![
            ev(
                0,
                "n1",
                ObsEventKind::SourceMinted {
                    taint: 7,
                    tag: "zk.zxid".into(),
                },
            ),
            ev(
                1,
                "n1",
                ObsEventKind::TaintMapRegister { taint: 7, gid: 42 },
            ),
            ev(
                2,
                "n1",
                ObsEventKind::BoundaryEncode {
                    transport: Transport::Tcp,
                    from: "10.0.0.1:9000".into(),
                    to: "10.0.0.2:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                },
            ),
            ev(
                3,
                "n2",
                ObsEventKind::BoundaryDecode {
                    transport: Transport::Tcp,
                    from: "10.0.0.1:9000".into(),
                    to: "10.0.0.2:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                },
            ),
            ev(4, "n2", ObsEventKind::TaintMapLookup { gid: 42, taint: 3 }),
            ev(
                5,
                "n2",
                ObsEventKind::BoundaryEncode {
                    transport: Transport::Tcp,
                    from: "10.0.0.2:9001".into(),
                    to: "10.0.0.3:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                },
            ),
            ev(
                6,
                "n3",
                ObsEventKind::BoundaryDecode {
                    transport: Transport::Tcp,
                    from: "10.0.0.2:9001".into(),
                    to: "10.0.0.3:9000".into(),
                    data_bytes: 32,
                    wire_bytes: 160,
                    spans: vec![span(42, 17, 21)],
                },
            ),
            ev(7, "n3", ObsEventKind::TaintMapLookup { gid: 42, taint: 5 }),
            ev(
                8,
                "n3",
                ObsEventKind::SinkHit {
                    sink: "LOG.info".into(),
                    tags: vec!["zk.zxid".into()],
                    gids: vec![42],
                },
            ),
        ]
    }

    #[test]
    fn reconstructs_two_hop_path() {
        let trace = reconstruct(&example_events(), 42);
        assert_eq!(trace.crossings(), 2);
        assert_eq!(trace.nodes(), vec!["n1", "n2", "n3"]);
        assert_eq!(trace.sinks(), vec![("n3", "LOG.info")]);
        assert!(matches!(trace.hops.first(), Some(Hop::Minted { node, .. }) if node == "n1"));
        assert!(matches!(trace.hops.last(), Some(Hop::Sunk { node, .. }) if node == "n3"));
        let rendered = trace.to_string();
        assert!(rendered.contains("minted on n1 (tag zk.zxid)"));
        assert!(rendered.contains("crossed tcp n1\u{2192}n2 bytes 17..21"));
        assert!(rendered.contains("crossed tcp n2\u{2192}n3 bytes 17..21"));
        assert!(rendered.contains("sunk at LOG.info on n3"));
    }

    #[test]
    fn unknown_gid_yields_empty_trace() {
        let trace = reconstruct(&example_events(), 999);
        assert!(trace.is_empty());
        assert_eq!(trace.to_string(), "gid 999: (no events)");
    }

    #[test]
    fn unmatched_encode_is_an_open_crossing() {
        let events = vec![
            ev(0, "n1", ObsEventKind::TaintMapRegister { taint: 1, gid: 9 }),
            ev(
                1,
                "n1",
                ObsEventKind::BoundaryEncode {
                    transport: Transport::Udp,
                    from: "10.0.0.1:5000".into(),
                    to: "10.0.0.2:5000".into(),
                    data_bytes: 8,
                    wire_bytes: 40,
                    spans: vec![span(9, 0, 8)],
                },
            ),
        ];
        let trace = reconstruct(&events, 9);
        assert_eq!(trace.crossings(), 0, "no decode means no completed hop");
        assert!(trace
            .to_string()
            .contains("crossed udp n1\u{2192}? bytes 0..8"));
    }

    #[test]
    fn degraded_lookup_is_a_pending_hop_until_reconciled() {
        let mut events = vec![
            ev(
                0,
                "n1",
                ObsEventKind::TaintMapRegister { taint: 7, gid: 42 },
            ),
            ev(1, "n2", ObsEventKind::DegradedLookup { gid: 42, shard: 1 }),
        ];
        let open = reconstruct(&events, 42);
        assert_eq!(open.pending_hops(), 1);
        assert!(!open.pending_all_resolved());
        assert!(open
            .to_string()
            .contains("pending on n2 (shard 1 unreachable)"));

        events.push(ev(
            2,
            "n2",
            ObsEventKind::PendingResolved { gid: 42, taint: 9 },
        ));
        let closed = reconstruct(&events, 42);
        assert_eq!(closed.pending_hops(), 1);
        assert!(closed.pending_all_resolved());
        assert!(closed.to_string().contains("resolved on n2"));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut events = example_events();
        events.reverse();
        let trace = reconstruct(&events, 42);
        assert_eq!(trace.crossings(), 2);
    }

    #[test]
    fn other_gids_in_same_payload_are_ignored() {
        let mut events = example_events();
        if let ObsEventKind::BoundaryEncode { spans, .. } = &mut events[2].kind {
            spans.push(span(77, 0, 4));
        }
        let trace = reconstruct(&events, 42);
        assert_eq!(trace.crossings(), 2);
        let other = reconstruct(&events, 77);
        // gid 77 appears only in one encode: open crossing, no registration.
        assert_eq!(other.crossings(), 0);
        assert_eq!(other.hops.len(), 1);
    }
}

//! Hot-path cost attribution: per-phase nanosecond/operation counters
//! and the per-run [`ObsReport`] rollup.
//!
//! The Taint Rabbit question — *which* hot path dominates tracking
//! cost, the codec, the taint tree or the map round-trips? — needs
//! attributed measurement, not a single wall-clock number. Call sites
//! in `dista-jre` and `dista-taintmap` wrap each phase with an
//! `Instant` and feed the elapsed nanoseconds into a [`PhaseHandle`];
//! the counters land in the shared registry as
//! `dista_phase_ns{node,phase}` / `dista_phase_ops{node,phase}`, so
//! they flow through metric dumps, telemetry pushes and scrapes like
//! any other instrument. [`ObsReport::from_dump`] folds a dump back
//! into a per-phase cost table.
//!
//! Timing itself stays out of this crate (no clocks here — `dista-obs`
//! records what callers measured), and a disabled [`PhaseSet`] keeps
//! the "plain mode pays nothing" invariant: [`PhaseHandle::is_enabled`]
//! lets hot paths skip even the `Instant::now` call.

use crate::registry::{Counter, MetricsDump, MetricsRegistry, SampleValue};

/// Phase label for time spent in wire-codec encoding.
pub const PHASE_CODEC_ENCODE: &str = "codec_encode";
/// Phase label for time spent in wire-codec decoding.
pub const PHASE_CODEC_DECODE: &str = "codec_decode";
/// Phase label for taint-tree work at the boundary (run assembly and
/// shadow resolution).
pub const PHASE_TAINT_TREE: &str = "taint_tree";
/// Phase label for Taint Map RPC round-trips.
pub const PHASE_MAP_RPC: &str = "map_rpc";

/// Every attributed phase, in report order.
pub const PHASES: &[&str] = &[
    PHASE_CODEC_ENCODE,
    PHASE_CODEC_DECODE,
    PHASE_TAINT_TREE,
    PHASE_MAP_RPC,
];

/// One phase's counter pair. Cloning shares the counters.
#[derive(Debug, Clone, Default)]
pub struct PhaseHandle {
    enabled: bool,
    ns: Counter,
    ops: Counter,
}

impl PhaseHandle {
    /// A handle whose records vanish (and whose `is_enabled` tells hot
    /// paths to skip the clock read entirely).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether records actually land anywhere. Call sites guard the
    /// `Instant::now()` pair on this so disabled runs pay one branch.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one operation that took `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if self.enabled {
            self.ns.add(ns);
            self.ops.inc();
        }
    }

    /// Total attributed nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ns.get()
    }

    /// Total attributed operations.
    pub fn total_ops(&self) -> u64 {
        self.ops.get()
    }
}

/// The four hot-path phase handles for one VM, resolved once at
/// construction time.
#[derive(Debug, Clone, Default)]
pub struct PhaseSet {
    /// Wire-codec encode time.
    pub codec_encode: PhaseHandle,
    /// Wire-codec decode time.
    pub codec_decode: PhaseHandle,
    /// Boundary taint-tree work (run assembly, shadow resolution).
    pub taint_tree: PhaseHandle,
    /// Taint Map RPC round-trips.
    pub map_rpc: PhaseHandle,
}

impl PhaseSet {
    /// A set of disabled handles.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Handles writing `dista_phase_ns` / `dista_phase_ops` members
    /// labeled `{node=<node>, phase=<phase>}` into `registry`.
    pub fn for_node(registry: &MetricsRegistry, node: &str) -> Self {
        let handle = |phase: &str| PhaseHandle {
            enabled: true,
            ns: registry.counter_with("dista_phase_ns", &[("node", node), ("phase", phase)]),
            ops: registry.counter_with("dista_phase_ops", &[("node", node), ("phase", phase)]),
        };
        PhaseSet {
            codec_encode: handle(PHASE_CODEC_ENCODE),
            codec_decode: handle(PHASE_CODEC_DECODE),
            taint_tree: handle(PHASE_TAINT_TREE),
            map_rpc: handle(PHASE_MAP_RPC),
        }
    }

    /// Whether the handles record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.codec_encode.is_enabled()
    }
}

/// One phase's aggregated cost in an [`ObsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCost {
    /// Phase label (one of [`PHASES`]).
    pub phase: String,
    /// Total attributed nanoseconds across all nodes.
    pub ns: u64,
    /// Total attributed operations across all nodes.
    pub ops: u64,
}

impl PhaseCost {
    /// Mean nanoseconds per operation (0 when no ops).
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.ns as f64 / self.ops as f64
        }
    }
}

/// Per-run cost-attribution rollup: where tracking time went, plus the
/// observability health counters a run report should never omit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Cluster-total cost per phase, in [`PHASES`] order (phases with
    /// zero ops are included so field sets stay stable).
    pub phases: Vec<PhaseCost>,
    /// Flight-recorder events lost to ring wrap-around, cluster-total.
    pub flight_dropped_events: u64,
}

impl ObsReport {
    /// Folds a metrics dump into the report: `dista_phase_ns`/`_ops`
    /// members are summed per phase label across nodes.
    pub fn from_dump(dump: &MetricsDump) -> Self {
        let phase_total = |family: &str, phase: &str| -> u64 {
            dump.samples
                .iter()
                .filter(|s| {
                    s.name == family && s.labels.iter().any(|(k, v)| k == "phase" && v == phase)
                })
                .filter_map(|s| match s.value {
                    SampleValue::Counter(v) => Some(v),
                    _ => None,
                })
                .sum()
        };
        ObsReport {
            phases: PHASES
                .iter()
                .map(|phase| PhaseCost {
                    phase: (*phase).to_string(),
                    ns: phase_total("dista_phase_ns", phase),
                    ops: phase_total("dista_phase_ops", phase),
                })
                .collect(),
            flight_dropped_events: dump.counter_total("flight_dropped_events"),
        }
    }

    /// Total attributed nanoseconds across every phase.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.ns).sum()
    }

    /// Human-readable cost table.
    pub fn render(&self) -> String {
        let total = self.total_ns().max(1);
        let mut out = String::from("== cost attribution ==\n");
        for p in &self.phases {
            out.push_str(&format!(
                "{:<14} {:>12} ns  {:>10} ops  {:>10.1} ns/op  {:>5.1}%\n",
                p.phase,
                p.ns,
                p.ops,
                p.ns_per_op(),
                100.0 * p.ns as f64 / total as f64,
            ));
        }
        out.push_str(&format!(
            "flight_dropped_events {}\n",
            self.flight_dropped_events
        ));
        out
    }

    /// Hand-rolled JSON object (the vendored serde has no serde_json):
    /// `{"phases":[{"phase":…,"ns":…,"ops":…},…],"flight_dropped_events":…}`.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"ns\":{},\"ops\":{}}}",
                    p.phase, p.ns, p.ops
                )
            })
            .collect();
        format!(
            "{{\"phases\":[{}],\"flight_dropped_events\":{}}}",
            phases.join(","),
            self.flight_dropped_events
        )
    }
}

/// Stage label for the message-queue ingest leg of a pipeline.
pub const STAGE_INGEST: &str = "ingest";
/// Stage label for the storage-write leg (bridge consumer → table).
pub const STAGE_STORE: &str = "store";
/// Stage label for the batch-analysis leg (scan → job → sink).
pub const STAGE_ANALYZE: &str = "analyze";
/// Stage label for broker-fronted tenant delivery.
pub const STAGE_DELIVER: &str = "deliver";

/// Every pipeline stage, in report order.
pub const PIPELINE_STAGES: &[&str] = &[STAGE_INGEST, STAGE_STORE, STAGE_ANALYZE, STAGE_DELIVER];

/// Per-node pipeline stage timing, the cross-system sibling of
/// [`PhaseSet`]: where [`PhaseSet`] attributes tracking cost to hot-path
/// phases *within* a VM, a `StageSet` attributes wall time to the
/// *application-boundary* stages of a composed pipeline. Counters land
/// in the shared registry as `pipeline_stage_ns{node,stage}` /
/// `pipeline_stage_ops{node,stage}`.
#[derive(Debug, Clone, Default)]
pub struct StageSet {
    registry: Option<MetricsRegistry>,
    node: String,
}

impl StageSet {
    /// A set whose handles record nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A set writing `pipeline_stage_ns` / `pipeline_stage_ops` members
    /// labeled `{node=<node>, stage=<stage>}` into `registry`.
    pub fn for_node(registry: &MetricsRegistry, node: &str) -> Self {
        StageSet {
            registry: Some(registry.clone()),
            node: node.to_string(),
        }
    }

    /// Whether stage handles record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The counter pair for `stage`. Stage labels are open-ended (the
    /// well-known ones are in [`PIPELINE_STAGES`]); repeated calls with
    /// the same stage share the same underlying counters.
    pub fn stage(&self, stage: &str) -> PhaseHandle {
        match &self.registry {
            Some(reg) => PhaseHandle {
                enabled: true,
                ns: reg.counter_with(
                    "pipeline_stage_ns",
                    &[("node", self.node.as_str()), ("stage", stage)],
                ),
                ops: reg.counter_with(
                    "pipeline_stage_ops",
                    &[("node", self.node.as_str()), ("stage", stage)],
                ),
            },
            None => PhaseHandle::disabled(),
        }
    }
}

/// One stage's aggregated cost in a [`PipelineCostReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCost {
    /// Stage label (usually one of [`PIPELINE_STAGES`]).
    pub stage: String,
    /// Total attributed nanoseconds across all nodes.
    pub ns: u64,
    /// Total stage completions across all nodes.
    pub ops: u64,
}

impl StageCost {
    /// Mean nanoseconds per stage completion (0 when no ops).
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.ns as f64 / self.ops as f64
        }
    }
}

/// Per-run pipeline cost rollup: wall time per cross-system stage,
/// summed across nodes from `pipeline_stage_ns{node,stage}` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineCostReport {
    /// Cluster-total cost per stage. Well-known stages come first in
    /// [`PIPELINE_STAGES`] order (always present, so field sets stay
    /// stable); any extra stage labels follow alphabetically.
    pub stages: Vec<StageCost>,
}

impl PipelineCostReport {
    /// Folds a metrics dump into the report.
    pub fn from_dump(dump: &MetricsDump) -> Self {
        let stage_total = |family: &str, stage: &str| -> u64 {
            dump.samples
                .iter()
                .filter(|s| {
                    s.name == family && s.labels.iter().any(|(k, v)| k == "stage" && v == stage)
                })
                .filter_map(|s| match s.value {
                    SampleValue::Counter(v) => Some(v),
                    _ => None,
                })
                .sum()
        };
        let mut labels: Vec<String> = PIPELINE_STAGES.iter().map(|s| (*s).to_string()).collect();
        let mut extras: Vec<String> = dump
            .samples
            .iter()
            .filter(|s| s.name == "pipeline_stage_ns")
            .filter_map(|s| {
                s.labels
                    .iter()
                    .find(|(k, _)| k == "stage")
                    .map(|(_, v)| v.clone())
            })
            .filter(|v| !labels.contains(v))
            .collect();
        extras.sort();
        extras.dedup();
        labels.extend(extras);
        PipelineCostReport {
            stages: labels
                .into_iter()
                .map(|stage| StageCost {
                    ns: stage_total("pipeline_stage_ns", &stage),
                    ops: stage_total("pipeline_stage_ops", &stage),
                    stage,
                })
                .collect(),
        }
    }

    /// Total attributed nanoseconds across every stage.
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.ns).sum()
    }

    /// Human-readable stage table.
    pub fn render(&self) -> String {
        let total = self.total_ns().max(1);
        let mut out = String::from("== pipeline stages ==\n");
        for s in &self.stages {
            out.push_str(&format!(
                "{:<14} {:>12} ns  {:>10} ops  {:>10.1} ns/op  {:>5.1}%\n",
                s.stage,
                s.ns,
                s.ops,
                s.ns_per_op(),
                100.0 * s.ns as f64 / total as f64,
            ));
        }
        out
    }

    /// Hand-rolled JSON object:
    /// `{"stages":[{"stage":…,"ns":…,"ops":…},…]}`.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\":\"{}\",\"ns\":{},\"ops\":{}}}",
                    s.stage, s.ns, s.ops
                )
            })
            .collect();
        format!("{{\"stages\":[{}]}}", stages.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_record_nothing() {
        let set = PhaseSet::disabled();
        assert!(!set.is_enabled());
        set.codec_encode.record_ns(100);
        assert_eq!(set.codec_encode.total_ns(), 0);
        assert_eq!(set.codec_encode.total_ops(), 0);
    }

    #[test]
    fn report_sums_phases_across_nodes() {
        let reg = MetricsRegistry::new();
        let a = PhaseSet::for_node(&reg, "n1");
        let b = PhaseSet::for_node(&reg, "n2");
        assert!(a.is_enabled());
        a.codec_encode.record_ns(100);
        a.codec_encode.record_ns(50);
        b.codec_encode.record_ns(25);
        b.map_rpc.record_ns(1000);
        reg.counter_with("flight_dropped_events", &[("node", "n1")])
            .add(3);
        let report = ObsReport::from_dump(&reg.snapshot());
        assert_eq!(report.phases.len(), PHASES.len());
        let enc = &report.phases[0];
        assert_eq!(enc.phase, PHASE_CODEC_ENCODE);
        assert_eq!(enc.ns, 175);
        assert_eq!(enc.ops, 3);
        let rpc = report
            .phases
            .iter()
            .find(|p| p.phase == PHASE_MAP_RPC)
            .unwrap();
        assert_eq!(rpc.ns, 1000);
        assert_eq!(rpc.ops, 1);
        assert_eq!(report.flight_dropped_events, 3);
        assert_eq!(report.total_ns(), 1175);
        let text = report.render();
        assert!(text.contains("codec_encode"));
        assert!(text.contains("flight_dropped_events 3"));
        let json = report.to_json();
        assert!(json.contains("\"phase\":\"map_rpc\",\"ns\":1000,\"ops\":1"));
        assert!(json.contains("\"flight_dropped_events\":3"));
    }

    #[test]
    fn stage_set_sums_across_nodes_and_keeps_known_stage_order() {
        let reg = MetricsRegistry::new();
        let a = StageSet::for_node(&reg, "mq-producer");
        let b = StageSet::for_node(&reg, "bridge");
        assert!(a.is_enabled());
        a.stage(STAGE_INGEST).record_ns(100);
        b.stage(STAGE_INGEST).record_ns(40);
        b.stage(STAGE_STORE).record_ns(700);
        b.stage("custom_leg").record_ns(9);
        let report = PipelineCostReport::from_dump(&reg.snapshot());
        assert_eq!(report.stages[0].stage, STAGE_INGEST);
        assert_eq!(report.stages[0].ns, 140);
        assert_eq!(report.stages[0].ops, 2);
        assert_eq!(report.stages[1].stage, STAGE_STORE);
        assert_eq!(report.stages[1].ns, 700);
        let custom = report
            .stages
            .iter()
            .find(|s| s.stage == "custom_leg")
            .unwrap();
        assert_eq!(custom.ns, 9);
        assert_eq!(report.total_ns(), 849);
        assert!(report.render().contains("store"));
        assert!(report
            .to_json()
            .contains("{\"stage\":\"store\",\"ns\":700,\"ops\":1}"));
        // Zero-op known stages stay in the report for stable field sets.
        assert!(report.stages.iter().any(|s| s.stage == STAGE_ANALYZE));
    }

    #[test]
    fn disabled_stage_set_hands_out_disabled_handles() {
        let set = StageSet::disabled();
        assert!(!set.is_enabled());
        let h = set.stage(STAGE_ANALYZE);
        h.record_ns(5);
        assert_eq!(h.total_ns(), 0);
    }

    #[test]
    fn ns_per_op_handles_zero_ops() {
        let p = PhaseCost {
            phase: "x".into(),
            ns: 0,
            ops: 0,
        };
        assert_eq!(p.ns_per_op(), 0.0);
    }
}

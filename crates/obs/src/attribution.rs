//! Hot-path cost attribution: per-phase nanosecond/operation counters
//! and the per-run [`ObsReport`] rollup.
//!
//! The Taint Rabbit question — *which* hot path dominates tracking
//! cost, the codec, the taint tree or the map round-trips? — needs
//! attributed measurement, not a single wall-clock number. Call sites
//! in `dista-jre` and `dista-taintmap` wrap each phase with an
//! `Instant` and feed the elapsed nanoseconds into a [`PhaseHandle`];
//! the counters land in the shared registry as
//! `dista_phase_ns{node,phase}` / `dista_phase_ops{node,phase}`, so
//! they flow through metric dumps, telemetry pushes and scrapes like
//! any other instrument. [`ObsReport::from_dump`] folds a dump back
//! into a per-phase cost table.
//!
//! Timing itself stays out of this crate (no clocks here — `dista-obs`
//! records what callers measured), and a disabled [`PhaseSet`] keeps
//! the "plain mode pays nothing" invariant: [`PhaseHandle::is_enabled`]
//! lets hot paths skip even the `Instant::now` call.

use crate::registry::{Counter, MetricsDump, MetricsRegistry, SampleValue};

/// Phase label for time spent in wire-codec encoding.
pub const PHASE_CODEC_ENCODE: &str = "codec_encode";
/// Phase label for time spent in wire-codec decoding.
pub const PHASE_CODEC_DECODE: &str = "codec_decode";
/// Phase label for taint-tree work at the boundary (run assembly and
/// shadow resolution).
pub const PHASE_TAINT_TREE: &str = "taint_tree";
/// Phase label for Taint Map RPC round-trips.
pub const PHASE_MAP_RPC: &str = "map_rpc";

/// Every attributed phase, in report order.
pub const PHASES: &[&str] = &[
    PHASE_CODEC_ENCODE,
    PHASE_CODEC_DECODE,
    PHASE_TAINT_TREE,
    PHASE_MAP_RPC,
];

/// One phase's counter pair. Cloning shares the counters.
#[derive(Debug, Clone, Default)]
pub struct PhaseHandle {
    enabled: bool,
    ns: Counter,
    ops: Counter,
}

impl PhaseHandle {
    /// A handle whose records vanish (and whose `is_enabled` tells hot
    /// paths to skip the clock read entirely).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether records actually land anywhere. Call sites guard the
    /// `Instant::now()` pair on this so disabled runs pay one branch.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one operation that took `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if self.enabled {
            self.ns.add(ns);
            self.ops.inc();
        }
    }

    /// Total attributed nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ns.get()
    }

    /// Total attributed operations.
    pub fn total_ops(&self) -> u64 {
        self.ops.get()
    }
}

/// The four hot-path phase handles for one VM, resolved once at
/// construction time.
#[derive(Debug, Clone, Default)]
pub struct PhaseSet {
    /// Wire-codec encode time.
    pub codec_encode: PhaseHandle,
    /// Wire-codec decode time.
    pub codec_decode: PhaseHandle,
    /// Boundary taint-tree work (run assembly, shadow resolution).
    pub taint_tree: PhaseHandle,
    /// Taint Map RPC round-trips.
    pub map_rpc: PhaseHandle,
}

impl PhaseSet {
    /// A set of disabled handles.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Handles writing `dista_phase_ns` / `dista_phase_ops` members
    /// labeled `{node=<node>, phase=<phase>}` into `registry`.
    pub fn for_node(registry: &MetricsRegistry, node: &str) -> Self {
        let handle = |phase: &str| PhaseHandle {
            enabled: true,
            ns: registry.counter_with("dista_phase_ns", &[("node", node), ("phase", phase)]),
            ops: registry.counter_with("dista_phase_ops", &[("node", node), ("phase", phase)]),
        };
        PhaseSet {
            codec_encode: handle(PHASE_CODEC_ENCODE),
            codec_decode: handle(PHASE_CODEC_DECODE),
            taint_tree: handle(PHASE_TAINT_TREE),
            map_rpc: handle(PHASE_MAP_RPC),
        }
    }

    /// Whether the handles record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.codec_encode.is_enabled()
    }
}

/// One phase's aggregated cost in an [`ObsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCost {
    /// Phase label (one of [`PHASES`]).
    pub phase: String,
    /// Total attributed nanoseconds across all nodes.
    pub ns: u64,
    /// Total attributed operations across all nodes.
    pub ops: u64,
}

impl PhaseCost {
    /// Mean nanoseconds per operation (0 when no ops).
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.ns as f64 / self.ops as f64
        }
    }
}

/// Per-run cost-attribution rollup: where tracking time went, plus the
/// observability health counters a run report should never omit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Cluster-total cost per phase, in [`PHASES`] order (phases with
    /// zero ops are included so field sets stay stable).
    pub phases: Vec<PhaseCost>,
    /// Flight-recorder events lost to ring wrap-around, cluster-total.
    pub flight_dropped_events: u64,
}

impl ObsReport {
    /// Folds a metrics dump into the report: `dista_phase_ns`/`_ops`
    /// members are summed per phase label across nodes.
    pub fn from_dump(dump: &MetricsDump) -> Self {
        let phase_total = |family: &str, phase: &str| -> u64 {
            dump.samples
                .iter()
                .filter(|s| {
                    s.name == family && s.labels.iter().any(|(k, v)| k == "phase" && v == phase)
                })
                .filter_map(|s| match s.value {
                    SampleValue::Counter(v) => Some(v),
                    _ => None,
                })
                .sum()
        };
        ObsReport {
            phases: PHASES
                .iter()
                .map(|phase| PhaseCost {
                    phase: (*phase).to_string(),
                    ns: phase_total("dista_phase_ns", phase),
                    ops: phase_total("dista_phase_ops", phase),
                })
                .collect(),
            flight_dropped_events: dump.counter_total("flight_dropped_events"),
        }
    }

    /// Total attributed nanoseconds across every phase.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.ns).sum()
    }

    /// Human-readable cost table.
    pub fn render(&self) -> String {
        let total = self.total_ns().max(1);
        let mut out = String::from("== cost attribution ==\n");
        for p in &self.phases {
            out.push_str(&format!(
                "{:<14} {:>12} ns  {:>10} ops  {:>10.1} ns/op  {:>5.1}%\n",
                p.phase,
                p.ns,
                p.ops,
                p.ns_per_op(),
                100.0 * p.ns as f64 / total as f64,
            ));
        }
        out.push_str(&format!(
            "flight_dropped_events {}\n",
            self.flight_dropped_events
        ));
        out
    }

    /// Hand-rolled JSON object (the vendored serde has no serde_json):
    /// `{"phases":[{"phase":…,"ns":…,"ops":…},…],"flight_dropped_events":…}`.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"ns\":{},\"ops\":{}}}",
                    p.phase, p.ns, p.ops
                )
            })
            .collect();
        format!(
            "{{\"phases\":[{}],\"flight_dropped_events\":{}}}",
            phases.join(","),
            self.flight_dropped_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_record_nothing() {
        let set = PhaseSet::disabled();
        assert!(!set.is_enabled());
        set.codec_encode.record_ns(100);
        assert_eq!(set.codec_encode.total_ns(), 0);
        assert_eq!(set.codec_encode.total_ops(), 0);
    }

    #[test]
    fn report_sums_phases_across_nodes() {
        let reg = MetricsRegistry::new();
        let a = PhaseSet::for_node(&reg, "n1");
        let b = PhaseSet::for_node(&reg, "n2");
        assert!(a.is_enabled());
        a.codec_encode.record_ns(100);
        a.codec_encode.record_ns(50);
        b.codec_encode.record_ns(25);
        b.map_rpc.record_ns(1000);
        reg.counter_with("flight_dropped_events", &[("node", "n1")])
            .add(3);
        let report = ObsReport::from_dump(&reg.snapshot());
        assert_eq!(report.phases.len(), PHASES.len());
        let enc = &report.phases[0];
        assert_eq!(enc.phase, PHASE_CODEC_ENCODE);
        assert_eq!(enc.ns, 175);
        assert_eq!(enc.ops, 3);
        let rpc = report
            .phases
            .iter()
            .find(|p| p.phase == PHASE_MAP_RPC)
            .unwrap();
        assert_eq!(rpc.ns, 1000);
        assert_eq!(rpc.ops, 1);
        assert_eq!(report.flight_dropped_events, 3);
        assert_eq!(report.total_ns(), 1175);
        let text = report.render();
        assert!(text.contains("codec_encode"));
        assert!(text.contains("flight_dropped_events 3"));
        let json = report.to_json();
        assert!(json.contains("\"phase\":\"map_rpc\",\"ns\":1000,\"ops\":1"));
        assert!(json.contains("\"flight_dropped_events\":3"));
    }

    #[test]
    fn ns_per_op_handles_zero_ops() {
        let p = PhaseCost {
            phase: "x".into(),
            ns: 0,
            ops: 0,
        };
        assert_eq!(p.ns_per_op(), 0.0);
    }
}

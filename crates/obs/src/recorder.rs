//! Per-VM flight recorder: a bounded ring buffer of [`ObsEvent`]s.
//!
//! The recorder has two states baked into its representation:
//!
//! * **Disabled** (`inner: None`) — every call is a no-op. The
//!   [`FlightRecorder::record_with`] API takes a *closure* producing the
//!   event kind, so a disabled recorder never evaluates it: no `String`
//!   or `Vec` for the event is ever built. This is the "plain mode pays
//!   nothing" invariant guarded by `tests/mode_matrix.rs`.
//! * **Enabled** — events go into a fixed-capacity ring. The write
//!   cursor is a single atomic `fetch_add`; each slot has its own tiny
//!   mutex, so concurrent writers only contend when they land on the
//!   same slot (i.e. the ring has wrapped a full lap during one write —
//!   effectively never). Old events are overwritten once the ring is
//!   full; provenance wants the *recent* history.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{ObsEvent, ObsEventKind};
use crate::registry::Counter;

/// Cluster-shared logical clock.
///
/// Every VM's recorder draws sequence numbers from the same clock so
/// that events from different VMs interleave in a single total order —
/// the property the provenance reconstruction sorts by. In the simulated
/// cluster all VMs live in one process, so an `Arc<AtomicU64>` is an
/// exact Lamport clock, not an approximation.
#[derive(Debug, Clone, Default)]
pub struct ObsClock {
    next: Arc<AtomicU64>,
}

impl ObsClock {
    /// Creates a clock starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws the next sequence number.
    pub fn tick(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// The number of ticks drawn so far.
    pub fn now(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct RecorderInner {
    node: String,
    clock: ObsClock,
    head: AtomicUsize,
    slots: Box<[Mutex<Option<ObsEvent>>]>,
    dropped: AtomicU64,
    /// Mirrors `dropped` into the metrics registry
    /// (`flight_dropped_events{node=…}`) so ring overflow is visible in
    /// every exporter instead of silently discarding history.
    dropped_counter: Counter,
}

/// A per-VM event ring. Cheap to clone; clones share the ring.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl FlightRecorder {
    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled recorder for VM `node`, holding up to `capacity`
    /// events and stamping them from `clock`. Overflow drops are counted
    /// internally only; use [`FlightRecorder::with_drop_counter`] to
    /// surface them as a registry metric.
    pub fn new(node: &str, capacity: usize, clock: ObsClock) -> Self {
        Self::with_drop_counter(node, capacity, clock, Counter::detached())
    }

    /// Like [`FlightRecorder::new`], additionally bumping `dropped` once
    /// per event lost to ring wrap-around — the cluster wires the
    /// `flight_dropped_events{node=…}` counter here so overflow shows up
    /// in metric dumps, scrapes and the text report.
    pub fn with_drop_counter(
        node: &str,
        capacity: usize,
        clock: ObsClock,
        dropped: Counter,
    ) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Some(Arc::new(RecorderInner {
                node: node.to_string(),
                clock,
                head: AtomicUsize::new(0),
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                dropped: AtomicU64::new(0),
                dropped_counter: dropped,
            })),
        }
    }

    /// Whether events are actually being retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event produced by `make`, if enabled.
    ///
    /// When the recorder is disabled `make` is **not called** — the
    /// closure's allocations (tag strings, span vectors) are never
    /// performed. Hot paths should do all event-only work inside the
    /// closure.
    pub fn record_with(&self, make: impl FnOnce() -> ObsEventKind) {
        let Some(inner) = &self.inner else { return };
        let kind = make();
        let seq = inner.clock.tick();
        let idx = inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = &inner.slots[idx % inner.slots.len()];
        let mut guard = slot.lock();
        if guard.is_some() {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            inner.dropped_counter.inc();
        }
        *guard = Some(ObsEvent {
            seq,
            node: inner.node.clone(),
            kind,
        });
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<ObsEvent> = inner
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Number of events recorded since creation (including overwritten
    /// ones).
    pub fn recorded(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.head.load(Ordering::Relaxed) as u64,
            None => 0,
        }
    }

    /// Number of events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// The node name this recorder stamps, if enabled.
    pub fn node(&self) -> Option<&str> {
        self.inner.as_deref().map(|i| i.node.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mint(taint: u32) -> ObsEventKind {
        ObsEventKind::SourceMinted {
            taint,
            tag: format!("tag-{taint}"),
            span: 0,
        }
    }

    #[test]
    fn disabled_recorder_never_evaluates_closure() {
        let rec = FlightRecorder::disabled();
        let mut called = false;
        rec.record_with(|| {
            called = true;
            mint(0)
        });
        assert!(!called, "disabled recorder must not build the event");
        assert!(rec.events().is_empty());
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn events_come_back_in_order() {
        let rec = FlightRecorder::new("n1", 16, ObsClock::new());
        for i in 0..5 {
            rec.record_with(|| mint(i));
        }
        let events = rec.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.iter().all(|e| e.node == "n1"));
    }

    #[test]
    fn ring_keeps_most_recent_when_full() {
        let rec = FlightRecorder::new("n1", 4, ObsClock::new());
        for i in 0..10 {
            rec.record_with(|| mint(i));
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let taints: Vec<u32> = events
            .iter()
            .map(|e| match &e.kind {
                ObsEventKind::SourceMinted { taint, .. } => *taint,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(taints, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drop_counter_mirrors_ring_overwrites() {
        let c = Counter::detached();
        let rec = FlightRecorder::with_drop_counter("n1", 4, ObsClock::new(), c.clone());
        for i in 0..10 {
            rec.record_with(|| mint(i));
        }
        assert_eq!(rec.dropped(), 6);
        assert_eq!(c.get(), 6, "registry counter tracks every overwrite");
    }

    #[test]
    fn shared_clock_orders_across_recorders() {
        let clock = ObsClock::new();
        let a = FlightRecorder::new("a", 8, clock.clone());
        let b = FlightRecorder::new("b", 8, clock.clone());
        a.record_with(|| mint(1));
        b.record_with(|| mint(2));
        a.record_with(|| mint(3));
        let mut all = a.events();
        all.extend(b.events());
        all.sort_by_key(|e| e.seq);
        let nodes: Vec<&str> = all.iter().map(|e| e.node.as_str()).collect();
        assert_eq!(nodes, vec!["a", "b", "a"]);
        assert_eq!(clock.now(), 3);
    }

    #[test]
    fn concurrent_writers_keep_ring_consistent() {
        let rec = FlightRecorder::new("n1", 1024, ObsClock::new());
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..64 {
                        rec.record_with(|| mint(t * 1000 + i));
                    }
                });
            }
        });
        let events = rec.events();
        assert_eq!(events.len(), 512);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 512);
    }
}

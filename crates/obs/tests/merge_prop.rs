//! Property suite for [`Histogram::merge`] — the formal bound the
//! `registry` docs reference.
//!
//! The telemetry collector builds its cluster-wide distribution by
//! merging per-VM histograms, so merge must be *lossless at bucket
//! resolution*: a merged histogram is indistinguishable from a single
//! histogram that observed the concatenation of both value streams.
//! From that equivalence the quantile error bound follows — the
//! reported `quantile(q)` is exactly the upper bound of the bucket
//! containing the true rank-`ceil(q*n)` order statistic of the pooled
//! observations (i.e. the error is at most one bucket width, and never
//! undershoots the true value).

use dista_obs::Histogram;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const QS: &[f64] = &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];

/// Strictly ascending bucket bounds, 1–8 of them (sort + dedup keeps
/// the generated grid valid for `Histogram::detached`).
fn bounds_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..10_000, 1..=8).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// Observation stream: values straddle the bound range so every bucket
/// — including overflow — gets exercised.
fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..20_000, 0..120)
}

fn filled(bounds: &[u64], values: &[u64]) -> Histogram {
    let h = Histogram::detached(bounds);
    for &v in values {
        h.observe(v);
    }
    h
}

/// The bucket upper bound `value` falls in: first bound >= value, else
/// the `u64::MAX` overflow bucket. This is the resolution floor every
/// quantile answer is quantised to.
fn bucket_bound(bounds: &[u64], value: u64) -> u64 {
    bounds
        .iter()
        .copied()
        .find(|&b| value <= b)
        .unwrap_or(u64::MAX)
}

/// Asserts `merged` reports exactly what one histogram fed all of
/// `pooled` would — tallies, moments and every probed quantile.
fn assert_equals_pooled(
    merged: &Histogram,
    bounds: &[u64],
    pooled: &[u64],
) -> Result<(), TestCaseError> {
    let reference = filled(bounds, pooled);
    prop_assert_eq!(merged.count(), reference.count(), "count exact");
    prop_assert_eq!(merged.sum(), reference.sum(), "sum exact");
    prop_assert_eq!(merged.buckets(), reference.buckets(), "tallies exact");
    prop_assert!(
        (merged.mean() - reference.mean()).abs() < 1e-9,
        "mean exact"
    );
    for &q in QS {
        prop_assert_eq!(merged.quantile(q), reference.quantile(q), "q={}", q);
    }
    Ok(())
}

proptest! {
    /// Merging two histograms is observationally equivalent to one
    /// histogram that saw both value streams.
    #[test]
    fn merge_equals_pooled_observation(
        bounds in bounds_strategy(),
        a in values_strategy(),
        b in values_strategy(),
    ) {
        let merged = filled(&bounds, &a);
        merged.merge(&filled(&bounds, &b));
        let pooled: Vec<u64> = a.iter().chain(&b).copied().collect();
        assert_equals_pooled(&merged, &bounds, &pooled)?;
    }

    /// The formal quantile bound: after a merge, `quantile(q)` is the
    /// upper bound of the bucket holding the true pooled order
    /// statistic — never below the true value, and at most one bucket
    /// width above it.
    #[test]
    fn merged_quantile_brackets_true_order_statistic(
        bounds in bounds_strategy(),
        a in values_strategy(),
        b in values_strategy(),
    ) {
        let merged = filled(&bounds, &a);
        merged.merge(&filled(&bounds, &b));
        let mut pooled: Vec<u64> = a.iter().chain(&b).copied().collect();
        pooled.sort_unstable();
        if pooled.is_empty() {
            prop_assert_eq!(merged.quantile(0.99), 0, "empty histogram reports 0");
            return Ok(());
        }

        for &q in QS {
            let rank = ((q * pooled.len() as f64).ceil() as usize).max(1);
            let truth = pooled[rank - 1];
            let reported = merged.quantile(q);
            prop_assert_eq!(
                reported,
                bucket_bound(&bounds, truth),
                "q={} true={}",
                q,
                truth
            );
            prop_assert!(reported >= truth, "quantile never undershoots");
            // Error is bounded by one bucket: no lower bound lies
            // strictly between the true value and the reported bound.
            prop_assert!(
                !bounds.iter().any(|&bd| truth <= bd && bd < reported),
                "q={}: {} skipped past bucket bound", q, reported
            );
        }
    }

    /// Merging an empty histogram is the identity, in either direction.
    #[test]
    fn merge_with_empty_is_identity(
        bounds in bounds_strategy(),
        a in values_strategy(),
    ) {
        let lhs = filled(&bounds, &a);
        lhs.merge(&Histogram::detached(&bounds));
        assert_equals_pooled(&lhs, &bounds, &a)?;

        let rhs = Histogram::detached(&bounds);
        rhs.merge(&filled(&bounds, &a));
        assert_equals_pooled(&rhs, &bounds, &a)?;
    }

    /// Merge is order-insensitive: (a ∪ b) and (b ∪ a) agree, and a
    /// three-way merge agrees regardless of association.
    #[test]
    fn merge_commutes_and_associates(
        bounds in bounds_strategy(),
        a in values_strategy(),
        b in values_strategy(),
        c in values_strategy(),
    ) {
        let ab = filled(&bounds, &a);
        ab.merge(&filled(&bounds, &b));
        let ba = filled(&bounds, &b);
        ba.merge(&filled(&bounds, &a));
        prop_assert_eq!(ab.buckets(), ba.buckets());
        prop_assert_eq!(ab.sum(), ba.sum());

        ab.merge(&filled(&bounds, &c));
        let bc = filled(&bounds, &b);
        bc.merge(&filled(&bounds, &c));
        let a_bc = filled(&bounds, &a);
        a_bc.merge(&bc);
        let pooled: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        assert_equals_pooled(&ab, &bounds, &pooled)?;
        assert_equals_pooled(&a_bc, &bounds, &pooled)?;
    }

    /// Quantiles are monotone in `q` after a merge — the SLO-gate
    /// invariant the collector's p50/p99/p999 lines rely on.
    #[test]
    fn merged_quantiles_are_monotone(
        bounds in bounds_strategy(),
        a in values_strategy(),
        b in values_strategy(),
    ) {
        let merged = filled(&bounds, &a);
        merged.merge(&filled(&bounds, &b));
        let probed: Vec<u64> = QS.iter().map(|&q| merged.quantile(q)).collect();
        prop_assert!(probed.windows(2).all(|w| w[0] <= w[1]), "{:?}", probed);
    }
}

#[test]
#[should_panic(expected = "bounds")]
fn merge_rejects_mismatched_bounds() {
    let a = Histogram::detached(&[10, 100]);
    let b = Histogram::detached(&[10, 200]);
    a.merge(&b);
}

//! Exporter contract tests: the JSONL and Chrome-trace outputs must
//! (1) be real JSON — every line / the whole array parses with a
//! strict parser — and (2) keep their field names and key order pinned
//! by golden files, because downstream tooling (Perfetto, jq one-liners
//! in ops runbooks) greps those names verbatim.
//!
//! Regenerate the goldens after an *intentional* schema change with:
//! `UPDATE_GOLDEN=1 cargo test -p dista-obs --test exporters`.

use dista_obs::{to_chrome_trace, to_jsonl, GidSpan, ObsEvent, ObsEventKind, Transport};

// ---------------------------------------------------------------------------
// A strict minimal JSON parser — the vendored serde has no serde_json,
// and the whole point is to check the hand-rolled emitter against an
// independent reader. Objects keep key order so tests can pin it.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!("expected '{}' at byte {}", b as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).ok_or("bad codepoint")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                ctrl if ctrl < 0x20 => return Err("raw control byte in string".into()),
                _ => {
                    // Re-attach multi-byte UTF-8 sequences whole.
                    let char_start = self.pos - 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[char_start..self.pos])
                            .map_err(|_| "invalid utf-8")?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fixture: one event of every kind, across two nodes, with seq numbers
// deliberately out of order so the exporters' sort is exercised.
// ---------------------------------------------------------------------------

fn fixture_events() -> Vec<ObsEvent> {
    let e = |seq: u64, node: &str, kind: ObsEventKind| ObsEvent {
        seq,
        node: node.into(),
        kind,
    };
    vec![
        e(
            3,
            "beta",
            ObsEventKind::TaintMapLookup {
                gid: 42,
                taint: 9,
                span: 7,
            },
        ),
        e(
            0,
            "alpha",
            ObsEventKind::SourceMinted {
                taint: 1,
                tag: "zk.zxid".into(),
                span: 5,
            },
        ),
        e(
            1,
            "alpha",
            ObsEventKind::TaintMapRegister {
                taint: 1,
                gid: 42,
                span: 5,
            },
        ),
        e(
            2,
            "alpha",
            ObsEventKind::BoundaryEncode {
                transport: Transport::Tcp,
                from: "10.0.0.1:9000".into(),
                to: "10.0.0.2:9000".into(),
                data_bytes: 8,
                wire_bytes: 28,
                spans: vec![GidSpan {
                    gid: 42,
                    start: 0,
                    end: 8,
                }],
                span: 7,
                parent: 5,
            },
        ),
        e(
            4,
            "beta",
            ObsEventKind::BoundaryDecode {
                transport: Transport::Udp,
                from: "10.0.0.1:9000".into(),
                to: "10.0.0.2:9000".into(),
                data_bytes: 8,
                wire_bytes: 28,
                spans: vec![GidSpan {
                    gid: 42,
                    start: 0,
                    end: 8,
                }],
                span: 7,
            },
        ),
        e(
            5,
            "beta",
            ObsEventKind::SinkHit {
                sink: "LOG.info".into(),
                tags: vec!["zk.zxid".into(), "user \"quoted\"".into()],
                gids: vec![42, 7],
            },
        ),
        e(6, "beta", ObsEventKind::TaintMapFailover { shard: 2 }),
        e(
            7,
            "beta",
            ObsEventKind::DegradedLookup { gid: 42, shard: 2 },
        ),
        e(
            8,
            "beta",
            ObsEventKind::PendingResolved { gid: 42, taint: 9 },
        ),
        e(
            9,
            "alpha",
            ObsEventKind::FaultInjected {
                fault: "partition alpha | beta\nhealed".into(),
            },
        ),
        e(10, "alpha", ObsEventKind::ShardCrashed { shard: 0 }),
        e(
            11,
            "alpha",
            ObsEventKind::ShardRestarted {
                shard: 0,
                replayed: 17,
            },
        ),
        e(
            12,
            "alpha",
            ObsEventKind::ShardSplit {
                class: 0,
                target: 2,
                lo_gid: 9,
                epoch: 1,
            },
        ),
        e(13, "alpha", ObsEventKind::SplitHealed { class: 0 }),
        e(
            14,
            "alpha",
            ObsEventKind::WalCompacted {
                shard: 2,
                records: 17,
            },
        ),
    ]
}

/// Per-kind payload field names, in emission order — the schema
/// contract downstream tools rely on.
fn expected_fields(event: &str) -> &'static [&'static str] {
    match event {
        "source_minted" => &["taint", "tag", "span"],
        "taintmap_register" => &["taint", "gid", "span"],
        "taintmap_lookup" => &["gid", "taint", "span"],
        "taintmap_failover" => &["shard"],
        "boundary_encode" => &[
            "transport",
            "from",
            "to",
            "data_bytes",
            "wire_bytes",
            "spans",
            "span",
            "parent",
        ],
        "boundary_decode" => &[
            "transport",
            "from",
            "to",
            "data_bytes",
            "wire_bytes",
            "spans",
            "span",
        ],
        "sink_hit" => &["sink", "tags", "gids"],
        "degraded_lookup" => &["gid", "shard"],
        "pending_resolved" => &["gid", "taint"],
        "fault_injected" => &["fault"],
        "shard_crashed" => &["shard"],
        "shard_restarted" => &["shard", "replayed"],
        "shard_split" => &["class", "target", "lo_gid", "epoch"],
        "split_healed" => &["class"],
        "wal_compacted" => &["shard", "records"],
        other => panic!("unknown event kind {other}"),
    }
}

fn check_golden(name: &str, rendered: &str, golden: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    assert_eq!(
        rendered, golden,
        "exporter output drifted from tests/golden/{name}; if the schema \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

#[test]
fn jsonl_round_trips_and_pins_field_names() {
    let out = to_jsonl(&fixture_events());
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 15, "one line per event");

    let mut seen_kinds = Vec::new();
    let mut prev_seq = -1.0f64;
    for line in &lines {
        let obj = Parser::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e}"));
        let event = obj.get("event").expect("event key").as_str().to_string();

        // Envelope first, then the kind payload, in pinned order.
        let mut expected = vec!["seq", "node", "event"];
        expected.extend_from_slice(expected_fields(&event));
        assert_eq!(obj.keys(), expected, "key order for {event}");

        let seq = obj.get("seq").unwrap().as_num();
        assert!(seq > prev_seq, "lines sorted by seq");
        prev_seq = seq;
        seen_kinds.push(event);
    }
    // Every kind appears exactly once in the fixture.
    let mut sorted = seen_kinds.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), 15, "fixture covers all event kinds");
}

#[test]
fn jsonl_field_values_survive_the_round_trip() {
    let out = to_jsonl(&fixture_events());
    let encode = out.lines().find(|l| l.contains("boundary_encode")).unwrap();
    let obj = Parser::parse(encode).unwrap();
    assert_eq!(obj.get("node").unwrap().as_str(), "alpha");
    assert_eq!(obj.get("transport").unwrap().as_str(), "tcp");
    assert_eq!(obj.get("wire_bytes").unwrap().as_num(), 28.0);
    assert_eq!(obj.get("parent").unwrap().as_num(), 5.0);
    let spans = obj.get("spans").unwrap().as_arr();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].keys(), vec!["gid", "start", "end"]);
    assert_eq!(spans[0].get("gid").unwrap().as_num(), 42.0);

    // Escaped strings decode back to the original text.
    let sink = out.lines().find(|l| l.contains("sink_hit")).unwrap();
    let obj = Parser::parse(sink).unwrap();
    let tags: Vec<&str> = obj
        .get("tags")
        .unwrap()
        .as_arr()
        .iter()
        .map(|t| t.as_str())
        .collect();
    assert_eq!(tags, vec!["zk.zxid", "user \"quoted\""]);

    let fault = out.lines().find(|l| l.contains("fault_injected")).unwrap();
    let obj = Parser::parse(fault).unwrap();
    assert_eq!(
        obj.get("fault").unwrap().as_str(),
        "partition alpha | beta\nhealed"
    );
}

#[test]
fn jsonl_matches_golden() {
    check_golden(
        "events.jsonl",
        &to_jsonl(&fixture_events()),
        include_str!("golden/events.jsonl"),
    );
}

// ---------------------------------------------------------------------------
// Chrome trace
// ---------------------------------------------------------------------------

#[test]
fn chrome_trace_round_trips_and_pins_structure() {
    let out = to_chrome_trace(&fixture_events());
    let root = Parser::parse(&out).expect("chrome trace parses as one JSON array");
    let entries = root.as_arr();

    // Two process_name metadata rows (one per node, first-seen order:
    // the lowest-seq event is on alpha), then one instant per event.
    assert_eq!(entries.len(), 2 + 15);
    for meta in &entries[..2] {
        assert_eq!(meta.get("name").unwrap().as_str(), "process_name");
        assert_eq!(meta.get("ph").unwrap().as_str(), "M");
        assert_eq!(meta.keys(), vec!["name", "ph", "pid", "tid", "args"]);
        assert_eq!(meta.get("args").unwrap().keys(), vec!["name"]);
    }
    assert_eq!(
        entries[0]
            .get("args")
            .unwrap()
            .get("name")
            .unwrap()
            .as_str(),
        "alpha"
    );
    assert_eq!(
        entries[1]
            .get("args")
            .unwrap()
            .get("name")
            .unwrap()
            .as_str(),
        "beta"
    );

    let mut prev_ts = -1.0f64;
    for inst in &entries[2..] {
        assert_eq!(
            inst.keys(),
            vec!["name", "ph", "s", "ts", "pid", "tid", "args"],
            "instant-event envelope"
        );
        assert_eq!(inst.get("ph").unwrap().as_str(), "i");
        assert_eq!(inst.get("s").unwrap().as_str(), "p");
        let ts = inst.get("ts").unwrap().as_num();
        assert!(ts > prev_ts, "instants sorted by ts");
        prev_ts = ts;
        let event = inst.get("name").unwrap().as_str().to_string();
        assert_eq!(
            inst.get("args").unwrap().keys(),
            expected_fields(&event),
            "args field names for {event}"
        );
        let pid = inst.get("pid").unwrap().as_num();
        assert!(pid == 0.0 || pid == 1.0, "pid maps to a declared process");
    }
}

#[test]
fn chrome_trace_matches_golden() {
    check_golden(
        "chrome_trace.json",
        &to_chrome_trace(&fixture_events()),
        include_str!("golden/chrome_trace.json"),
    );
}

//! Fast leader election over instrumented TCP object streams.
//!
//! Thread structure mirrors the paper's Fig. 1: each connection pair gets
//! a `SendWorker` (drains an outgoing vote queue into the socket output
//! stream) and a `RecvWorker` (reads `Notification`s off the input stream
//! into the election loop's queue). The election rule is ZooKeeper's:
//! adopt any vote that beats yours by `(epoch, zxid, leader id)`,
//! rebroadcast on change, and decide once every peer agrees.

use std::collections::HashMap;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use dista_jre::{
    FileInputStream, JreError, Logger, ObjectInputStream, ObjectOutputStream, ServerSocket, Socket,
    Vm,
};
use dista_simnet::NodeAddr;
use dista_taint::{TagValue, Tainted};

use crate::vote::{ServerState, Vote};
use crate::FLE_CLASS;

/// One peer's identity and runtime.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Server id (`myid`), unique and positive.
    pub myid: i64,
    /// The peer's simulated JVM.
    pub vm: Vm,
}

/// The result of a completed election.
#[derive(Debug, Clone)]
pub struct ElectionOutcome {
    /// Elected leader id.
    pub leader: i64,
    /// Per-peer final states, keyed by `myid`.
    pub states: HashMap<i64, ServerState>,
    /// Per-peer final votes, keyed by `myid`.
    pub final_votes: HashMap<i64, Vote>,
}

/// Reads the node's transaction logs to recover its last zxid — the
/// Fig.-11 boot sequence. Files live under `version-2/` and contain the
/// zxid as ASCII digits; the *last* file's value wins, so only its taint
/// propagates (the others are minted and dropped).
fn boot_zxid(vm: &Vm) -> Result<Tainted<i64>, JreError> {
    let mut zxid = Tainted::untainted(0);
    for path in vm.fs().list("version-2/") {
        let file = FileInputStream::open(vm, &path)?;
        let contents = file.read_to_string()?;
        let parsed: i64 = contents
            .value()
            .trim()
            .parse()
            .map_err(|_| JreError::Protocol("malformed txn log"))?;
        zxid = Tainted::new(parsed, contents.taint());
    }
    Ok(zxid)
}

struct PeerLink {
    outgoing: Sender<Vote>,
}

fn spawn_workers(socket: Socket, notifications: Sender<Vote>) -> PeerLink {
    let (out_tx, out_rx): (Sender<Vote>, Receiver<Vote>) = unbounded();
    let writer = socket.clone();
    // SendWorker (Fig. 1 lines 2-6): serializes queued votes.
    std::thread::spawn(move || {
        let out = ObjectOutputStream::new(writer.output_stream());
        while let Ok(vote) = out_rx.recv() {
            if out.write_object(&vote.to_obj()).is_err() {
                return;
            }
        }
    });
    // RecvWorker (Fig. 1 lines 16-21): deserializes notifications.
    std::thread::spawn(move || {
        let input = ObjectInputStream::new(socket.input_stream());
        loop {
            match input.read_object() {
                Ok(obj) => {
                    let Ok(vote) = Vote::from_obj(&obj) else {
                        return;
                    };
                    if notifications.send(vote).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    });
    PeerLink { outgoing: out_tx }
}

fn connect_mesh(
    cfg: &PeerConfig,
    peers: &[(i64, [u8; 4])],
    port: u16,
    notifications: Sender<Vote>,
) -> Result<HashMap<i64, PeerLink>, JreError> {
    let listener = ServerSocket::bind(&cfg.vm, NodeAddr::new(cfg.vm.ip(), port))?;
    let mut links = HashMap::new();
    // Deterministic mesh: lower id dials higher id.
    let higher: Vec<_> = peers.iter().filter(|(id, _)| *id > cfg.myid).collect();
    let lower_count = peers.iter().filter(|(id, _)| *id < cfg.myid).count();
    for (id, ip) in higher {
        // The peer's listener may not be up yet; retry briefly.
        let addr = NodeAddr::new(*ip, port);
        let socket = loop {
            match Socket::connect(&cfg.vm, addr) {
                Ok(s) => break s,
                Err(JreError::Net(dista_simnet::NetError::ConnectionRefused(_))) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        };
        // Identify ourselves so the acceptor can map the connection.
        ObjectOutputStream::new(socket.output_stream())
            .write_object(&dista_jre::ObjValue::int_plain(cfg.myid))?;
        links.insert(*id, spawn_workers(socket, notifications.clone()));
    }
    for _ in 0..lower_count {
        let socket = listener.accept()?;
        let hello = ObjectInputStream::new(socket.input_stream()).read_object()?;
        let peer_id = hello
            .as_int()
            .ok_or(JreError::Protocol("bad election handshake"))?;
        links.insert(peer_id, spawn_workers(socket, notifications.clone()));
    }
    listener.close();
    Ok(links)
}

fn broadcast(links: &HashMap<i64, PeerLink>, vote: &Vote) {
    for link in links.values() {
        let _ = link.outgoing.send(vote.clone());
    }
}

/// Runs one peer's election to completion.
fn run_peer(
    cfg: PeerConfig,
    peers: Vec<(i64, [u8; 4])>,
    port: u16,
) -> Result<(i64, ServerState, Vote), JreError> {
    let vm = cfg.vm.clone();
    let log = Logger::new(&vm);
    let zxid = boot_zxid(&vm)?;

    // The SDT source point: the Vote variable first transferred into the
    // network (Table IV). One per node — three tainted votes in a
    // three-node ensemble, matching "we only select 3 variables".
    let vote_taint = vm.source_point(
        FLE_CLASS,
        "getVote",
        TagValue::str(format!("vote{}", cfg.myid)),
    );
    let mut current = Vote {
        leader: Tainted::new(cfg.myid, vote_taint),
        zxid,
        epoch: 1,
        from: cfg.myid,
        state: ServerState::Looking,
    };

    let (notif_tx, notif_rx) = unbounded();
    let links = connect_mesh(&cfg, &peers, port, notif_tx)?;
    let quorum_size = peers.len() + 1; // full agreement (3/3), simple + sound

    let mut ballots: HashMap<i64, (i64, i64, i64)> = HashMap::new();
    let key = |v: &Vote| (v.epoch, *v.zxid.value(), *v.leader.value());
    ballots.insert(cfg.myid, key(&current));
    broadcast(&links, &current);

    loop {
        // Decided once everyone we know about voted for the same triple.
        let agree = ballots.values().filter(|k| **k == key(&current)).count();
        if agree >= quorum_size {
            break;
        }
        let notification = notif_rx
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| JreError::Protocol("election stalled"))?;
        if notification.beats(&current) {
            // Adopt: the received vote's taints ride along (this is the
            // inter-node flow the SDT scenario checks).
            current = Vote {
                leader: notification.leader,
                zxid: notification.zxid,
                epoch: notification.epoch,
                from: cfg.myid,
                state: ServerState::Looking,
            };
            ballots.insert(cfg.myid, key(&current));
            broadcast(&links, &current);
        }
        ballots.insert(notification.from, key(&notification));
    }

    let leader = *current.leader.value();
    let state = if leader == cfg.myid {
        ServerState::Leading
    } else {
        ServerState::Following
    };
    current.state = state;

    if state == ServerState::Following {
        // The SDT sink: checkLeader "is invoked on a follower when the
        // leader is selected".
        vm.sink_point(FLE_CLASS, "checkLeader", current.taint(&vm));
        // The SIM flow of Fig. 11: the follower logs the epoch derived
        // from the leader's zxid; if that zxid was file-tainted on the
        // leader, LOG.info sees a cross-node taint here.
        log.info_value("FOLLOWING leader, accepted zxid =", &current.zxid);
    } else {
        log.info_value("LEADING, zxid =", &current.zxid);
    }
    Ok((cfg.myid, state, current))
}

/// Runs a full election across `peers`, using `port` for the election
/// listeners (one per node IP). Blocks until every peer decides.
///
/// # Errors
///
/// Any peer's transport, Taint Map or protocol error.
///
/// # Panics
///
/// Panics if a peer thread panics.
pub fn run_election(peers: Vec<PeerConfig>, port: u16) -> Result<ElectionOutcome, JreError> {
    let roster: Vec<(i64, [u8; 4])> = peers.iter().map(|p| (p.myid, p.vm.ip())).collect();
    let mut handles = Vec::new();
    for cfg in peers {
        let others: Vec<(i64, [u8; 4])> = roster
            .iter()
            .filter(|(id, _)| *id != cfg.myid)
            .copied()
            .collect();
        handles.push(std::thread::spawn(move || run_peer(cfg, others, port)));
    }
    let mut states = HashMap::new();
    let mut final_votes = HashMap::new();
    let mut leader = None;
    for handle in handles {
        let (myid, state, vote) = handle.join().expect("election peer panicked")?;
        if state == ServerState::Leading {
            leader = Some(myid);
        }
        states.insert(myid, state);
        final_votes.insert(myid, vote);
    }
    Ok(ElectionOutcome {
        leader: leader.ok_or(JreError::Protocol("no leader elected"))?,
        states,
        final_votes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_core::{Cluster, Mode};
    use dista_taint::{MethodDesc, SourceSinkSpec};

    fn sdt_spec() -> SourceSinkSpec {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(FLE_CLASS, "getVote"))
            .add_sink(MethodDesc::new(FLE_CLASS, "checkLeader"));
        spec
    }

    fn peers(cluster: &Cluster) -> Vec<PeerConfig> {
        cluster
            .vms()
            .iter()
            .enumerate()
            .map(|(i, vm)| PeerConfig {
                myid: (i + 1) as i64,
                vm: vm.clone(),
            })
            .collect()
    }

    #[test]
    fn three_nodes_elect_highest_id() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .spec(sdt_spec())
            .build()
            .unwrap();
        let outcome = run_election(peers(&cluster), 3888).unwrap();
        assert_eq!(outcome.leader, 3, "equal zxids: highest id wins");
        assert_eq!(outcome.states[&3], ServerState::Leading);
        assert_eq!(outcome.states[&1], ServerState::Following);
        assert_eq!(outcome.states[&2], ServerState::Following);
        cluster.shutdown();
    }

    #[test]
    fn higher_zxid_wins_over_higher_id() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .spec(sdt_spec())
            .build()
            .unwrap();
        // Node 1 has the freshest log.
        cluster.vm(0).fs().write("version-2/log.1", b"500".to_vec());
        let outcome = run_election(peers(&cluster), 3888).unwrap();
        assert_eq!(outcome.leader, 1);
        cluster.shutdown();
    }

    #[test]
    fn sdt_taint_reaches_check_leader_on_followers() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .spec(sdt_spec())
            .build()
            .unwrap();
        let outcome = run_election(peers(&cluster), 3888).unwrap();
        assert_eq!(outcome.leader, 3);
        // Both followers must see exactly the winner's vote tag — the
        // leader's own "vote3" tag, minted on node 3, crossed two hops.
        for follower in [0usize, 1] {
            let report = cluster.vm(follower).sink_report();
            let events = report.at("FastLeaderElection.checkLeader");
            assert_eq!(events.len(), 1, "one checkLeader per follower");
            assert_eq!(
                events[0].tags,
                vec!["vote3".to_string()],
                "sound (vote3 present) and precise (nothing else)"
            );
        }
        // The leader's own sink is not invoked.
        assert!(cluster.vm(2).sink_report().events.is_empty());
        cluster.shutdown();
    }

    #[test]
    fn phosphor_loses_the_vote_taint() {
        let cluster = Cluster::builder(Mode::Phosphor)
            .nodes("zk", 3)
            .spec(sdt_spec())
            .build()
            .unwrap();
        let outcome = run_election(peers(&cluster), 3888).unwrap();
        assert_eq!(outcome.leader, 3, "election itself still works");
        for follower in [0usize, 1] {
            let report = cluster.vm(follower).sink_report();
            let events = report.at("FastLeaderElection.checkLeader");
            assert_eq!(events.len(), 1);
            assert!(
                events[0].tags.is_empty(),
                "intra-node-only tracking drops the cross-node vote taint"
            );
        }
        cluster.shutdown();
    }
}

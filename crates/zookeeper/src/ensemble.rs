//! Ensemble orchestration: boot files, election, then the replicated
//! client service (leader + commit channels to followers).

use std::collections::HashMap;

use dista_jre::{JreError, ObjValue, ObjectInputStream, ObjectOutputStream, Socket, Vm};
use dista_simnet::NodeAddr;
use parking_lot::Mutex;

use crate::election::{run_election, ElectionOutcome, PeerConfig};
use crate::server::{Role, ServerCore, ZkClient, ZkServerHandle};

/// Ensemble configuration.
#[derive(Debug, Clone)]
pub struct ZkEnsembleConfig {
    /// Election listener port (same on every node IP).
    pub election_port: u16,
    /// Client service port (same on every node IP).
    pub client_port: u16,
    /// Transaction-log zxids written to each node's disk before boot,
    /// in node order. Each inner vector becomes `version-2/log.K` files.
    pub txn_logs: Vec<Vec<i64>>,
}

impl Default for ZkEnsembleConfig {
    fn default() -> Self {
        ZkEnsembleConfig {
            election_port: 3888,
            client_port: 2181,
            txn_logs: Vec::new(),
        }
    }
}

/// A running mini-ZooKeeper ensemble.
#[derive(Debug)]
pub struct ZkEnsemble {
    outcome: ElectionOutcome,
    servers: Vec<ZkServerHandle>,
    client_addrs: HashMap<i64, NodeAddr>,
}

impl ZkEnsemble {
    /// Boots the ensemble on `vms`: writes txn logs, runs the election,
    /// starts the leader's service, then attaches every follower (write
    /// forwarding + commit channel).
    ///
    /// # Errors
    ///
    /// Election or bind failures.
    pub fn start(vms: &[Vm], config: ZkEnsembleConfig) -> Result<ZkEnsemble, JreError> {
        // Seed each node's disk (the Fig.-11 boot files).
        for (i, vm) in vms.iter().enumerate() {
            if let Some(zxids) = config.txn_logs.get(i) {
                for (k, zxid) in zxids.iter().enumerate() {
                    vm.fs()
                        .write(format!("version-2/log.{k}"), zxid.to_string().into_bytes());
                }
            }
        }
        let peers: Vec<PeerConfig> = vms
            .iter()
            .enumerate()
            .map(|(i, vm)| PeerConfig {
                myid: (i + 1) as i64,
                vm: vm.clone(),
            })
            .collect();
        let outcome = run_election(peers, config.election_port)?;
        let leader_idx = (outcome.leader - 1) as usize;
        let leader_vm = &vms[leader_idx];
        let leader_addr = NodeAddr::new(leader_vm.ip(), config.client_port);

        // Leader first: followers need its client port up to attach.
        let leader_core = ServerCore::new(Role::Leader {
            followers: Mutex::new(Vec::new()),
        });
        let leader_handle = ZkServerHandle::start(leader_vm, leader_addr, leader_core)?;

        let mut servers = Vec::new();
        let mut client_addrs = HashMap::new();
        client_addrs.insert(outcome.leader, leader_addr);

        for (i, vm) in vms.iter().enumerate() {
            if i == leader_idx {
                continue;
            }
            // Write-forwarding session to the leader.
            let forward = ZkClient::connect(vm, leader_addr)
                .map_err(|_| JreError::Protocol("follower cannot reach leader"))?;
            let core = ServerCore::new(Role::Follower {
                leader: Mutex::new(forward),
            });
            let addr = NodeAddr::new(vm.ip(), config.client_port);
            let handle = ZkServerHandle::start(vm, addr, core)?;

            // Commit channel: announce ourselves on a fresh session; the
            // leader turns it into a broadcast sink, we apply commits.
            let attach = Socket::connect(vm, leader_addr)?;
            ObjectOutputStream::new(attach.output_stream())
                .write_object(&ObjValue::Record("FollowerAttach".into(), vec![]))?;
            handle.run_commit_loop(ObjectInputStream::new(attach.input_stream()));

            client_addrs.insert((i + 1) as i64, addr);
            servers.push(handle);
        }
        servers.push(leader_handle);
        Ok(ZkEnsemble {
            outcome,
            servers,
            client_addrs,
        })
    }

    /// The election result.
    pub fn outcome(&self) -> &ElectionOutcome {
        &self.outcome
    }

    /// The elected leader's id.
    pub fn leader(&self) -> i64 {
        self.outcome.leader
    }

    /// Client-port address of server `myid`.
    pub fn client_addr(&self, myid: i64) -> Option<NodeAddr> {
        self.client_addrs.get(&myid).copied()
    }

    /// Client-port address of any server (the first).
    pub fn any_client_addr(&self) -> NodeAddr {
        *self
            .client_addrs
            .values()
            .next()
            .expect("ensemble has servers")
    }

    /// Client-port address of the elected leader.
    pub fn leader_client_addr(&self) -> NodeAddr {
        self.client_addrs[&self.outcome.leader]
    }

    /// Per-member local tree sizes, keyed by `myid` (replication
    /// diagnostics).
    pub fn local_tree_sizes(&self) -> Vec<usize> {
        self.servers
            .iter()
            .map(ZkServerHandle::local_tree_len)
            .collect()
    }

    /// Stops all servers.
    pub fn shutdown(self) {
        for server in self.servers {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_core::{Cluster, Mode};
    use dista_jre::FILE_INPUT_STREAM_CLASS;
    use dista_taint::{MethodDesc, SourceSinkSpec, TagValue, TaintedBytes};

    fn sim_spec() -> SourceSinkSpec {
        let mut spec = SourceSinkSpec::new();
        spec.add_source(MethodDesc::new(FILE_INPUT_STREAM_CLASS, "read"))
            .add_sink(MethodDesc::new(dista_jre::LOGGER_CLASS, "info"));
        spec
    }

    #[test]
    fn full_ensemble_lifecycle() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(
            cluster.vms(),
            ZkEnsembleConfig {
                txn_logs: vec![vec![1, 2], vec![1, 2, 3], vec![1]],
                ..Default::default()
            },
        )
        .unwrap();
        // Node 2 has the freshest log (zxid 3) -> leads.
        assert_eq!(ensemble.leader(), 2);
        // Client service works against any member.
        let client = ZkClient::connect(cluster.vm(0), ensemble.any_client_addr()).unwrap();
        client
            .create("/x", TaintedBytes::from_plain(b"1".to_vec()))
            .unwrap();
        assert!(client.exists("/x").unwrap());
        client.close();
        ensemble.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn writes_to_follower_are_readable_from_leader_and_vice_versa() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
        let leader_addr = ensemble.leader_client_addr();
        let follower_addr = ensemble
            .client_addr(if ensemble.leader() == 1 { 2 } else { 1 })
            .unwrap();
        assert_ne!(leader_addr, follower_addr);

        // Write via a follower (forwarded to the leader), read via the
        // leader.
        let via_follower = ZkClient::connect(cluster.vm(0), follower_addr).unwrap();
        let t = cluster.vm(0).store().mint_source_taint(TagValue::str("fw"));
        via_follower
            .create("/forwarded", TaintedBytes::uniform(b"payload", t))
            .unwrap();
        let via_leader = ZkClient::connect(cluster.vm(0), leader_addr).unwrap();
        let got = via_leader.get("/forwarded").unwrap();
        assert_eq!(got.data(), b"payload");
        assert_eq!(
            cluster
                .vm(0)
                .store()
                .tag_values(got.taint_union(cluster.vm(0).store())),
            vec!["fw".to_string()],
            "the taint replicated with the write"
        );

        // Write via the leader, read via a follower (commit broadcast or
        // read-through).
        via_leader
            .create("/from-leader", TaintedBytes::from_plain(b"x".to_vec()))
            .unwrap();
        let got = via_follower.get("/from-leader").unwrap();
        assert_eq!(got.data(), b"x");
        via_follower.close();
        via_leader.close();
        ensemble.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn commits_replicate_to_follower_trees() {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
        let client = ZkClient::connect(cluster.vm(0), ensemble.leader_client_addr()).unwrap();
        for i in 0..8 {
            client
                .create(&format!("/n{i}"), TaintedBytes::from_plain(vec![i]))
                .unwrap();
        }
        client.close();
        // The broadcast is FIFO per follower; wait for it to drain.
        for _ in 0..500 {
            if ensemble.local_tree_sizes().iter().all(|&n| n == 8) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(
            ensemble.local_tree_sizes().iter().all(|&n| n == 8),
            "every member's local tree converged: {:?}",
            ensemble.local_tree_sizes()
        );
        ensemble.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn sim_scenario_matches_fig_11() {
        // Each node reads its txn logs (3 taints minted on the leader),
        // but only the LAST file's zxid propagates into votes; followers
        // log the accepted zxid -> LOG.info sees exactly that one taint.
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .spec(sim_spec())
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(
            cluster.vms(),
            ZkEnsembleConfig {
                txn_logs: vec![vec![10, 20, 30], vec![10, 20], vec![10]],
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(ensemble.leader(), 1, "node 1 has zxid 30");
        // Node 1 minted three file taints...
        assert!(cluster.vm(0).store().sources_minted() >= 3);
        // ...but followers' LOG.info observed only the last one.
        for follower in [1usize, 2] {
            let report = cluster.vm(follower).sink_report();
            let events = report.at("LOG.info");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].tags.len(), 1, "exactly one taint, no over-taint");
            assert!(
                events[0].tags[0].starts_with("version-2/log.2#r"),
                "the LAST file's taint propagated, got {:?}",
                events[0].tags
            );
        }
        ensemble.shutdown();
        cluster.shutdown();
    }
}

#[cfg(test)]
mod watch_tests {
    use super::*;
    use dista_core::{Cluster, Mode};
    use dista_taint::{TagValue, TaintedBytes};

    #[test]
    fn watch_fires_across_members_with_taints() {
        // A watcher on one member is notified when a different client
        // writes through another member — and the pushed value carries
        // the writer's taint across three hops (writer → leader →
        // watcher's member → watcher).
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 3)
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
        let follower_id = if ensemble.leader() == 1 { 2 } else { 1 };
        let follower_addr = ensemble.client_addr(follower_id).unwrap();

        let watcher_client = ZkClient::connect(cluster.vm(0), follower_addr).unwrap();
        let watcher = watcher_client.attach_watcher().unwrap();
        watcher_client.watch("/config/flag").unwrap();

        let writer = ZkClient::connect(cluster.vm(2), ensemble.leader_client_addr()).unwrap();
        let taint = cluster
            .vm(2)
            .store()
            .mint_source_taint(TagValue::str("flip"));
        writer
            .create("/config/flag", TaintedBytes::uniform(b"on", taint))
            .unwrap();

        let event = watcher.await_event().unwrap();
        assert_eq!(event.path, "/config/flag");
        assert_eq!(event.data.data(), b"on");
        assert_eq!(
            cluster
                .vm(0)
                .store()
                .tag_values(event.data.taint_union(cluster.vm(0).store())),
            vec!["flip".to_string()],
            "the watch notification carries the writer's taint"
        );

        // Watches are one-shot: a second write does not fire again.
        writer
            .set("/config/flag", TaintedBytes::from_plain(b"off".to_vec()))
            .unwrap();
        watcher_client.watch("/other").unwrap(); // re-arm a different path
        writer
            .create("/other", TaintedBytes::from_plain(b"x".to_vec()))
            .unwrap();
        let event = watcher.await_event().unwrap();
        assert_eq!(
            event.path, "/other",
            "one-shot semantics: /config/flag did not re-fire"
        );

        watcher.close();
        watcher_client.close();
        writer.close();
        ensemble.shutdown();
        cluster.shutdown();
    }
}

//! A ZooKeeper-backed Taint Map storage backend (paper §IV: "Taint Map
//! can be replaced by other mature K-V store systems such as ZooKeeper
//! and etcd to improve its performance").
//!
//! Global taints live in the ZooKeeper data tree under a configurable
//! root (default `/dista/taintmap`):
//!
//! ```text
//! <root>/next          big-endian u32: last assigned local id
//! <root>/id-<id>       the serialized taint bytes
//! <root>/hash-<h>-<k>  dedup index: fnv64(bytes) (+probe) → local id
//! ```
//!
//! Because the state survives the Taint Map *process*, a restarted
//! service keeps serving previously assigned Global IDs — the durability
//! upgrade the paper gestures at.
//!
//! Backends store **shard-local dense ids** (the server maps them into
//! the statically partitioned global namespace), so a sharded deployment
//! simply gives every shard its own root — see
//! [`ZkTaintMapBackend::connect_shard`].

use dista_jre::Vm;
use dista_simnet::NodeAddr;
use dista_taint::TaintedBytes;
use dista_taintmap::TaintMapBackend;
use parking_lot::Mutex;

use crate::server::{ZkClient, ZkError};

const DEFAULT_ROOT: &str = "/dista/taintmap";

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Taint Map storage living in a mini-ZooKeeper ensemble.
pub struct ZkTaintMapBackend {
    zk: Mutex<ZkClient>,
    root: String,
}

impl std::fmt::Debug for ZkTaintMapBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkTaintMapBackend")
            .field("root", &self.root)
            .finish()
    }
}

impl ZkTaintMapBackend {
    /// Connects the backend to a ZooKeeper client port at the default
    /// root. The Taint Map server process owns this session; all
    /// mutation goes through it.
    ///
    /// # Errors
    ///
    /// ZooKeeper connection errors.
    pub fn connect(vm: &Vm, zk_addr: NodeAddr) -> Result<Self, ZkError> {
        Self::connect_at(vm, zk_addr, DEFAULT_ROOT)
    }

    /// Connects the backend with an explicit tree root, so independent
    /// deployments (or shards) can share one ensemble without sharing
    /// state.
    ///
    /// # Errors
    ///
    /// ZooKeeper connection errors.
    pub fn connect_at(
        vm: &Vm,
        zk_addr: NodeAddr,
        root: impl Into<String>,
    ) -> Result<Self, ZkError> {
        Ok(ZkTaintMapBackend {
            zk: Mutex::new(ZkClient::connect(vm, zk_addr)?),
            root: root.into(),
        })
    }

    /// Connects the backend for shard `index` of a sharded deployment:
    /// the tree root becomes `/dista/taintmap/shard-<index>`. Handy as a
    /// `TaintMapEndpointBuilder::backend` factory.
    ///
    /// # Errors
    ///
    /// ZooKeeper connection errors.
    pub fn connect_shard(vm: &Vm, zk_addr: NodeAddr, index: usize) -> Result<Self, ZkError> {
        Self::connect_at(vm, zk_addr, format!("{DEFAULT_ROOT}/shard-{index}"))
    }

    /// The tree root this backend reads and writes under.
    pub fn root(&self) -> &str {
        &self.root
    }

    fn read_u32(zk: &ZkClient, path: &str) -> Option<u32> {
        let bytes = zk.get(path).ok()?;
        let d = bytes.data();
        (d.len() == 4).then(|| u32::from_be_bytes([d[0], d[1], d[2], d[3]]))
    }

    fn write_u32(zk: &ZkClient, path: &str, value: u32) {
        let bytes = TaintedBytes::from_plain(value.to_be_bytes().to_vec());
        if zk.set(path, bytes.clone()).is_err() {
            let _ = zk.create(path, bytes);
        }
    }
}

impl TaintMapBackend for ZkTaintMapBackend {
    fn register(&self, serialized: &[u8]) -> u32 {
        let zk = self.zk.lock();
        let root = &self.root;
        let hash = fnv64(serialized);
        // Probe the dedup index (collision chain).
        for k in 0.. {
            let hash_path = format!("{root}/hash-{hash:016x}-{k}");
            match Self::read_u32(&zk, &hash_path) {
                Some(gid) => {
                    // Verify against the stored bytes (collision guard).
                    if zk
                        .get(&format!("{root}/id-{gid}"))
                        .map(|b| b.data() == serialized)
                        .unwrap_or(false)
                    {
                        return gid;
                    }
                    // Different bytes with the same hash: keep probing.
                }
                None => {
                    // Fresh taint: allocate the next id and record it.
                    let gid = Self::read_u32(&zk, &format!("{root}/next")).unwrap_or(0) + 1;
                    Self::write_u32(&zk, &format!("{root}/next"), gid);
                    let _ = zk.create(
                        &format!("{root}/id-{gid}"),
                        TaintedBytes::from_plain(serialized.to_vec()),
                    );
                    Self::write_u32(&zk, &hash_path, gid);
                    return gid;
                }
            }
        }
        unreachable!("probe loop always returns")
    }

    fn lookup(&self, gid: u32) -> Option<Vec<u8>> {
        let zk = self.zk.lock();
        zk.get(&format!("{}/id-{gid}", self.root))
            .ok()
            .map(|b| b.into_plain())
    }

    fn insert_replicated(&self, gid: u32, serialized: &[u8]) {
        let zk = self.zk.lock();
        let root = &self.root;
        let next = Self::read_u32(&zk, &format!("{root}/next")).unwrap_or(0);
        if gid > next {
            Self::write_u32(&zk, &format!("{root}/next"), gid);
        }
        let bytes = TaintedBytes::from_plain(serialized.to_vec());
        if zk.set(&format!("{root}/id-{gid}"), bytes.clone()).is_err() {
            let _ = zk.create(&format!("{root}/id-{gid}"), bytes);
        }
        let hash = fnv64(serialized);
        Self::write_u32(&zk, &format!("{root}/hash-{hash:016x}-0"), gid);
    }

    fn max_local(&self) -> u32 {
        let zk = self.zk.lock();
        Self::read_u32(&zk, &format!("{}/next", self.root)).unwrap_or(0)
    }

    fn len(&self) -> u64 {
        let zk = self.zk.lock();
        Self::read_u32(&zk, &format!("{}/next", self.root))
            .unwrap_or(0)
            .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ZkEnsemble, ZkEnsembleConfig};
    use dista_core::{Cluster, Mode};
    use dista_taint::TagValue;
    use dista_taintmap::TaintMapEndpoint;
    use std::sync::Arc;

    #[test]
    fn backend_dedups_and_roundtrips() {
        let cluster = Cluster::builder(Mode::Original)
            .nodes("zk", 3)
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
        let backend =
            ZkTaintMapBackend::connect(cluster.vm(0), ensemble.any_client_addr()).unwrap();
        let a = backend.register(b"taint-a");
        let b = backend.register(b"taint-b");
        assert_ne!(a, b);
        assert_eq!(backend.register(b"taint-a"), a);
        assert_eq!(backend.lookup(a).as_deref(), Some(b"taint-a".as_ref()));
        assert_eq!(backend.lookup(999), None);
        assert_eq!(backend.len(), 2);
        ensemble.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn taint_map_state_survives_service_restart() {
        // The durability upgrade of §IV: the Taint Map process dies and
        // restarts, but its state lives in ZooKeeper.
        let cluster = Cluster::builder(Mode::Original)
            .nodes("zk", 3)
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
        let net = cluster.net().clone();
        let tm_addr = NodeAddr::new([10, 0, 0, 50], 7700);

        let backend = Arc::new(
            ZkTaintMapBackend::connect(cluster.vm(0), ensemble.any_client_addr()).unwrap(),
        );
        let server = TaintMapEndpoint::builder()
            .addr(tm_addr)
            .backend(move |_| backend.clone())
            .connect(&net)
            .unwrap();

        let store = dista_taint::TaintStore::new(dista_taint::LocalId::new([10, 0, 0, 1], 1));
        let client = server.client(&net, store.clone()).unwrap();
        let t = store.mint_source_taint(TagValue::str("durable"));
        let gid = client.global_id_for(t).unwrap();
        server.shutdown();

        // Restart the service on a fresh backend session — same ZK tree.
        let backend2 = Arc::new(
            ZkTaintMapBackend::connect(cluster.vm(0), ensemble.any_client_addr()).unwrap(),
        );
        let server2 = TaintMapEndpoint::builder()
            .addr(tm_addr)
            .backend(move |_| backend2.clone())
            .connect(&net)
            .unwrap();
        let store2 = dista_taint::TaintStore::new(dista_taint::LocalId::new([10, 0, 0, 2], 2));
        let client2 = server2.client(&net, store2.clone()).unwrap();
        let resolved = client2.taint_for(gid).unwrap();
        assert_eq!(store2.tag_values(resolved), vec!["durable".to_string()]);
        // And new registrations continue from the persisted counter.
        let t2 = store2.mint_source_taint(TagValue::str("fresh"));
        let gid2 = client2.global_id_for(t2).unwrap();
        assert!(gid2.0 > gid.0);
        server2.shutdown();
        ensemble.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn sharded_deployment_keeps_disjoint_zk_roots() {
        // Two shards share one ensemble but own separate tree roots;
        // batched registrations spread across them without collisions.
        let cluster = Cluster::builder(Mode::Original)
            .nodes("zk", 3)
            .build()
            .unwrap();
        let ensemble = ZkEnsemble::start(cluster.vms(), ZkEnsembleConfig::default()).unwrap();
        let net = cluster.net().clone();
        let vm = cluster.vm(0).clone();
        let zk_addr = ensemble.any_client_addr();

        let endpoint = TaintMapEndpoint::builder()
            .addr(NodeAddr::new([10, 0, 0, 50], 7700))
            .shards(2)
            .backend(move |i| Arc::new(ZkTaintMapBackend::connect_shard(&vm, zk_addr, i).unwrap()))
            .connect(&net)
            .unwrap();

        let store = dista_taint::TaintStore::new(dista_taint::LocalId::new([10, 0, 0, 1], 1));
        let client = endpoint.client(&net, store.clone()).unwrap();
        let taints: Vec<_> = (0..16)
            .map(|i| store.mint_source_taint(TagValue::Int(i)))
            .collect();
        let gids = client.global_ids_for(&taints).unwrap();

        let store2 = dista_taint::TaintStore::new(dista_taint::LocalId::new([10, 0, 0, 2], 2));
        let client2 = endpoint.client(&net, store2.clone()).unwrap();
        let resolved = client2.taints_for(&gids).unwrap();
        for (i, t) in resolved.iter().enumerate() {
            assert_eq!(store2.tag_values(*t), vec![i.to_string()]);
        }
        assert_eq!(endpoint.stats().global_taints, 16);
        // FNV routing spread the 16 distinct taints over both roots.
        assert!(endpoint.shard(0).stats().global_taints > 0);
        assert!(endpoint.shard(1).stats().global_taints > 0);
        endpoint.shutdown();
        ensemble.shutdown();
        cluster.shutdown();
    }
}

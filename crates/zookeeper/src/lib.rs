//! # dista-zookeeper — a mini ZooKeeper on the instrumented mini-JRE
//!
//! The paper's first real-world subject (Table III): "ZooKeeper — JRE
//! TCP, Netty — Leader election". This crate reproduces the pieces the
//! evaluation exercises:
//!
//! * **Fast leader election** over JRE TCP socket streams, with the
//!   `SendWorker`/`RecvWorker` thread structure of the motivating example
//!   (Fig. 1). Votes are `ObjValue` records serialized through the
//!   instrumented object streams, so their field taints cross nodes.
//! * **Transaction-log boot**: each node reads its txn-log files at
//!   startup to recover the largest zxid — the SIM-scenario source point
//!   walked through in Fig. 11 (three reads → three taints, only the
//!   last propagates).
//! * **A small data tree** served to clients (create/get/set), enough for
//!   HBase to store its meta location — the cross-system scenario.
//!
//! Taint scenarios (Table IV):
//! * **SDT** — source: the `Vote` variable (`FastLeaderElection.getVote`);
//!   sink: `FastLeaderElection.checkLeader` on followers.
//! * **SIM** — source: `FileInputStream.read`; sink: `LOG.info`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod election;
mod ensemble;
mod server;
mod taintmap_backend;
mod vote;

pub use election::{run_election, ElectionOutcome, PeerConfig};
pub use ensemble::{ZkEnsemble, ZkEnsembleConfig};
pub use server::{WatchEvent, ZkClient, ZkError, ZkServerHandle, ZkWatcher};
pub use taintmap_backend::ZkTaintMapBackend;
pub use vote::{ServerState, Vote};

/// Descriptor class used for SDT source/sink registration.
pub const FLE_CLASS: &str = "FastLeaderElection";

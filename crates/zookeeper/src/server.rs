//! The ZooKeeper data-tree service: create/get/set over instrumented TCP
//! object streams. This is what HBase talks to in the cross-system
//! workload (meta-location lookup).
//!
//! Replication is leader-mediated, ZAB-style: every server owns its own
//! tree; followers forward writes to the leader, the leader applies them
//! and broadcasts commits to all followers over dedicated commit
//! channels. Reads are served locally, with a read-through to the leader
//! on miss so clients get read-your-writes no matter which member they
//! talk to. Every hop is instrumented traffic, so stored taints
//! replicate with the data.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dista_jre::{
    JreError, ObjValue, ObjectInputStream, ObjectOutputStream, ServerSocket, Socket, Vm,
};
use dista_simnet::NodeAddr;
use dista_taint::TaintedBytes;
use parking_lot::{Mutex, RwLock};

/// Errors surfaced by the ZooKeeper client API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkError {
    /// Node does not exist.
    NoNode(String),
    /// Node already exists.
    NodeExists(String),
    /// Transport/protocol failure.
    Io(JreError),
}

impl std::fmt::Display for ZkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZkError::NoNode(p) => write!(f, "no node: {p}"),
            ZkError::NodeExists(p) => write!(f, "node exists: {p}"),
            ZkError::Io(e) => write!(f, "zookeeper i/o error: {e}"),
        }
    }
}

impl std::error::Error for ZkError {}

impl From<JreError> for ZkError {
    fn from(e: JreError) -> Self {
        ZkError::Io(e)
    }
}

/// One server's local data tree.
pub(crate) type DataTree = Arc<RwLock<HashMap<String, TaintedBytes>>>;

const STATUS_OK: i64 = 0;
const STATUS_NO_NODE: i64 = 1;
const STATUS_NODE_EXISTS: i64 = 2;

/// This member's place in the replication topology.
pub(crate) enum Role {
    /// Applies writes and broadcasts commits to followers.
    Leader {
        /// Commit channels to followers, added as they attach.
        followers: Mutex<Vec<ObjectOutputStream<dista_jre::SocketOutputStream>>>,
    },
    /// Forwards writes (and read misses) to the leader.
    Follower {
        /// A client session to the leader's client port.
        leader: Mutex<ZkClient>,
    },
    /// No ensemble (tests, single-node use).
    Standalone,
}

pub(crate) struct ServerCore {
    tree: DataTree,
    role: Role,
    /// Watch channels by client token.
    watch_channels: Mutex<HashMap<i64, ObjectOutputStream<dista_jre::SocketOutputStream>>>,
    /// Registered watches: path → watching client tokens (one-shot,
    /// like real ZooKeeper watches).
    watches: Mutex<HashMap<String, Vec<i64>>>,
}

impl ServerCore {
    pub(crate) fn new(role: Role) -> Arc<Self> {
        Arc::new(ServerCore {
            tree: Arc::new(RwLock::new(HashMap::new())),
            role,
            watch_channels: Mutex::new(HashMap::new()),
            watches: Mutex::new(HashMap::new()),
        })
    }

    /// Fires (and clears) the one-shot watches on `path`, pushing a
    /// `WatchEvent` — with the new value's taints — down each watcher's
    /// channel.
    fn fire_watches(&self, path: &str, data: &TaintedBytes) {
        let tokens = match self.watches.lock().remove(path) {
            Some(tokens) => tokens,
            None => return,
        };
        let event = ObjValue::Record(
            "WatchEvent".into(),
            vec![
                ("path".into(), ObjValue::str_plain(path)),
                ("data".into(), ObjValue::Bytes(data.clone())),
            ],
        );
        let mut channels = self.watch_channels.lock();
        for token in tokens {
            if let Some(sink) = channels.get(&token) {
                if sink.write_object(&event).is_err() {
                    channels.remove(&token);
                }
            }
        }
    }

    /// Applies a committed write locally (no forwarding, no broadcast)
    /// and fires any watches on the path.
    fn apply(&self, op: &str, path: &str, data: TaintedBytes) -> i64 {
        let status = {
            let mut tree = self.tree.write();
            match op {
                "create" => match tree.entry(path.to_string()) {
                    std::collections::hash_map::Entry::Occupied(_) => STATUS_NODE_EXISTS,
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(data.clone());
                        STATUS_OK
                    }
                },
                "set" => match tree.get_mut(path) {
                    Some(slot) => {
                        *slot = data.clone();
                        STATUS_OK
                    }
                    None => STATUS_NO_NODE,
                },
                _ => STATUS_NO_NODE,
            }
        };
        if status == STATUS_OK {
            self.fire_watches(path, &data);
        }
        status
    }

    /// Leader-side: apply + broadcast the commit to every follower.
    fn commit(&self, op: &str, path: &str, data: TaintedBytes) -> i64 {
        let status = self.apply(op, path, data.clone());
        if status == STATUS_OK {
            if let Role::Leader { followers } = &self.role {
                let commit = ObjValue::Record(
                    "Commit".into(),
                    vec![
                        ("op".into(), ObjValue::str_plain(op)),
                        ("path".into(), ObjValue::str_plain(path)),
                        ("data".into(), ObjValue::Bytes(data)),
                    ],
                );
                followers
                    .lock()
                    .retain(|sink| sink.write_object(&commit).is_ok());
            }
        }
        status
    }

    fn handle(&self, request: &ObjValue) -> ObjValue {
        let op = request.field("op").and_then(ObjValue::as_str).unwrap_or("");
        let path = request
            .field("path")
            .and_then(ObjValue::as_str)
            .unwrap_or("")
            .to_string();
        let data = match request.field("data") {
            Some(ObjValue::Bytes(b)) => b.clone(),
            _ => TaintedBytes::new(),
        };
        let (status, payload) = match op {
            "create" | "set" => match &self.role {
                Role::Follower { leader } => {
                    // Forward the write to the leader; our own tree gets
                    // the value through the commit broadcast.
                    let leader = leader.lock();
                    match leader.call_raw(op, &path, data) {
                        Ok((status, _)) => (status, TaintedBytes::new()),
                        Err(_) => (STATUS_NO_NODE, TaintedBytes::new()),
                    }
                }
                _ => (self.commit(op, &path, data), TaintedBytes::new()),
            },
            "get" => match self.read_through(&path) {
                Some(bytes) => (STATUS_OK, bytes),
                None => (STATUS_NO_NODE, TaintedBytes::new()),
            },
            "exists" => {
                let found = self.read_through(&path).is_some();
                (STATUS_OK, TaintedBytes::from_plain(vec![u8::from(found)]))
            }
            "watch" => {
                let token = request
                    .field("token")
                    .and_then(ObjValue::as_int)
                    .unwrap_or(0);
                self.watches.lock().entry(path).or_default().push(token);
                (STATUS_OK, TaintedBytes::new())
            }
            _ => (STATUS_NO_NODE, TaintedBytes::new()),
        };
        ObjValue::Record(
            "ZkResponse".into(),
            vec![
                ("status".into(), ObjValue::int_plain(status)),
                ("data".into(), ObjValue::Bytes(payload)),
            ],
        )
    }

    /// Local read with leader read-through on miss (read-your-writes for
    /// clients of lagging followers).
    fn read_through(&self, path: &str) -> Option<TaintedBytes> {
        if let Some(bytes) = self.tree.read().get(path) {
            return Some(bytes.clone());
        }
        if let Role::Follower { leader } = &self.role {
            let leader = leader.lock();
            if let Ok((status, bytes)) = leader.call_raw("get", path, TaintedBytes::new()) {
                if status == STATUS_OK {
                    // Cache the value locally (it is committed state).
                    self.tree.write().insert(path.to_string(), bytes.clone());
                    return Some(bytes);
                }
            }
        }
        None
    }
}

/// A running ZooKeeper server (one ensemble member's client port).
pub struct ZkServerHandle {
    vm: Vm,
    addr: NodeAddr,
    core: Arc<ServerCore>,
    running: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ZkServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ZkServerHandle {
    /// Starts serving at `addr` on `vm` with the given replication core.
    pub(crate) fn start(vm: &Vm, addr: NodeAddr, core: Arc<ServerCore>) -> Result<Self, JreError> {
        let listener = ServerSocket::bind(vm, addr)?;
        let running = Arc::new(AtomicBool::new(true));
        let accept_running = running.clone();
        let accept_core = core.clone();
        let acceptor = std::thread::Builder::new()
            .name(format!("zk-server-{addr}"))
            .spawn(move || {
                while accept_running.load(Ordering::Relaxed) {
                    let socket = match listener.accept() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let core = accept_core.clone();
                    std::thread::spawn(move || serve_session(socket, core));
                }
            })
            .expect("spawn zk acceptor");
        Ok(ZkServerHandle {
            vm: vm.clone(),
            addr,
            core,
            running,
            acceptor: Some(acceptor),
        })
    }

    /// Starts a standalone (non-replicated) server — used by tests.
    pub fn start_standalone(vm: &Vm, addr: NodeAddr) -> Result<Self, JreError> {
        Self::start(vm, addr, ServerCore::new(Role::Standalone))
    }

    /// The client-port address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Spawns the commit-apply loop for a follower (follower side).
    pub(crate) fn run_commit_loop(&self, input: ObjectInputStream<dista_jre::SocketInputStream>) {
        let core = self.core.clone();
        std::thread::spawn(move || loop {
            let Ok(commit) = input.read_object() else {
                return;
            };
            let op = commit.field("op").and_then(ObjValue::as_str).unwrap_or("");
            let path = commit
                .field("path")
                .and_then(ObjValue::as_str)
                .unwrap_or("");
            let data = match commit.field("data") {
                Some(ObjValue::Bytes(b)) => b.clone(),
                _ => TaintedBytes::new(),
            };
            core.apply(op, path, data);
        });
    }

    /// Number of entries in this member's local tree (replication lag
    /// diagnostics in tests).
    pub fn local_tree_len(&self) -> usize {
        self.core.tree.read().len()
    }

    /// Stops accepting sessions.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            self.running.store(false, Ordering::Relaxed);
            if let Ok(s) = Socket::connect(&self.vm, self.addr) {
                s.close();
            }
            self.vm.net().tcp_unlisten(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ZkServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_session(socket: Socket, core: Arc<ServerCore>) {
    let input = ObjectInputStream::new(socket.input_stream());
    let output = ObjectOutputStream::new(socket.output_stream());
    loop {
        let request = match input.read_object() {
            Ok(r) => r,
            Err(_) => return,
        };
        // A follower announcing itself turns this session into a commit
        // channel (leader side).
        if request.class_name() == Some("FollowerAttach") {
            core_attach(&core, output);
            return keep_reading_until_eof(input);
        }
        // A client announcing a watch channel parks this session as an
        // event push stream.
        if request.class_name() == Some("WatcherAttach") {
            let token = request
                .field("token")
                .and_then(ObjValue::as_int)
                .unwrap_or(0);
            core.watch_channels.lock().insert(token, output);
            return keep_reading_until_eof(input);
        }
        let response = core.handle(&request);
        if output.write_object(&response).is_err() {
            return;
        }
    }
}

fn core_attach(core: &Arc<ServerCore>, sink: ObjectOutputStream<dista_jre::SocketOutputStream>) {
    if let Role::Leader { followers } = &core.role {
        followers.lock().push(sink);
    }
}

fn keep_reading_until_eof(input: ObjectInputStream<dista_jre::SocketInputStream>) {
    while input.read_object().is_ok() {}
}

static NEXT_SESSION_TOKEN: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(1);

/// A change notification pushed to a watcher.
#[derive(Debug, Clone)]
pub struct WatchEvent {
    /// The changed path.
    pub path: String,
    /// The new value, taints intact.
    pub data: TaintedBytes,
}

/// A client's watch channel: blocks on pushed [`WatchEvent`]s.
#[derive(Debug)]
pub struct ZkWatcher {
    input: ObjectInputStream<dista_jre::SocketInputStream>,
    socket: Socket,
}

impl ZkWatcher {
    /// Blocks until the next watch event arrives.
    ///
    /// # Errors
    ///
    /// Transport errors (including session close).
    pub fn await_event(&self) -> Result<WatchEvent, ZkError> {
        let event = self.input.read_object()?;
        if event.class_name() != Some("WatchEvent") {
            return Err(ZkError::Io(JreError::Protocol("expected a WatchEvent")));
        }
        let path = event
            .field("path")
            .and_then(ObjValue::as_str)
            .ok_or(JreError::Protocol("event missing path"))?
            .to_string();
        let data = match event.field("data") {
            Some(ObjValue::Bytes(b)) => b.clone(),
            _ => TaintedBytes::new(),
        };
        Ok(WatchEvent { path, data })
    }

    /// Closes the watch channel.
    pub fn close(&self) {
        self.socket.close();
    }
}

/// A ZooKeeper client session.
#[derive(Debug)]
pub struct ZkClient {
    vm: Vm,
    addr: NodeAddr,
    token: i64,
    input: ObjectInputStream<dista_jre::SocketInputStream>,
    output: ObjectOutputStream<dista_jre::SocketOutputStream>,
    socket: Socket,
}

impl ZkClient {
    /// Connects to a server's client port.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn connect(vm: &Vm, addr: NodeAddr) -> Result<Self, ZkError> {
        let socket = Socket::connect(vm, addr)?;
        Ok(ZkClient {
            vm: vm.clone(),
            addr,
            token: NEXT_SESSION_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            input: ObjectInputStream::new(socket.input_stream()),
            output: ObjectOutputStream::new(socket.output_stream()),
            socket,
        })
    }

    /// Opens this session's watch channel. Call before [`ZkClient::watch`].
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn attach_watcher(&self) -> Result<ZkWatcher, ZkError> {
        let socket = Socket::connect(&self.vm, self.addr)?;
        ObjectOutputStream::new(socket.output_stream()).write_object(&ObjValue::Record(
            "WatcherAttach".into(),
            vec![("token".into(), ObjValue::int_plain(self.token))],
        ))?;
        Ok(ZkWatcher {
            input: ObjectInputStream::new(socket.input_stream()),
            socket,
        })
    }

    /// Registers a one-shot watch on `path`; the next create/set there
    /// pushes a [`WatchEvent`] to this session's watcher.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn watch(&self, path: &str) -> Result<(), ZkError> {
        let request = ObjValue::Record(
            "ZkRequest".into(),
            vec![
                ("op".into(), ObjValue::str_plain("watch")),
                ("path".into(), ObjValue::str_plain(path)),
                ("token".into(), ObjValue::int_plain(self.token)),
                ("data".into(), ObjValue::Bytes(TaintedBytes::new())),
            ],
        );
        self.output.write_object(&request)?;
        let response = self.input.read_object()?;
        let status = response
            .field("status")
            .and_then(ObjValue::as_int)
            .ok_or(JreError::Protocol("malformed zk response"))?;
        Self::check(status, path)
    }

    pub(crate) fn call_raw(
        &self,
        op: &str,
        path: &str,
        data: TaintedBytes,
    ) -> Result<(i64, TaintedBytes), ZkError> {
        let request = ObjValue::Record(
            "ZkRequest".into(),
            vec![
                ("op".into(), ObjValue::str_plain(op)),
                ("path".into(), ObjValue::str_plain(path)),
                ("data".into(), ObjValue::Bytes(data)),
            ],
        );
        self.output.write_object(&request)?;
        let response = self.input.read_object()?;
        let status = response
            .field("status")
            .and_then(ObjValue::as_int)
            .ok_or(JreError::Protocol("malformed zk response"))?;
        let payload = match response.field("data") {
            Some(ObjValue::Bytes(b)) => b.clone(),
            _ => TaintedBytes::new(),
        };
        Ok((status, payload))
    }

    fn check(status: i64, path: &str) -> Result<(), ZkError> {
        match status {
            STATUS_OK => Ok(()),
            STATUS_NO_NODE => Err(ZkError::NoNode(path.to_string())),
            STATUS_NODE_EXISTS => Err(ZkError::NodeExists(path.to_string())),
            _ => Err(ZkError::Io(JreError::Protocol("unknown zk status"))),
        }
    }

    /// Creates a node.
    ///
    /// # Errors
    ///
    /// [`ZkError::NodeExists`] or transport errors.
    pub fn create(&self, path: &str, data: TaintedBytes) -> Result<(), ZkError> {
        let (status, _) = self.call_raw("create", path, data)?;
        Self::check(status, path)
    }

    /// Overwrites a node.
    ///
    /// # Errors
    ///
    /// [`ZkError::NoNode`] or transport errors.
    pub fn set(&self, path: &str, data: TaintedBytes) -> Result<(), ZkError> {
        let (status, _) = self.call_raw("set", path, data)?;
        Self::check(status, path)
    }

    /// Reads a node (with the stored per-byte taints, which crossed the
    /// wire both ways — and through replication).
    ///
    /// # Errors
    ///
    /// [`ZkError::NoNode`] or transport errors.
    pub fn get(&self, path: &str) -> Result<TaintedBytes, ZkError> {
        let (status, payload) = self.call_raw("get", path, TaintedBytes::new())?;
        Self::check(status, path)?;
        Ok(payload)
    }

    /// Whether a node exists.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn exists(&self, path: &str) -> Result<bool, ZkError> {
        let (status, payload) = self.call_raw("exists", path, TaintedBytes::new())?;
        Self::check(status, path)?;
        Ok(payload.data() == [1])
    }

    /// The VM running this client.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Closes the session.
    pub fn close(&self) {
        self.socket.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_core::{Cluster, Mode};
    use dista_taint::TagValue;

    fn rig() -> (Cluster, ZkServerHandle) {
        let cluster = Cluster::builder(Mode::Dista)
            .nodes("zk", 2)
            .build()
            .unwrap();
        let server =
            ZkServerHandle::start_standalone(cluster.vm(0), NodeAddr::new([10, 0, 0, 1], 2181))
                .unwrap();
        (cluster, server)
    }

    #[test]
    fn create_get_set_exists() {
        let (cluster, server) = rig();
        let client = ZkClient::connect(cluster.vm(1), server.addr()).unwrap();
        assert!(!client.exists("/a").unwrap());
        client
            .create("/a", TaintedBytes::from_plain(b"v1".to_vec()))
            .unwrap();
        assert!(client.exists("/a").unwrap());
        assert_eq!(client.get("/a").unwrap().data(), b"v1");
        client
            .set("/a", TaintedBytes::from_plain(b"v2".to_vec()))
            .unwrap();
        assert_eq!(client.get("/a").unwrap().data(), b"v2");
        client.close();
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn error_statuses() {
        let (cluster, server) = rig();
        let client = ZkClient::connect(cluster.vm(1), server.addr()).unwrap();
        assert_eq!(
            client.get("/missing"),
            Err(ZkError::NoNode("/missing".into()))
        );
        client.create("/dup", TaintedBytes::new()).unwrap();
        assert_eq!(
            client.create("/dup", TaintedBytes::new()),
            Err(ZkError::NodeExists("/dup".into()))
        );
        assert_eq!(
            client.set("/nope", TaintedBytes::new()),
            Err(ZkError::NoNode("/nope".into()))
        );
        client.close();
        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn taints_survive_store_and_fetch() {
        // Client A writes tainted data; client B (different node) reads
        // it back — the taint crosses client→server→client.
        let (cluster, server) = rig();
        let writer = ZkClient::connect(cluster.vm(1), server.addr()).unwrap();
        let t = cluster
            .vm(1)
            .store()
            .mint_source_taint(TagValue::str("meta"));
        writer
            .create("/hbase/meta", TaintedBytes::uniform(b"rs2:16020", t))
            .unwrap();

        let reader = ZkClient::connect(cluster.vm(1), server.addr()).unwrap();
        let got = reader.get("/hbase/meta").unwrap();
        assert_eq!(got.data(), b"rs2:16020");
        assert_eq!(
            cluster
                .vm(1)
                .store()
                .tag_values(got.taint_union(cluster.vm(1).store())),
            vec!["meta".to_string()]
        );
        writer.close();
        reader.close();
        server.shutdown();
        cluster.shutdown();
    }
}

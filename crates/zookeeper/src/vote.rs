//! Votes and notifications — the messages of fast leader election.

use dista_jre::{JreError, ObjValue, Vm};
use dista_taint::{Taint, Tainted};

/// Peer states during election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Still electing.
    Looking,
    /// Elected leader.
    Leading,
    /// Following an elected leader.
    Following,
}

impl ServerState {
    fn code(self) -> i64 {
        match self {
            ServerState::Looking => 0,
            ServerState::Leading => 1,
            ServerState::Following => 2,
        }
    }

    fn from_code(code: i64) -> Result<Self, JreError> {
        Ok(match code {
            0 => ServerState::Looking,
            1 => ServerState::Leading,
            2 => ServerState::Following,
            _ => return Err(JreError::Protocol("unknown server state")),
        })
    }
}

/// A vote: "I propose `leader` whose log ends at `zxid` in `epoch`".
///
/// The `leader` and `zxid` fields carry taints — `leader` is the SDT
/// source variable, `zxid` inherits the txn-log file taint in SIM runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vote {
    /// Proposed leader id (the SDT-tainted variable).
    pub leader: Tainted<i64>,
    /// Proposer's last zxid (file-tainted in SIM runs).
    pub zxid: Tainted<i64>,
    /// Election epoch.
    pub epoch: i64,
    /// Sender's server id.
    pub from: i64,
    /// Sender's state.
    pub state: ServerState,
}

impl Vote {
    /// Total order used by fast leader election: higher (epoch, zxid,
    /// leader id) wins.
    pub fn beats(&self, other: &Vote) -> bool {
        (self.epoch, *self.zxid.value(), *self.leader.value())
            > (other.epoch, *other.zxid.value(), *other.leader.value())
    }

    /// Combined taint of the vote's tracked fields.
    pub fn taint(&self, vm: &Vm) -> Taint {
        vm.store().union(self.leader.taint(), self.zxid.taint())
    }

    /// Serializes to an object-stream record.
    pub fn to_obj(&self) -> ObjValue {
        ObjValue::Record(
            "Vote".into(),
            vec![
                (
                    "leader".into(),
                    ObjValue::Int(*self.leader.value(), self.leader.taint()),
                ),
                (
                    "zxid".into(),
                    ObjValue::Int(*self.zxid.value(), self.zxid.taint()),
                ),
                ("epoch".into(), ObjValue::int_plain(self.epoch)),
                ("from".into(), ObjValue::int_plain(self.from)),
                ("state".into(), ObjValue::int_plain(self.state.code())),
            ],
        )
    }

    /// Deserializes from an object-stream record.
    ///
    /// # Errors
    ///
    /// [`JreError::Protocol`] if the record is not a well-formed vote.
    pub fn from_obj(obj: &ObjValue) -> Result<Vote, JreError> {
        if obj.class_name() != Some("Vote") {
            return Err(JreError::Protocol("not a Vote record"));
        }
        let int_field = |name: &str| -> Result<(i64, Taint), JreError> {
            match obj.field(name) {
                Some(ObjValue::Int(v, t)) => Ok((*v, *t)),
                _ => Err(JreError::Protocol("missing vote field")),
            }
        };
        let (leader, leader_t) = int_field("leader")?;
        let (zxid, zxid_t) = int_field("zxid")?;
        let (epoch, _) = int_field("epoch")?;
        let (from, _) = int_field("from")?;
        let (state, _) = int_field("state")?;
        Ok(Vote {
            leader: Tainted::new(leader, leader_t),
            zxid: Tainted::new(zxid, zxid_t),
            epoch,
            from,
            state: ServerState::from_code(state)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dista_jre::Mode;
    use dista_simnet::SimNet;
    use dista_taint::TagValue;

    fn vm() -> Vm {
        Vm::builder("t", &SimNet::new())
            .mode(Mode::Phosphor)
            .build()
            .unwrap()
    }

    fn vote(vm: &Vm, leader: i64, zxid: i64, epoch: i64) -> Vote {
        let t = vm
            .store()
            .mint_source_taint(TagValue::str(format!("v{leader}")));
        Vote {
            leader: Tainted::new(leader, t),
            zxid: Tainted::untainted(zxid),
            epoch,
            from: leader,
            state: ServerState::Looking,
        }
    }

    #[test]
    fn ordering_is_epoch_zxid_id() {
        let vm = vm();
        let low = vote(&vm, 3, 10, 1);
        let higher_epoch = vote(&vm, 1, 0, 2);
        assert!(higher_epoch.beats(&low));
        let higher_zxid = vote(&vm, 1, 20, 1);
        assert!(higher_zxid.beats(&low));
        let higher_id = vote(&vm, 5, 10, 1);
        assert!(higher_id.beats(&low));
        assert!(!low.beats(&low));
    }

    #[test]
    fn obj_roundtrip_keeps_taints() {
        let vm = vm();
        let v = vote(&vm, 2, 0x100, 1);
        let back = Vote::from_obj(&v.to_obj()).unwrap();
        assert_eq!(back, v);
        assert_eq!(vm.store().tag_values(back.leader.taint()), vec!["v2"]);
    }

    #[test]
    fn malformed_records_error() {
        assert!(Vote::from_obj(&ObjValue::int_plain(1)).is_err());
        assert!(Vote::from_obj(&ObjValue::Record("Vote".into(), vec![])).is_err());
        let bad_state = ObjValue::Record(
            "Vote".into(),
            vec![
                ("leader".into(), ObjValue::int_plain(1)),
                ("zxid".into(), ObjValue::int_plain(1)),
                ("epoch".into(), ObjValue::int_plain(1)),
                ("from".into(), ObjValue::int_plain(1)),
                ("state".into(), ObjValue::int_plain(99)),
            ],
        );
        assert!(Vote::from_obj(&bad_state).is_err());
    }

    #[test]
    fn taint_unions_leader_and_zxid() {
        let vm = vm();
        let tl = vm.store().mint_source_taint(TagValue::str("L"));
        let tz = vm.store().mint_source_taint(TagValue::str("Z"));
        let v = Vote {
            leader: Tainted::new(1, tl),
            zxid: Tainted::new(2, tz),
            epoch: 0,
            from: 1,
            state: ServerState::Looking,
        };
        assert_eq!(vm.store().tag_values(v.taint(&vm)), vec!["L", "Z"]);
    }
}

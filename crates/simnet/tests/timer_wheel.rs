//! Timer-wheel and reactor-deadline integration tests: cascading across
//! every wheel level (including the overflow list), cancellation in all
//! lifecycle positions, zero/duplicate deadlines, deterministic
//! deadline ordering under bulk insert, and the one-tick accuracy of
//! [`dista_simnet::NetError::Timeout`]-style deadlines when driven
//! through a live [`Reactor`].

use std::time::{Duration, Instant};

use dista_simnet::{
    FaultConfig, NetError, NodeAddr, Reactor, Readiness, SimNet, TimerWheel, Token,
};

/// 64 slots, 6 bits per level: the spans the wheel's levels cover.
const L0: u64 = 64;
const L1: u64 = 64 * 64;
const L2: u64 = 64 * 64 * 64;
const L3: u64 = 64 * 64 * 64 * 64;

#[test]
fn cascade_reaches_every_level_and_overflow() {
    let mut w = TimerWheel::new();
    let deadlines = [
        3,          // level 0
        L0 + 9,     // level 1
        L1 + 17,    // level 2
        L2 + 33,    // level 3
        L3 + 1_000, // overflow list, re-enters at the top-level wrap
    ];
    for (i, &d) in deadlines.iter().enumerate() {
        w.insert(d, i);
    }
    for &d in &deadlines {
        assert!(
            w.advance_to(d - 1).is_empty(),
            "nothing may fire before tick {d}"
        );
        let fired = w.advance_to(d);
        assert_eq!(fired.len(), 1, "exactly the tick-{d} entry fires");
    }
    assert!(w.is_empty());
}

#[test]
fn cancellation_works_in_every_lifecycle_position() {
    let mut w = TimerWheel::new();
    let early = w.insert(5, "early");
    let parked_high = w.insert(L1 + 50, "parked-high");
    let survivor = w.insert(40, "survivor");

    assert!(w.cancel(early), "cancel before any advance");
    w.advance_to(10);
    assert!(
        w.cancel(parked_high),
        "cancel an entry still parked in an upper level"
    );
    let fired = w.advance_to(L1 + 100);
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].0, survivor);
    assert_eq!(fired[0].1, "survivor");
    assert!(
        !w.cancel(fired[0].0),
        "cancelling a fired key reports false"
    );
    assert!(w.is_empty());
}

#[test]
fn zero_and_past_deadlines_fire_without_time_moving() {
    let mut w = TimerWheel::new();
    w.insert(0, "at-zero");
    let fired = w.advance_to(0);
    assert_eq!(fired.len(), 1, "tick-0 deadline fires at tick 0");

    w.advance_to(100);
    w.insert(30, "already-past");
    w.insert(100, "due-now");
    let fired = w.advance_to(100);
    assert_eq!(fired.len(), 2, "past + present deadlines fire immediately");
    assert_eq!(fired[0].1, "already-past", "older deadline first");
}

#[test]
fn duplicate_deadlines_fire_together_in_insertion_order() {
    let mut w = TimerWheel::new();
    for i in 0..10 {
        w.insert(25, i);
    }
    assert!(w.advance_to(24).is_empty());
    let fired = w.advance_to(25);
    assert_eq!(fired.len(), 10);
    let values: Vec<i32> = fired.iter().map(|&(_, v)| v).collect();
    assert_eq!(values, (0..10).collect::<Vec<_>>(), "insertion order kept");
}

#[test]
fn bulk_insert_fires_in_deadline_order() {
    // A deterministic LCG scatters 2000 deadlines over all levels; the
    // observed firing sequence must be globally sorted by deadline (ties
    // by insertion), with nothing lost and nothing early.
    let mut w = TimerWheel::new();
    let mut state: u64 = 0x2545_F491_4F6C_DD1D;
    let mut expected: Vec<(u64, usize)> = Vec::new();
    for i in 0..2000usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let deadline = state % (L2 * 2);
        w.insert(deadline, i);
        expected.push((deadline, i));
    }
    expected.sort();

    let mut observed: Vec<(u64, usize)> = Vec::new();
    let mut now = 0;
    while !w.is_empty() {
        now += 997; // advance in coarse, non-aligned steps
        for (_, idx) in w.advance_to(now) {
            let deadline = expected.iter().find(|&&(_, i)| i == idx).unwrap().0;
            assert!(deadline <= now, "entry {idx} fired before its deadline");
            observed.push((deadline, idx));
        }
    }
    assert_eq!(observed, expected, "global (deadline, insertion) order");
}

#[test]
fn next_deadline_survives_cancellations_under_load() {
    let mut w = TimerWheel::new();
    let keys: Vec<_> = (1..=100u64).map(|d| w.insert(d * 10, d)).collect();
    for k in keys.iter().take(99) {
        w.cancel(*k);
    }
    assert_eq!(w.next_deadline(), Some(1000), "heap skips cancelled keys");
    assert_eq!(w.len(), 1);
}

#[test]
fn reactor_timer_fires_within_one_tick_of_the_deadline() {
    // Coarse 20 ms ticks make the one-tick bound measurable on a busy
    // CI machine: a 30 ms request rounds up to the 40 ms tick boundary,
    // so the event must land in [30 ms, 40 ms + slop] and NEVER early.
    let tick = Duration::from_millis(20);
    let requested = Duration::from_millis(30);
    let reactor = Reactor::with_tick(tick);
    let handle = reactor.set_timer(Token(9), requested);
    let started = Instant::now();
    let mut events = Vec::new();
    let n = reactor.poll(&mut events, Some(Duration::from_secs(5)));
    let elapsed = started.elapsed();
    assert_eq!(n, 1);
    assert_eq!(events[0].token, Token(9));
    assert!(events[0].readiness.contains(Readiness::TIMER));
    assert!(
        elapsed >= requested,
        "timer fired {elapsed:?} in, before the {requested:?} deadline"
    );
    assert!(
        elapsed <= requested + tick + Duration::from_millis(500),
        "timer fired {elapsed:?} in, more than one tick (+sched slop) late"
    );
    assert!(!reactor.cancel_timer(handle), "already fired");
}

#[test]
fn blocking_timeout_is_never_early() {
    // The blocking shim's NetError::Timeout rides the same absolute
    // deadline: it must not fire before the requested duration.
    let timeout = Duration::from_millis(40);
    let net = SimNet::with_faults(FaultConfig {
        block_timeout: timeout,
        ..Default::default()
    });
    let addr = NodeAddr::new([10, 0, 0, 1], 710);
    let listener = net.tcp_listen(addr).unwrap();
    let client = net.tcp_connect(addr).unwrap();
    let served = listener.accept().unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 8];
    assert_eq!(served.read(&mut buf), Err(NetError::Timeout(timeout)));
    assert!(started.elapsed() >= timeout, "timeout fired early");
    drop(client);
}

//! Blocking-shim vs raw-reactor differential conformance suite.
//!
//! The reactor refactor's contract is that the blocking API is a *pure
//! shim*: any scripted workload must deliver byte-identical data,
//! identical parsed taint spans, and identical `udp_dropped_*` counters
//! whether the receiver uses blocking `read`/`receive` calls or the
//! non-blocking `try_read`/`try_receive` + readiness-poll path. Each
//! test runs the same deterministic script through both receivers on
//! fresh, identically-seeded networks and compares everything observed.
//!
//! Taint spans use a test-local record framing — simnet itself is
//! taint-oblivious, so the "span" is whatever survives the byte
//! boundary: `[tag u8][len u16 be][gid u32 be][payload]`, the same
//! reduce-to-bytes discipline the DisTA boundary codec lives by.

use std::time::Duration;

use dista_simnet::{
    FaultConfig, NetError, NodeAddr, Reactor, Readiness, SimNet, TcpEndpoint, Token, UdpEndpoint,
};

fn tcp_addr() -> NodeAddr {
    NodeAddr::new([10, 0, 0, 2], 700)
}

fn udp_tx_addr() -> NodeAddr {
    NodeAddr::new([10, 0, 0, 1], 701)
}

fn udp_rx_addr() -> NodeAddr {
    NodeAddr::new([10, 0, 0, 2], 701)
}

/// One scripted payload: `gid == 0` means clean.
#[derive(Debug, Clone)]
struct Record {
    gid: u32,
    payload: Vec<u8>,
}

impl Record {
    fn tainted(gid: u32, payload: &[u8]) -> Self {
        assert_ne!(gid, 0);
        Record {
            gid,
            payload: payload.to_vec(),
        }
    }

    fn clean(payload: &[u8]) -> Self {
        Record {
            gid: 0,
            payload: payload.to_vec(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7 + self.payload.len());
        out.push(u8::from(self.gid != 0));
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.gid.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// A parsed `(gid, payload)` span.
type Span = (u32, Vec<u8>);

/// Parses complete records; returns the spans plus any trailing partial
/// record (non-empty after a mid-stream close).
fn parse_spans(bytes: &[u8]) -> (Vec<Span>, Vec<u8>) {
    let mut spans = Vec::new();
    let mut pos = 0;
    while bytes.len() - pos >= 7 {
        let len = u16::from_be_bytes([bytes[pos + 1], bytes[pos + 2]]) as usize;
        if bytes.len() - pos < 7 + len {
            break;
        }
        let gid = u32::from_be_bytes(bytes[pos + 3..pos + 7].try_into().unwrap());
        let tag = bytes[pos];
        assert_eq!(tag, u8::from(gid != 0), "tag byte consistent with gid");
        spans.push((gid, bytes[pos + 7..pos + 7 + len].to_vec()));
        pos += 7 + len;
    }
    (spans, bytes[pos..].to_vec())
}

/// What a script's sender does, in order.
#[derive(Debug, Clone)]
enum Op {
    Tcp(Record),
    /// Write only the first `n` bytes of the record, then nothing more
    /// (used right before the close for mid-stream truncation).
    TcpPartial(Record, usize),
    Udp(Record),
}

/// Everything a receiver observes — the cross-mode equality witness.
#[derive(Debug, PartialEq, Eq)]
struct Delivered {
    tcp_bytes: Vec<u8>,
    tcp_spans: Vec<Span>,
    tcp_remainder: Vec<u8>,
    datagrams: Vec<Vec<u8>>,
    udp_dropped: u64,
    udp_dropped_bytes: u64,
}

/// Stands up a fresh net, runs the sender script to completion (all
/// sends are synchronous buffer fills), closes the TCP side, and hands
/// the pre-filled receiver endpoints to `recv`.
fn run_script<F>(script: &[Op], cfg: FaultConfig, recv: F) -> Delivered
where
    F: FnOnce(TcpEndpoint, UdpEndpoint) -> (Vec<u8>, Vec<Vec<u8>>),
{
    let net = SimNet::with_faults(cfg);
    let listener = net.tcp_listen(tcp_addr()).unwrap();
    let client = net.tcp_connect_from([10, 0, 0, 1], tcp_addr()).unwrap();
    let served = listener.accept().unwrap();
    let udp_tx = net.udp_bind(udp_tx_addr()).unwrap();
    let udp_rx = net.udp_bind(udp_rx_addr()).unwrap();

    for op in script {
        match op {
            Op::Tcp(r) => client.write(&r.encode()).unwrap(),
            Op::TcpPartial(r, n) => client.write(&r.encode()[..*n]).unwrap(),
            Op::Udp(r) => udp_tx.send_to(udp_rx_addr(), &r.encode()),
        }
    }
    client.close();

    let (tcp_bytes, datagrams) = recv(served, udp_rx);
    let snap = net.metrics().snapshot();
    let (tcp_spans, tcp_remainder) = parse_spans(&tcp_bytes);
    Delivered {
        tcp_bytes,
        tcp_spans,
        tcp_remainder,
        datagrams,
        udp_dropped: snap.udp_dropped,
        udp_dropped_bytes: snap.udp_dropped_bytes,
    }
}

/// Blocking receiver: `read` until EOF, `receive` until the (pre-filled)
/// mailbox runs dry.
fn blocking_receiver(conn: TcpEndpoint, udp: UdpEndpoint) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut tcp_bytes = Vec::new();
    let mut buf = [0u8; 11]; // deliberately odd-sized
    loop {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => tcp_bytes.extend_from_slice(&buf[..n]),
            Err(e) => panic!("blocking read failed: {e}"),
        }
    }
    let mut datagrams = Vec::new();
    let mut dbuf = [0u8; 256];
    loop {
        match udp.receive(&mut dbuf) {
            Ok((n, _)) => datagrams.push(dbuf[..n].to_vec()),
            Err(NetError::Timeout(_)) | Err(NetError::Closed) => break,
            Err(e) => panic!("blocking receive failed: {e}"),
        }
    }
    (tcp_bytes, datagrams)
}

/// Reactor receiver: token-registered endpoints, drain-until-WouldBlock
/// on every readiness event, stop once TCP hit EOF and UDP ran dry.
fn reactor_receiver(conn: TcpEndpoint, udp: UdpEndpoint) -> (Vec<u8>, Vec<Vec<u8>>) {
    const TCP: Token = Token(1);
    const UDP: Token = Token(2);
    let reactor = Reactor::new();
    conn.register_readable(&reactor, TCP);
    udp.register_readable(&reactor, UDP);
    let mut tcp_bytes = Vec::new();
    let mut datagrams = Vec::new();
    let mut buf = [0u8; 11];
    let mut dbuf = [0u8; 256];
    let mut tcp_eof = false;
    let mut events = Vec::new();
    while !tcp_eof {
        reactor.poll(&mut events, Some(Duration::from_secs(5)));
        assert!(!events.is_empty(), "reactor starved before EOF");
        for ev in events.drain(..) {
            match ev.token {
                TCP => loop {
                    match conn.try_read(&mut buf) {
                        Ok(0) => {
                            tcp_eof = true;
                            break;
                        }
                        Ok(n) => tcp_bytes.extend_from_slice(&buf[..n]),
                        Err(NetError::WouldBlock) => break,
                        Err(e) => panic!("try_read failed: {e}"),
                    }
                },
                UDP => loop {
                    match udp.try_receive(&mut dbuf) {
                        Ok((n, _)) => datagrams.push(dbuf[..n].to_vec()),
                        Err(NetError::WouldBlock) | Err(NetError::Closed) => break,
                        Err(e) => panic!("try_receive failed: {e}"),
                    }
                },
                other => panic!("unexpected token {other:?}"),
            }
            assert!(
                ev.readiness.contains(Readiness::READABLE),
                "only readable events registered"
            );
        }
    }
    // Every datagram was queued before the TCP close the sender issued
    // last, so one final synchronous drain empties the mailbox.
    loop {
        match udp.try_receive(&mut dbuf) {
            Ok((n, _)) => datagrams.push(dbuf[..n].to_vec()),
            _ => break,
        }
    }
    (tcp_bytes, datagrams)
}

/// Runs one script through both receivers on identically-configured
/// fresh nets and asserts the full observation witness matches.
fn assert_conformance(script: &[Op], cfg: FaultConfig) -> Delivered {
    let blocking = run_script(script, cfg, blocking_receiver);
    let reactor = run_script(script, cfg, reactor_receiver);
    assert_eq!(
        blocking, reactor,
        "blocking shim and reactor API diverged on the same script"
    );
    blocking
}

/// Short block timeout so the blocking UDP drain terminates; all data is
/// pre-buffered, so no read ever actually waits on it.
fn cfg_base() -> FaultConfig {
    FaultConfig {
        block_timeout: Duration::from_millis(20),
        ..Default::default()
    }
}

#[test]
fn mixed_tcp_udp_tainted_and_clean() {
    let script = vec![
        Op::Tcp(Record::tainted(7, b"secret-config")),
        Op::Udp(Record::clean(b"heartbeat")),
        Op::Tcp(Record::clean(b"plain body bytes")),
        Op::Udp(Record::tainted(9, b"tainted datagram")),
        Op::Tcp(Record::tainted(7, b"more of gid 7")),
        Op::Udp(Record::clean(b"")),
        Op::Tcp(Record::clean(b"")),
    ];
    let got = assert_conformance(&script, cfg_base());
    assert_eq!(got.tcp_spans.len(), 4);
    assert_eq!(got.tcp_spans[0], (7, b"secret-config".to_vec()));
    assert_eq!(got.tcp_spans[1], (0, b"plain body bytes".to_vec()));
    assert!(got.tcp_remainder.is_empty());
    assert_eq!(got.datagrams.len(), 3);
    assert_eq!(got.udp_dropped, 0);
}

#[test]
fn fragmented_frames_reassemble_identically() {
    // max_read_chunk 3 forces every record across many partial reads in
    // both modes; spans must still parse identically.
    let cfg = FaultConfig {
        max_read_chunk: 3,
        ..cfg_base()
    };
    let long = vec![0xA5u8; 200];
    let script = vec![
        Op::Tcp(Record::tainted(42, &long)),
        Op::Tcp(Record::clean(b"x")),
        Op::Tcp(Record::tainted(43, b"abcdefghij")),
    ];
    let got = assert_conformance(&script, cfg);
    assert_eq!(got.tcp_spans.len(), 3);
    assert_eq!(got.tcp_spans[0].1.len(), 200);
    assert!(got.tcp_remainder.is_empty());
}

#[test]
fn mid_stream_close_truncates_identically() {
    // The last record is cut 5 bytes in (mid-header+gid); both modes
    // must deliver exactly those 5 bytes and then a clean EOF.
    let script = vec![
        Op::Tcp(Record::tainted(3, b"whole record")),
        Op::TcpPartial(Record::tainted(4, b"never finishes"), 5),
    ];
    let got = assert_conformance(&script, cfg_base());
    assert_eq!(got.tcp_spans.len(), 1);
    assert_eq!(got.tcp_remainder.len(), 5, "truncated tail delivered as-is");
}

#[test]
fn seeded_udp_drops_are_mode_independent() {
    // Half the datagrams drop under a seeded RNG; which ones drop (and
    // therefore the drop counters AND the surviving sequence) must not
    // depend on how the receiver reads.
    let cfg = FaultConfig {
        udp_drop_probability: 0.5,
        seed: 1337,
        ..cfg_base()
    };
    let mut script = Vec::new();
    for i in 0..40u32 {
        script.push(Op::Udp(Record::tainted(
            100 + i,
            format!("dg-{i}").as_bytes(),
        )));
    }
    script.push(Op::Tcp(Record::clean(b"fin")));
    let got = assert_conformance(&script, cfg);
    assert!(got.udp_dropped > 0, "seed 1337 must drop something");
    assert!(
        (got.datagrams.len() as u64) + got.udp_dropped == 40,
        "survivors + drops account for every send"
    );
    assert!(got.udp_dropped_bytes > 0);
}

#[test]
fn tiny_payload_storm_conforms() {
    // Many 1-byte records stress event coalescing: a single readiness
    // event may cover dozens of records, and drain-until-WouldBlock must
    // still recover every span.
    let mut script = Vec::new();
    for i in 0..300u32 {
        let b = [i as u8];
        script.push(Op::Tcp(if i % 3 == 0 {
            Record::tainted(i + 1, &b)
        } else {
            Record::clean(&b)
        }));
    }
    let got = assert_conformance(&script, cfg_base());
    assert_eq!(got.tcp_spans.len(), 300);
    assert!(got.tcp_remainder.is_empty());
}

//! Node addresses on the simulated network.

use std::fmt;
use std::str::FromStr;

/// An IPv4-style address + port identifying one endpoint on the
/// simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr {
    ip: [u8; 4],
    port: u16,
}

impl NodeAddr {
    /// Creates an address.
    pub fn new(ip: [u8; 4], port: u16) -> Self {
        NodeAddr { ip, port }
    }

    /// The IP component.
    pub fn ip(&self) -> [u8; 4] {
        self.ip
    }

    /// The port component.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Same IP, different port.
    pub fn with_port(self, port: u16) -> Self {
        NodeAddr { ip: self.ip, port }
    }
}

impl Default for NodeAddr {
    fn default() -> Self {
        NodeAddr::new([127, 0, 0, 1], 0)
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{}",
            self.ip[0], self.ip[1], self.ip[2], self.ip[3], self.port
        )
    }
}

/// Error from [`NodeAddr::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError;

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid node address syntax (expected a.b.c.d:port)")
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for NodeAddr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (host, port) = s.rsplit_once(':').ok_or(ParseAddrError)?;
        let port: u16 = port.parse().map_err(|_| ParseAddrError)?;
        let mut ip = [0u8; 4];
        let mut parts = host.split('.');
        for slot in &mut ip {
            *slot = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or(ParseAddrError)?;
        }
        if parts.next().is_some() {
            return Err(ParseAddrError);
        }
        Ok(NodeAddr::new(ip, port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = NodeAddr::new([10, 1, 2, 3], 8080);
        assert_eq!(a.to_string(), "10.1.2.3:8080");
        assert_eq!("10.1.2.3:8080".parse::<NodeAddr>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("nope".parse::<NodeAddr>().is_err());
        assert!("1.2.3:80".parse::<NodeAddr>().is_err());
        assert!("1.2.3.4.5:80".parse::<NodeAddr>().is_err());
        assert!("1.2.3.4:notaport".parse::<NodeAddr>().is_err());
    }

    #[test]
    fn with_port_changes_only_port() {
        let a = NodeAddr::new([1, 2, 3, 4], 1);
        let b = a.with_port(99);
        assert_eq!(b.ip(), [1, 2, 3, 4]);
        assert_eq!(b.port(), 99);
    }
}

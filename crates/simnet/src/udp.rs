//! UDP-like datagram mailboxes.
//!
//! Datagrams preserve message boundaries and are **truncated** when the
//! receiver's buffer is smaller than the datagram — the exact behaviour
//! that forces DisTA's packet-oriented instrumentation to enlarge receive
//! buffers (paper §III-C Type 2, §III-D-2). Fault injection can also drop
//! datagrams with a seeded probability.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::addr::NodeAddr;
use crate::error::NetError;
use crate::fault::spin_ns;
use crate::metrics::NetMetrics;
use crate::net::FaultsShared;
use crate::reactor::{Reactor, Readiness, SyncWaiter, Token, WakeList};

#[derive(Debug, Default)]
pub(crate) struct Mailbox {
    state: Mutex<MailboxState>,
    wakers: WakeList,
}

#[derive(Debug, Default)]
struct MailboxState {
    queue: VecDeque<(NodeAddr, Vec<u8>)>,
    closed: bool,
}

impl Mailbox {
    pub(crate) fn deliver(&self, from: NodeAddr, datagram: Vec<u8>) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        st.queue.push_back((from, datagram));
        drop(st);
        self.wakers.notify(Readiness::READABLE);
    }

    /// Non-blocking receive; [`NetError::WouldBlock`] when the queue is
    /// empty but the socket is still open.
    fn try_receive(&self, out: &mut [u8]) -> Result<(usize, NodeAddr), NetError> {
        let mut st = self.state.lock();
        let Some((from, datagram)) = st.queue.pop_front() else {
            if st.closed {
                return Err(NetError::Closed);
            }
            return Err(NetError::WouldBlock);
        };
        let n = out.len().min(datagram.len()); // truncation: excess is lost
        out[..n].copy_from_slice(&datagram[..n]);
        Ok((n, from))
    }

    /// Blocking shim over [`Mailbox::try_receive`]: a deadline-absolute
    /// wait on the same wake list the reactor uses.
    fn receive(&self, out: &mut [u8], timeout: Duration) -> Result<(usize, NodeAddr), NetError> {
        match self.try_receive(out) {
            Err(NetError::WouldBlock) => {}
            other => return other,
        }
        let deadline = Instant::now() + timeout;
        let waiter = Arc::new(SyncWaiter::default());
        let id = self.wakers.register(waiter.clone());
        let result = loop {
            match self.try_receive(out) {
                Err(NetError::WouldBlock) => {}
                other => break other,
            }
            if !waiter.wait_until(deadline) {
                break Err(NetError::Timeout(timeout));
            }
        };
        self.wakers.deregister(id);
        result
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.wakers.notify(Readiness::READABLE | Readiness::CLOSED);
    }

    fn readiness(&self) -> Readiness {
        let st = self.state.lock();
        let mut r = Readiness::EMPTY;
        if !st.queue.is_empty() {
            r = r | Readiness::READABLE;
        }
        if st.closed {
            r = r | Readiness::READABLE | Readiness::CLOSED;
        }
        r
    }

    fn wakers(&self) -> &WakeList {
        &self.wakers
    }
}

/// A bound UDP-like socket.
#[derive(Debug, Clone)]
pub struct UdpEndpoint {
    inner: Arc<UdpInner>,
}

#[derive(Debug)]
struct UdpInner {
    addr: NodeAddr,
    mailbox: Arc<Mailbox>,
    net: crate::net::SimNet,
    metrics: NetMetrics,
    faults: FaultsShared,
}

impl UdpEndpoint {
    pub(crate) fn new(
        addr: NodeAddr,
        mailbox: Arc<Mailbox>,
        net: crate::net::SimNet,
        metrics: NetMetrics,
        faults: FaultsShared,
    ) -> Self {
        UdpEndpoint {
            inner: Arc::new(UdpInner {
                addr,
                mailbox,
                net,
                metrics,
                faults,
            }),
        }
    }

    /// The bound address.
    pub fn local_addr(&self) -> NodeAddr {
        self.inner.addr
    }

    /// Sends one datagram to `dest`. Silently dropped (like real UDP) if
    /// nothing is bound there, fault injection discards it, or an
    /// injected partition cuts the link.
    pub fn send_to(&self, dest: NodeAddr, datagram: &[u8]) {
        let engine = self.inner.faults.engine();
        engine.advance();
        if engine.blocked(self.inner.addr.ip(), dest.ip()) {
            self.inner.metrics.record_udp_drop(datagram.len());
            return;
        }
        if self.inner.faults.should_drop_udp() {
            self.inner.metrics.record_udp_drop(datagram.len());
            return;
        }
        spin_ns(engine.latency_ns(self.inner.addr.ip(), dest.ip()));
        self.inner.faults.charge_wire_time(datagram.len());
        if self
            .inner
            .net
            .deliver_datagram(self.inner.addr, dest, datagram)
        {
            self.inner.metrics.record_udp_datagram(datagram.len());
        }
    }

    /// Blocks for the next datagram; copies at most `buf.len()` bytes
    /// (the rest of the datagram is **discarded** — UDP truncation).
    ///
    /// Returns `(bytes_copied, sender)`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if no datagram arrives within the
    /// configured block timeout, [`NetError::Closed`] if the socket was
    /// closed.
    pub fn receive(&self, buf: &mut [u8]) -> Result<(usize, NodeAddr), NetError> {
        self.inner
            .mailbox
            .receive(buf, self.inner.faults.block_timeout())
    }

    /// Non-blocking receive; same truncation semantics as
    /// [`UdpEndpoint::receive`].
    ///
    /// # Errors
    ///
    /// [`NetError::WouldBlock`] if no datagram is queued (register with
    /// a [`Reactor`] to learn when to retry), [`NetError::Closed`] if
    /// the socket was closed.
    pub fn try_receive(&self, buf: &mut [u8]) -> Result<(usize, NodeAddr), NetError> {
        self.inner.mailbox.try_receive(buf)
    }

    /// Registers this socket with a reactor: `token` becomes readable
    /// whenever a datagram is queued. If one is already waiting the
    /// token is queued immediately.
    pub fn register_readable(&self, reactor: &Reactor, token: Token) {
        reactor.attach(
            self.inner.mailbox.wakers(),
            self.inner.mailbox.readiness(),
            token,
        );
    }

    /// Closes the socket and unbinds the address.
    pub fn close(&self) {
        self.inner.mailbox.close();
        self.inner.net.unbind_udp(self.inner.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FaultConfig, SimNet};

    fn two() -> (UdpEndpoint, UdpEndpoint) {
        let net = SimNet::new();
        let a = net.udp_bind(NodeAddr::new([10, 0, 0, 1], 53)).unwrap();
        let b = net.udp_bind(NodeAddr::new([10, 0, 0, 2], 53)).unwrap();
        (a, b)
    }

    #[test]
    fn datagram_roundtrip() {
        let (a, b) = two();
        a.send_to(b.local_addr(), b"hello");
        let mut buf = [0u8; 16];
        let (n, from) = b.receive(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        assert_eq!(from, a.local_addr());
    }

    #[test]
    fn message_boundaries_preserved() {
        let (a, b) = two();
        a.send_to(b.local_addr(), b"one");
        a.send_to(b.local_addr(), b"twotwo");
        let mut buf = [0u8; 16];
        let (n, _) = b.receive(&mut buf).unwrap();
        assert_eq!(n, 3);
        let (n, _) = b.receive(&mut buf).unwrap();
        assert_eq!(n, 6);
    }

    #[test]
    fn truncation_discards_excess() {
        let (a, b) = two();
        a.send_to(b.local_addr(), b"0123456789");
        let mut small = [0u8; 4];
        let (n, _) = b.receive(&mut small).unwrap();
        assert_eq!(n, 4);
        assert_eq!(&small, b"0123");
        // The truncated tail is gone; next receive would block.
        a.send_to(b.local_addr(), b"next");
        let (n, _) = b.receive(&mut small).unwrap();
        assert_eq!(&small[..n], b"next");
    }

    #[test]
    fn send_to_unbound_is_silent() {
        let (a, _) = two();
        a.send_to(NodeAddr::new([9, 9, 9, 9], 1), b"void"); // must not panic
    }

    #[test]
    fn drop_faults_lose_datagrams() {
        let net = SimNet::new();
        net.set_faults(FaultConfig {
            udp_drop_probability: 1.0,
            ..Default::default()
        });
        let a = net.udp_bind(NodeAddr::new([10, 0, 0, 1], 1)).unwrap();
        let b = net.udp_bind(NodeAddr::new([10, 0, 0, 2], 1)).unwrap();
        a.send_to(b.local_addr(), b"lost");
        let snap = net.metrics().snapshot();
        assert_eq!(snap.udp_dropped, 1);
        assert_eq!(snap.udp_dropped_bytes, 4, "dropped bytes stay accounted");
        assert_eq!(snap.udp_datagrams, 0);
        assert_eq!(snap.delivered_bytes(), 0);
        assert_eq!(snap.total_bytes(), 4);
    }

    #[test]
    fn partition_drops_datagrams_until_heal() {
        let net = SimNet::new();
        let a = net.udp_bind(NodeAddr::new([10, 0, 0, 1], 2)).unwrap();
        let b = net.udp_bind(NodeAddr::new([10, 0, 0, 2], 2)).unwrap();
        net.partition([10, 0, 0, 1], [10, 0, 0, 2]);
        a.send_to(b.local_addr(), b"lost");
        assert_eq!(net.metrics().snapshot().udp_dropped, 1);
        net.heal([10, 0, 0, 1], [10, 0, 0, 2]);
        a.send_to(b.local_addr(), b"through");
        let mut buf = [0u8; 16];
        let (n, _) = b.receive(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"through");
    }

    #[test]
    fn try_receive_would_block_until_delivery() {
        let (a, b) = two();
        let mut buf = [0u8; 8];
        assert_eq!(b.try_receive(&mut buf), Err(NetError::WouldBlock));
        a.send_to(b.local_addr(), b"dgram");
        let (n, from) = b.try_receive(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"dgram");
        assert_eq!(from, a.local_addr());
        b.close();
        assert_eq!(b.try_receive(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn close_unbinds() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 7);
        let a = net.udp_bind(addr).unwrap();
        a.close();
        assert!(net.udp_bind(addr).is_ok(), "address reusable after close");
    }
}

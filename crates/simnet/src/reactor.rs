//! Event-driven reactor: readiness queues over the in-memory channels.
//!
//! The blocking SimNet API parks one OS thread per pending operation —
//! fine for protocol tests, a hard cap on how many "users" a cluster run
//! can represent. The reactor inverts it: sources ([`crate::TcpEndpoint`],
//! [`crate::TcpListener`], [`crate::UdpEndpoint`]) register a [`Token`]
//! for readiness interest, writes/deliveries/closes push that token onto
//! the reactor's ready queue, and **one** poller thread drains
//! [`Reactor::poll`] and drives `try_read` / `try_accept` /
//! `try_receive` across any number of connections. Deadlines multiplex
//! through a hashed [`TimerWheel`](crate::TimerWheel) instead of
//! per-connection `BLOCK_TIMEOUT` parking.
//!
//! Readiness is edge-ish: a token is queued when a source *becomes*
//! ready (new bytes, new connection, close) and at registration time if
//! it is already ready, and queued notifications are coalesced per
//! token. A poller must therefore drain a ready source until it returns
//! [`NetError::WouldBlock`](crate::NetError::WouldBlock) before polling
//! again — the conformance suite
//! (`crates/simnet/tests/reactor_conformance.rs`) pins that this
//! discipline delivers byte-for-byte exactly what the blocking API
//! delivers.
//!
//! The blocking API itself is a thin shim over the same machinery: a
//! blocking read registers a one-shot synchronous waiter in the very
//! wake list the reactor uses, and waits **deadline-absolute** — a
//! spurious wakeup re-arms only the remaining time, never the full
//! timeout.

use std::collections::HashMap;
use std::ops::BitOr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::timer::{TimerKey, TimerWheel};

/// Caller-chosen identity of one registered event source (or timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// A set of readiness conditions, combinable with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Readiness(u8);

impl Readiness {
    /// No readiness.
    pub const EMPTY: Readiness = Readiness(0);
    /// Bytes / a datagram / a pending connection can be taken without
    /// blocking.
    pub const READABLE: Readiness = Readiness(1);
    /// The source reached EOF or was closed.
    pub const CLOSED: Readiness = Readiness(2);
    /// A deadline armed with [`Reactor::set_timer`] expired.
    pub const TIMER: Readiness = Readiness(4);

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: Readiness) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the readable bit is set.
    pub fn is_readable(self) -> bool {
        self.contains(Readiness::READABLE)
    }

    /// Whether the closed bit is set.
    pub fn is_closed(self) -> bool {
        self.contains(Readiness::CLOSED)
    }

    /// Whether the timer bit is set.
    pub fn is_timer(self) -> bool {
        self.contains(Readiness::TIMER)
    }

    /// Whether no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Readiness {
    type Output = Readiness;
    fn bitor(self, rhs: Readiness) -> Readiness {
        Readiness(self.0 | rhs.0)
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The registered token (or the token a timer was armed under).
    pub token: Token,
    /// The coalesced readiness since the last poll.
    pub readiness: Readiness,
}

/// Cancellation handle for a deadline armed with [`Reactor::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle(TimerKey);

/// Readiness sink installed into a source's wake list.
///
/// `wake` returns `false` when the sink is defunct (deregistered or its
/// reactor dropped); the wake list prunes such entries.
pub(crate) trait Wake: Send + Sync {
    fn wake(&self, readiness: Readiness) -> bool;
}

/// The list of readiness sinks attached to one source (pipe, mailbox,
/// accept queue). Sources call [`WakeList::notify`] whenever they
/// *become* ready; both reactor registrations and blocking-shim waiters
/// live here, so the two APIs observe identical wakeups.
#[derive(Default)]
pub(crate) struct WakeList {
    entries: Mutex<Vec<(u64, Arc<dyn Wake>)>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for WakeList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeList")
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

impl WakeList {
    pub(crate) fn register(&self, waker: Arc<dyn Wake>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().push((id, waker));
        id
    }

    pub(crate) fn deregister(&self, id: u64) {
        self.entries.lock().retain(|(eid, _)| *eid != id);
    }

    pub(crate) fn notify(&self, readiness: Readiness) {
        self.entries.lock().retain(|(_, w)| w.wake(readiness));
    }
}

/// A one-shot synchronous waiter: the blocking shim's bridge onto the
/// wake lists. Parks deadline-absolute.
#[derive(Default)]
pub(crate) struct SyncWaiter {
    state: Mutex<Readiness>,
    cv: Condvar,
}

impl Wake for SyncWaiter {
    fn wake(&self, readiness: Readiness) -> bool {
        let mut st = self.state.lock();
        *st = *st | readiness;
        self.cv.notify_all();
        true
    }
}

impl SyncWaiter {
    /// Waits until woken or `deadline`; returns `false` on timeout.
    /// Consumes any accumulated readiness so the caller re-checks the
    /// source (another waiter may have taken the data).
    pub(crate) fn wait_until(&self, deadline: Instant) -> bool {
        let mut st = self.state.lock();
        loop {
            if !st.is_empty() {
                *st = Readiness::EMPTY;
                return true;
            }
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                return false;
            }
        }
    }
}

/// A registered source's shared deactivation flag; its waker stops
/// delivering once cleared.
#[derive(Debug, Default)]
struct RegistrationState {
    active: AtomicBool,
}

struct ReactorWaker {
    inner: Weak<ReactorInner>,
    token: Token,
    reg: Arc<RegistrationState>,
}

impl Wake for ReactorWaker {
    fn wake(&self, readiness: Readiness) -> bool {
        if !self.reg.active.load(Ordering::Acquire) {
            return false;
        }
        match self.inner.upgrade() {
            Some(inner) => {
                inner.push_ready(self.token, readiness);
                true
            }
            None => false,
        }
    }
}

#[derive(Default)]
struct ReadyState {
    /// Tokens in arrival order; readiness coalesced in `pending`.
    order: Vec<Token>,
    pending: HashMap<Token, Readiness>,
    /// Set (under this mutex) when a timer was armed, so a parked
    /// poller re-computes its wait bound.
    timers_dirty: bool,
}

struct ReactorInner {
    ready: Mutex<ReadyState>,
    cv: Condvar,
    registrations: Mutex<HashMap<Token, Arc<RegistrationState>>>,
    timers: Mutex<TimerWheel<Token>>,
    base: Instant,
    tick: Duration,
}

impl ReactorInner {
    fn push_ready(&self, token: Token, readiness: Readiness) {
        let mut rd = self.ready.lock();
        match rd.pending.get_mut(&token) {
            Some(r) => *r = *r | readiness,
            None => {
                rd.pending.insert(token, readiness);
                rd.order.push(token);
            }
        }
        self.cv.notify_all();
    }

    /// Wall time → wheel ticks (saturating, rounding down).
    fn ticks_at(&self, now: Instant) -> u64 {
        let elapsed = now.saturating_duration_since(self.base);
        (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Wheel tick → wall time.
    fn instant_of(&self, tick: u64) -> Instant {
        self.base + Duration::from_nanos((self.tick.as_nanos() as u64).saturating_mul(tick))
    }
}

/// The readiness poller. Clones share one reactor.
///
/// See the module docs for the polling discipline; `bench`'s
/// `cluster_load` bin is the scale consumer, the conformance suite the
/// semantics pin.
#[derive(Clone)]
pub struct Reactor {
    inner: Arc<ReactorInner>,
}

impl Default for Reactor {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("registrations", &self.inner.registrations.lock().len())
            .field("pending_timers", &self.inner.timers.lock().len())
            .finish()
    }
}

impl Reactor {
    /// A reactor with the default 1 ms timer-wheel tick.
    pub fn new() -> Self {
        Self::with_tick(Duration::from_millis(1))
    }

    /// A reactor whose timer wheel advances once per `tick`.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn with_tick(tick: Duration) -> Self {
        assert!(!tick.is_zero(), "reactor tick must be non-zero");
        Reactor {
            inner: Arc::new(ReactorInner {
                ready: Mutex::new(ReadyState::default()),
                cv: Condvar::new(),
                registrations: Mutex::new(HashMap::new()),
                timers: Mutex::new(TimerWheel::new()),
                base: Instant::now(),
                tick,
            }),
        }
    }

    /// Installs a waker for `token` into a source's wake list and
    /// queues `current` immediately if the source is already ready
    /// (otherwise the edge that happened before registration would be
    /// lost). Re-registering a token replaces the previous
    /// registration.
    pub(crate) fn attach(&self, list: &WakeList, current: Readiness, token: Token) {
        self.deregister(token);
        let reg = Arc::new(RegistrationState {
            active: AtomicBool::new(true),
        });
        self.inner.registrations.lock().insert(token, reg.clone());
        let waker = Arc::new(ReactorWaker {
            inner: Arc::downgrade(&self.inner),
            token,
            reg,
        });
        list.register(waker.clone());
        if !current.is_empty() {
            waker.wake(current);
        }
    }

    /// Stops delivery for `token` and drops its queued (non-timer)
    /// readiness. Armed timers under the token keep firing until
    /// cancelled.
    pub fn deregister(&self, token: Token) {
        if let Some(reg) = self.inner.registrations.lock().remove(&token) {
            reg.active.store(false, Ordering::Release);
        }
        let mut rd = self.inner.ready.lock();
        if let Some(r) = rd.pending.get_mut(&token) {
            if r.is_timer() {
                *r = Readiness::TIMER;
            } else {
                rd.pending.remove(&token);
                rd.order.retain(|t| *t != token);
            }
        }
    }

    /// Arms a one-shot deadline `after` from now, delivered as a
    /// [`Readiness::TIMER`] event for `token`. Resolution is one wheel
    /// tick: the event fires on the first poll at-or-after the deadline
    /// tick (rounded up), never before.
    pub fn set_timer(&self, token: Token, after: Duration) -> TimerHandle {
        let now_ticks = self.inner.ticks_at(Instant::now());
        let after_ticks = after.as_nanos().div_ceil(self.inner.tick.as_nanos().max(1)) as u64;
        let key = self
            .inner
            .timers
            .lock()
            .insert(now_ticks + after_ticks, token);
        // A parked poller may be waiting past this new, earlier
        // deadline; flag it under the ready mutex so it re-computes.
        let mut rd = self.inner.ready.lock();
        rd.timers_dirty = true;
        self.inner.cv.notify_all();
        drop(rd);
        TimerHandle(key)
    }

    /// Cancels a pending deadline; returns `true` if it had not fired.
    pub fn cancel_timer(&self, handle: TimerHandle) -> bool {
        self.inner.timers.lock().cancel(handle.0)
    }

    /// Number of pending (armed, unfired) deadlines.
    pub fn pending_timers(&self) -> usize {
        self.inner.timers.lock().len()
    }

    /// Waits for readiness and appends events to `events` (cleared
    /// first). Returns the number of events delivered.
    ///
    /// `timeout` bounds the wait: `Some(Duration::ZERO)` is a
    /// non-blocking sweep, `None` waits until something happens. Expired
    /// timers surface as [`Readiness::TIMER`] events; I/O readiness for
    /// the same token within one poll is coalesced into one event.
    pub fn poll(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> usize {
        events.clear();
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            // Fire timers that came due.
            let now_ticks = self.inner.ticks_at(Instant::now());
            let fired = self.inner.timers.lock().advance_to(now_ticks);
            for (_, token) in fired {
                self.inner.push_ready(token, Readiness::TIMER);
            }

            let mut rd = self.inner.ready.lock();
            if !rd.order.is_empty() {
                let order = std::mem::take(&mut rd.order);
                for token in order {
                    if let Some(readiness) = rd.pending.remove(&token) {
                        events.push(Event { token, readiness });
                    }
                }
                return events.len();
            }

            // Nothing ready: park until the earliest of the caller's
            // deadline and the next armed timer.
            rd.timers_dirty = false;
            let next_timer = self
                .inner
                .timers
                .lock()
                .next_deadline()
                .map(|tick| self.inner.instant_of(tick));
            let bound = match (deadline, next_timer) {
                (Some(d), Some(t)) => Some(d.min(t)),
                (Some(d), None) => Some(d),
                (None, Some(t)) => Some(t),
                (None, None) => None,
            };
            let timed_out = match bound {
                Some(b) => self.inner.cv.wait_until(&mut rd, b).timed_out(),
                None => {
                    self.inner.cv.wait(&mut rd);
                    false
                }
            };
            let _ = timed_out; // due timers / events re-checked by the loop
            let caller_expired = deadline.is_some_and(|d| Instant::now() >= d);
            if caller_expired && rd.order.is_empty() {
                // One last timer sweep below would race the deadline;
                // deliver what the loop head finds, or nothing.
                drop(rd);
                let now_ticks = self.inner.ticks_at(Instant::now());
                let fired = self.inner.timers.lock().advance_to(now_ticks);
                for (_, token) in fired {
                    self.inner.push_ready(token, Readiness::TIMER);
                }
                let mut rd = self.inner.ready.lock();
                let order = std::mem::take(&mut rd.order);
                for token in order {
                    if let Some(readiness) = rd.pending.remove(&token) {
                        events.push(Event { token, readiness });
                    }
                }
                return events.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeAddr;
    use crate::net::SimNet;

    #[test]
    fn readiness_bit_algebra() {
        let r = Readiness::READABLE | Readiness::CLOSED;
        assert!(r.is_readable());
        assert!(r.is_closed());
        assert!(!r.is_timer());
        assert!(r.contains(Readiness::READABLE));
        assert!(!Readiness::EMPTY.is_readable());
    }

    #[test]
    fn write_wakes_registered_endpoint() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 700);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        let reactor = Reactor::new();
        s.register_readable(&reactor, Token(7));

        let mut events = Vec::new();
        assert_eq!(reactor.poll(&mut events, Some(Duration::ZERO)), 0);
        c.write(b"ping").unwrap();
        assert_eq!(reactor.poll(&mut events, Some(Duration::from_secs(5))), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readiness.is_readable());
        let mut buf = [0u8; 8];
        assert_eq!(s.try_read(&mut buf).unwrap(), 4);
        assert_eq!(
            s.try_read(&mut buf),
            Err(crate::NetError::WouldBlock),
            "drained sources report WouldBlock"
        );
    }

    #[test]
    fn registration_catches_preexisting_data() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 701);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        c.write(b"early").unwrap();
        let reactor = Reactor::new();
        s.register_readable(&reactor, Token(1));
        let mut events = Vec::new();
        assert_eq!(reactor.poll(&mut events, Some(Duration::ZERO)), 1);
        assert!(events[0].readiness.is_readable());
    }

    #[test]
    fn close_delivers_closed_readiness() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 702);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        let reactor = Reactor::new();
        s.register_readable(&reactor, Token(2));
        let mut events = Vec::new();
        reactor.poll(&mut events, Some(Duration::ZERO));
        c.close();
        assert_eq!(reactor.poll(&mut events, Some(Duration::from_secs(5))), 1);
        assert!(events[0].readiness.is_closed());
        let mut buf = [0u8; 4];
        assert_eq!(s.try_read(&mut buf).unwrap(), 0, "EOF after close");
    }

    #[test]
    fn timer_fires_and_cancel_suppresses() {
        let reactor = Reactor::with_tick(Duration::from_millis(1));
        let _t = reactor.set_timer(Token(9), Duration::from_millis(5));
        let cancelled = reactor.set_timer(Token(10), Duration::from_millis(5));
        assert!(reactor.cancel_timer(cancelled));
        let mut events = Vec::new();
        let start = Instant::now();
        assert_eq!(reactor.poll(&mut events, Some(Duration::from_secs(5))), 1);
        assert_eq!(events[0].token, Token(9));
        assert!(events[0].readiness.is_timer());
        assert!(start.elapsed() >= Duration::from_millis(4));
        assert_eq!(reactor.pending_timers(), 0);
    }

    #[test]
    fn coalesced_events_merge_readiness() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 703);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        let reactor = Reactor::new();
        s.register_readable(&reactor, Token(3));
        c.write(b"x").unwrap();
        c.close();
        let mut events = Vec::new();
        assert_eq!(reactor.poll(&mut events, Some(Duration::from_secs(5))), 1);
        assert!(events[0].readiness.is_readable());
        assert!(events[0].readiness.is_closed());
    }

    #[test]
    fn deregister_drops_queued_events() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 704);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        let reactor = Reactor::new();
        s.register_readable(&reactor, Token(4));
        c.write(b"x").unwrap();
        reactor.deregister(Token(4));
        let mut events = Vec::new();
        assert_eq!(reactor.poll(&mut events, Some(Duration::ZERO)), 0);
        c.write(b"y").unwrap();
        assert_eq!(
            reactor.poll(&mut events, Some(Duration::ZERO)),
            0,
            "deregistered tokens stay silent"
        );
    }

    #[test]
    fn poll_timeout_returns_zero() {
        let reactor = Reactor::new();
        let mut events = Vec::new();
        let start = Instant::now();
        assert_eq!(
            reactor.poll(&mut events, Some(Duration::from_millis(20))),
            0
        );
        assert!(start.elapsed() >= Duration::from_millis(19));
    }
}

//! Hashed hierarchical timer wheel.
//!
//! The wheel multiplexes every pending deadline of a [`crate::Reactor`]
//! into one structure: four levels of 64 slots each, where level `l`
//! spans `64^(l+1)` ticks. Inserting, cancelling and firing are all O(1)
//! amortized — the cost that matters when a load harness keeps one
//! response deadline per connection across 100 000 connections, where a
//! per-connection parked thread (the old `BLOCK_TIMEOUT` model) would
//! need 100 000 stacks.
//!
//! The wheel is a pure data structure over **tick counts** — it never
//! reads a clock. Callers (the reactor, the unit tests) convert wall
//! time to ticks and drive [`TimerWheel::advance_to`]; determinism falls
//! out for free, which is what lets the timer tests assert exact firing
//! ticks and the chaos suite replay runs bit-identically.
//!
//! Expiry order is fully deterministic: entries fire sorted by
//! `(deadline, insertion sequence)`, and an entry scheduled for tick `T`
//! fires on the first `advance_to(now)` with `now >= T` — never earlier,
//! and never more than one whole tick late relative to the requested
//! deadline (the resolution guarantee pinned by
//! `tests/timer_wheel.rs`).

use std::collections::{BinaryHeap, HashSet};

/// Slots per wheel level (64 keeps slot indexing a shift+mask).
const SLOTS: usize = 64;
/// Bits of tick index consumed per level.
const LEVEL_BITS: u32 = 6;
/// Number of hierarchical levels; spans `64^4 ≈ 16.7M` ticks.
const LEVELS: usize = 4;

/// Cancellation/identity handle for one scheduled deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerKey(u64);

#[derive(Debug, Clone)]
struct Entry<T> {
    key: u64,
    deadline: u64,
    value: T,
}

/// A hashed, hierarchical timer wheel carrying one payload per deadline.
///
/// See the module docs for the determinism contract.
#[derive(Debug)]
pub struct TimerWheel<T> {
    now: u64,
    next_key: u64,
    /// `levels[l][slot]` holds entries whose deadline hashes there.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Entries past the highest level's span.
    overflow: Vec<Entry<T>>,
    /// Entries already due when inserted; fire on the next advance.
    due: Vec<Entry<T>>,
    /// Keys still pending (not fired, not cancelled).
    live: HashSet<u64>,
    /// Min-heap hint of `(deadline, key)` for [`TimerWheel::next_deadline`];
    /// stale entries (fired/cancelled keys) are skipped lazily.
    horizon: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            now: 0,
            next_key: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            due: Vec::new(),
            live: HashSet::new(),
            horizon: BinaryHeap::new(),
        }
    }

    /// Current wheel position in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending (unfired, uncancelled) deadlines.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no deadlines are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules `value` to fire at absolute tick `deadline` (clamped to
    /// the current tick if already past: it then fires on the next
    /// [`TimerWheel::advance_to`], even one that does not move time).
    pub fn insert(&mut self, deadline: u64, value: T) -> TimerKey {
        let key = self.next_key;
        self.next_key += 1;
        self.live.insert(key);
        self.horizon
            .push(std::cmp::Reverse((deadline.max(self.now), key)));
        let entry = Entry {
            key,
            deadline,
            value,
        };
        self.place(entry);
        TimerKey(key)
    }

    /// Cancels a pending deadline. Returns `true` if it was still
    /// pending (its payload will never fire), `false` if it already
    /// fired or was cancelled before.
    pub fn cancel(&mut self, key: TimerKey) -> bool {
        self.live.remove(&key.0)
    }

    /// Earliest pending deadline in ticks, if any (used by the reactor
    /// to bound its park time).
    pub fn next_deadline(&mut self) -> Option<u64> {
        while let Some(&std::cmp::Reverse((deadline, key))) = self.horizon.peek() {
            if self.live.contains(&key) {
                return Some(deadline);
            }
            self.horizon.pop();
        }
        None
    }

    /// Advances the wheel to absolute tick `target`, returning every
    /// payload whose deadline is now due, sorted by
    /// `(deadline, insertion order)`. Entries inserted at-or-before the
    /// current tick fire even when `target == now()`.
    pub fn advance_to(&mut self, target: u64) -> Vec<(TimerKey, T)> {
        let mut fired: Vec<Entry<T>> = Vec::new();
        fired.append(&mut self.due);
        while self.now < target {
            self.now += 1;
            let slot = (self.now & (SLOTS as u64 - 1)) as usize;
            fired.append(&mut self.levels[0][slot]);
            // When a level wraps to slot 0, cascade the next level's
            // current slot down (re-placing picks the right level).
            let mut level = 1;
            let mut shifted = self.now >> LEVEL_BITS;
            while level < LEVELS && (self.now & level_mask(level as u32)) == 0 {
                let upper_slot = (shifted & (SLOTS as u64 - 1)) as usize;
                let entries = std::mem::take(&mut self.levels[level][upper_slot]);
                for entry in entries {
                    if entry.deadline <= self.now {
                        fired.push(entry);
                    } else {
                        self.place(entry);
                    }
                }
                shifted >>= LEVEL_BITS;
                level += 1;
            }
            // Overflow entries re-enter the wheel once their deadline
            // falls inside the top level's span.
            if (self.now & level_mask(LEVELS as u32)) == 0 {
                let entries = std::mem::take(&mut self.overflow);
                for entry in entries {
                    self.place(entry);
                }
            }
        }
        fired.retain(|e| self.live.remove(&e.key));
        fired.sort_by_key(|e| (e.deadline, e.key));
        fired
            .into_iter()
            .map(|e| (TimerKey(e.key), e.value))
            .collect()
    }

    /// Files an entry into the level whose span covers its remaining
    /// time (or `due`/`overflow` at the extremes).
    fn place(&mut self, entry: Entry<T>) {
        let delta = entry.deadline.saturating_sub(self.now);
        if delta == 0 {
            self.due.push(entry);
            return;
        }
        for level in 0..LEVELS {
            if delta < span(level as u32 + 1) {
                let slot =
                    ((entry.deadline >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.levels[level][slot].push(entry);
                return;
            }
        }
        self.overflow.push(entry);
    }
}

/// Ticks spanned by `levels` wheel levels: `64^levels`.
fn span(levels: u32) -> u64 {
    1u64 << (LEVEL_BITS * levels)
}

/// Mask that is zero exactly when the given level wraps.
fn level_mask(level: u32) -> u64 {
    span(level) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_exact_tick() {
        let mut w = TimerWheel::new();
        w.insert(5, "a");
        assert!(w.advance_to(4).is_empty());
        let fired = w.advance_to(5);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "a");
        assert!(w.is_empty());
    }

    #[test]
    fn immediate_deadline_fires_without_time_moving() {
        let mut w = TimerWheel::new();
        w.advance_to(10);
        w.insert(3, "late");
        let fired = w.advance_to(10);
        assert_eq!(fired.len(), 1, "past deadline fires on next advance");
    }

    #[test]
    fn cascade_across_levels() {
        let mut w = TimerWheel::new();
        // Deadlines beyond level 0 (>=64), level 1 (>=4096), level 2.
        w.insert(70, 0u32);
        w.insert(5000, 1);
        w.insert(300_000, 2);
        assert_eq!(w.advance_to(69).len(), 0);
        assert_eq!(w.advance_to(70), vec![(TimerKey(0), 0)]);
        assert_eq!(w.advance_to(4999).len(), 0);
        assert_eq!(w.advance_to(5000), vec![(TimerKey(1), 1)]);
        assert_eq!(w.advance_to(299_999).len(), 0);
        assert_eq!(w.advance_to(300_000), vec![(TimerKey(2), 2)]);
    }

    #[test]
    fn cancel_suppresses_fire() {
        let mut w = TimerWheel::new();
        let k = w.insert(10, "x");
        assert!(w.cancel(k));
        assert!(!w.cancel(k), "double cancel is false");
        assert!(w.advance_to(20).is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut w = TimerWheel::new();
        let k = w.insert(8, ());
        w.insert(20, ());
        assert_eq!(w.next_deadline(), Some(8));
        w.cancel(k);
        assert_eq!(w.next_deadline(), Some(20));
    }
}

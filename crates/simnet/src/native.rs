//! The "JNI surface" — taint-oblivious native I/O entry points.
//!
//! On a real JVM, every network-communication method in the JRE bottoms
//! out in a handful of JNI methods (`socketWrite0`, `socketRead0`, …)
//! whose C implementations call the OS. Phosphor's bytecode rewriting
//! cannot see inside them, so taints die there (paper §II-C). These free
//! functions are this reproduction's equivalent boundary: they move raw
//! bytes only, and their *names* mirror the JNI methods DisTA instruments
//! (Table I) so the wrapper layer in `dista-jre`/`dista-core` reads like
//! the paper.
//!
//! Nothing in this module knows the word "taint" — that is the point.

use crate::addr::NodeAddr;
use crate::error::NetError;
use crate::tcp::TcpEndpoint;
use crate::udp::UdpEndpoint;

/// `SocketOutputStream.socketWrite0` — Type 1 (stream-oriented) JNI write.
///
/// # Errors
///
/// Propagates [`NetError::Closed`] from the endpoint.
pub fn socket_write0(socket: &TcpEndpoint, buf: &[u8]) -> Result<(), NetError> {
    socket.write(buf)
}

/// `SocketInputStream.socketRead0` — Type 1 (stream-oriented) JNI read.
///
/// Blocks for ≥1 byte; returns 0 on EOF.
///
/// # Errors
///
/// Propagates endpoint errors such as [`NetError::Timeout`].
pub fn socket_read0(socket: &TcpEndpoint, buf: &mut [u8]) -> Result<usize, NetError> {
    socket.read(buf)
}

/// `PlainDatagramSocketImpl.send` — Type 2 (packet-oriented) JNI send.
pub fn datagram_send(socket: &UdpEndpoint, dest: NodeAddr, buf: &[u8]) {
    socket.send_to(dest, buf)
}

/// `PlainDatagramSocketImpl.receive0` — Type 2 (packet-oriented) JNI
/// receive. Copies at most `buf.len()` bytes (datagram truncation).
///
/// # Errors
///
/// Propagates endpoint errors.
pub fn datagram_receive0(
    socket: &UdpEndpoint,
    buf: &mut [u8],
) -> Result<(usize, NodeAddr), NetError> {
    socket.receive(buf)
}

/// `FileDispatcherImpl.write0` — Type 3 JNI write used by NIO/AIO socket
/// channels on Linux (`SocketDispatcher` extends `FileDispatcherImpl`).
///
/// # Errors
///
/// Propagates [`NetError::Closed`].
pub fn dispatcher_write0(socket: &TcpEndpoint, buf: &[u8]) -> Result<usize, NetError> {
    socket.write(buf)?;
    Ok(buf.len())
}

/// `FileDispatcherImpl.read0` — Type 3 JNI read used by NIO/AIO socket
/// channels.
///
/// # Errors
///
/// Propagates endpoint errors.
pub fn dispatcher_read0(socket: &TcpEndpoint, buf: &mut [u8]) -> Result<usize, NetError> {
    socket.read(buf)
}

/// `FileDispatcherImpl.writev0` — vectored variant of
/// [`dispatcher_write0`]; writes the buffers in order.
///
/// # Errors
///
/// Propagates [`NetError::Closed`].
pub fn dispatcher_writev0(socket: &TcpEndpoint, bufs: &[&[u8]]) -> Result<usize, NetError> {
    let mut total = 0;
    for buf in bufs {
        socket.write(buf)?;
        total += buf.len();
    }
    Ok(total)
}

/// `DatagramDispatcher.write0` — Type 3 JNI datagram-channel send.
pub fn datagram_dispatcher_write0(socket: &UdpEndpoint, dest: NodeAddr, buf: &[u8]) {
    socket.send_to(dest, buf)
}

/// `DatagramDispatcher.read0` — Type 3 JNI datagram-channel receive.
///
/// # Errors
///
/// Propagates endpoint errors.
pub fn datagram_dispatcher_read0(
    socket: &UdpEndpoint,
    buf: &mut [u8],
) -> Result<(usize, NodeAddr), NetError> {
    socket.receive(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::SimNet;

    #[test]
    fn stream_jni_roundtrip() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 1000);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        socket_write0(&c, b"vote").unwrap();
        let mut buf = [0u8; 8];
        let n = socket_read0(&s, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"vote");
    }

    #[test]
    fn packet_jni_roundtrip() {
        let net = SimNet::new();
        let a = net.udp_bind(NodeAddr::new([10, 0, 0, 1], 1)).unwrap();
        let b = net.udp_bind(NodeAddr::new([10, 0, 0, 2], 1)).unwrap();
        datagram_send(&a, b.local_addr(), b"dgram");
        let mut buf = [0u8; 8];
        let (n, from) = datagram_receive0(&b, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"dgram");
        assert_eq!(from, a.local_addr());
    }

    #[test]
    fn vectored_write_concatenates() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 1001);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        let n = dispatcher_writev0(&c, &[b"ab", b"cd", b"ef"]).unwrap();
        assert_eq!(n, 6);
        let mut buf = [0u8; 6];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }
}

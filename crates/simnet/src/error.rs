//! Error type for simulated network operations.

use std::fmt;
use std::time::Duration;

use crate::addr::NodeAddr;

/// Errors surfaced by the simulated OS network layer.
///
/// Also exported as [`crate::SimNetError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Bind target already has a listener/mailbox.
    AddrInUse(NodeAddr),
    /// No listener at the connect target.
    ConnectionRefused(NodeAddr),
    /// The peer closed the connection and all buffered data is consumed.
    Closed,
    /// A blocking operation exceeded the configured block timeout
    /// ([`crate::FaultConfig::block_timeout`]) — a protocol deadlock in
    /// the code under test, or an unhealed partition starving a reader.
    /// Carries the timeout that expired so tests can assert on it.
    Timeout(Duration),
    /// Operation on an address that is not bound.
    NotBound(NodeAddr),
    /// A non-blocking operation (`try_read`, `try_receive`,
    /// `try_accept`) found nothing to do; register the endpoint with a
    /// [`crate::Reactor`] to learn when to retry. Never surfaced by the
    /// blocking API.
    WouldBlock,
    /// The destination is cut off by an injected partition
    /// ([`crate::FaultPlan`] / `SimNet::partition`).
    Unreachable(NodeAddr),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddrInUse(a) => write!(f, "address already in use: {a}"),
            NetError::ConnectionRefused(a) => write!(f, "connection refused: {a}"),
            NetError::Closed => f.write_str("connection closed by peer"),
            NetError::Timeout(after) => {
                write!(f, "simulated i/o timed out after {after:?}")
            }
            NetError::NotBound(a) => write!(f, "address not bound: {a}"),
            NetError::WouldBlock => f.write_str("operation would block; retry on readiness"),
            NetError::Unreachable(a) => write!(f, "destination unreachable (partitioned): {a}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let a = NodeAddr::new([10, 0, 0, 1], 80);
        assert!(NetError::AddrInUse(a).to_string().contains("10.0.0.1:80"));
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::Timeout(Duration::from_millis(50))
            .to_string()
            .contains("timed out after 50ms"));
        assert!(NetError::Unreachable(a).to_string().contains("partitioned"));
        assert!(NetError::WouldBlock.to_string().contains("would block"));
    }
}

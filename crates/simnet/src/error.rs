//! Error type for simulated network operations.

use std::fmt;

use crate::addr::NodeAddr;

/// Errors surfaced by the simulated OS network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Bind target already has a listener/mailbox.
    AddrInUse(NodeAddr),
    /// No listener at the connect target.
    ConnectionRefused(NodeAddr),
    /// The peer closed the connection and all buffered data is consumed.
    Closed,
    /// A blocking operation exceeded the simulator's safety timeout —
    /// almost always a protocol deadlock in the code under test.
    TimedOut,
    /// Operation on an address that is not bound.
    NotBound(NodeAddr),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddrInUse(a) => write!(f, "address already in use: {a}"),
            NetError::ConnectionRefused(a) => write!(f, "connection refused: {a}"),
            NetError::Closed => f.write_str("connection closed by peer"),
            NetError::TimedOut => f.write_str("simulated i/o timed out (likely deadlock)"),
            NetError::NotBound(a) => write!(f, "address not bound: {a}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let a = NodeAddr::new([10, 0, 0, 1], 80);
        assert!(NetError::AddrInUse(a).to_string().contains("10.0.0.1:80"));
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::TimedOut.to_string().contains("timed out"));
    }
}

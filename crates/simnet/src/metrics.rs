//! Byte accounting for the network-overhead experiments.
//!
//! The paper asserts (§V-F) that DisTA's wire format — one 4-byte Global
//! ID after every data byte — costs about 5× network bandwidth. The
//! simulator counts every byte that crosses the "OS", so the claim can be
//! measured rather than assumed: run the same workload with and without
//! instrumentation and compare [`MetricsSnapshot::total_bytes`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe counters for one simulated network.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    tcp_bytes: AtomicU64,
    udp_bytes: AtomicU64,
    tcp_connections: AtomicU64,
    udp_datagrams: AtomicU64,
    udp_dropped: AtomicU64,
}

impl NetMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_tcp_bytes(&self, n: usize) {
        self.inner.tcp_bytes.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Rolls back an optimistic count when the write failed.
    pub(crate) fn record_tcp_bytes_undo(&self, n: usize) {
        self.inner.tcp_bytes.fetch_sub(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_udp_datagram(&self, n: usize) {
        self.inner.udp_bytes.fetch_add(n as u64, Ordering::Relaxed);
        self.inner.udp_datagrams.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_udp_drop(&self) {
        self.inner.udp_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_tcp_connection(&self) {
        self.inner.tcp_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tcp_bytes: self.inner.tcp_bytes.load(Ordering::Relaxed),
            udp_bytes: self.inner.udp_bytes.load(Ordering::Relaxed),
            tcp_connections: self.inner.tcp_connections.load(Ordering::Relaxed),
            udp_datagrams: self.inner.udp_datagrams.load(Ordering::Relaxed),
            udp_dropped: self.inner.udp_dropped.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (between benchmark phases).
    pub fn reset(&self) {
        self.inner.tcp_bytes.store(0, Ordering::Relaxed);
        self.inner.udp_bytes.store(0, Ordering::Relaxed);
        self.inner.tcp_connections.store(0, Ordering::Relaxed);
        self.inner.udp_datagrams.store(0, Ordering::Relaxed);
        self.inner.udp_dropped.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of the network counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Bytes written into TCP streams.
    pub tcp_bytes: u64,
    /// Bytes carried by delivered UDP datagrams.
    pub udp_bytes: u64,
    /// TCP connections established.
    pub tcp_connections: u64,
    /// UDP datagrams delivered.
    pub udp_datagrams: u64,
    /// UDP datagrams dropped by fault injection.
    pub udp_dropped: u64,
}

impl MetricsSnapshot {
    /// All payload bytes that crossed the simulated wire.
    pub fn total_bytes(&self) -> u64 {
        self.tcp_bytes + self.udp_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NetMetrics::new();
        m.record_tcp_bytes(10);
        m.record_tcp_bytes(5);
        m.record_udp_datagram(8);
        m.record_udp_drop();
        m.record_tcp_connection();
        let s = m.snapshot();
        assert_eq!(s.tcp_bytes, 15);
        assert_eq!(s.udp_bytes, 8);
        assert_eq!(s.udp_datagrams, 1);
        assert_eq!(s.udp_dropped, 1);
        assert_eq!(s.tcp_connections, 1);
        assert_eq!(s.total_bytes(), 23);
    }

    #[test]
    fn reset_zeroes() {
        let m = NetMetrics::new();
        m.record_tcp_bytes(10);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let m = NetMetrics::new();
        let c = m.clone();
        c.record_udp_datagram(3);
        assert_eq!(m.snapshot().udp_bytes, 3);
    }
}

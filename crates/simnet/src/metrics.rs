//! Byte accounting for the network-overhead experiments.
//!
//! The paper asserts (§V-F) that DisTA's wire format — one 4-byte Global
//! ID after every data byte — costs about 5× network bandwidth. The
//! simulator counts every byte that crosses the "OS", so the claim can be
//! measured rather than assumed: run the same workload with and without
//! instrumentation and compare [`MetricsSnapshot::total_bytes`].
//!
//! Since the observability layer landed, [`NetMetrics`] is a façade over
//! a [`MetricsRegistry`] family (`net_*` instruments): the hot-path
//! record calls hit cached [`Counter`] handles (one relaxed atomic op),
//! and the same registry can be shared with the rest of the cluster via
//! [`NetMetrics::with_registry`] so network and taint telemetry land in
//! one dump.

use dista_obs::{Counter, MetricsRegistry};

/// Shared, thread-safe counters for one simulated network.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    registry: MetricsRegistry,
    tcp_bytes: Counter,
    udp_bytes: Counter,
    tcp_connections: Counter,
    udp_datagrams: Counter,
    udp_dropped: Counter,
    udp_dropped_bytes: Counter,
}

impl NetMetrics {
    /// Creates zeroed counters in a private registry.
    pub fn new() -> Self {
        Self::with_registry(MetricsRegistry::new())
    }

    /// Creates the `net_*` counter family inside `registry`.
    pub fn with_registry(registry: MetricsRegistry) -> Self {
        NetMetrics {
            tcp_bytes: registry.counter("net_tcp_bytes"),
            udp_bytes: registry.counter("net_udp_bytes"),
            tcp_connections: registry.counter("net_tcp_connections"),
            udp_datagrams: registry.counter("net_udp_datagrams"),
            udp_dropped: registry.counter("net_udp_dropped_datagrams"),
            udp_dropped_bytes: registry.counter("net_udp_dropped_bytes"),
            registry,
        }
    }

    /// The registry holding the `net_*` instruments.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub(crate) fn record_tcp_bytes(&self, n: usize) {
        self.tcp_bytes.add(n as u64);
    }

    /// Rolls back an optimistic count when the write failed.
    pub(crate) fn record_tcp_bytes_undo(&self, n: usize) {
        self.tcp_bytes.sub(n as u64);
    }

    pub(crate) fn record_udp_datagram(&self, n: usize) {
        self.udp_bytes.add(n as u64);
        self.udp_datagrams.inc();
    }

    pub(crate) fn record_udp_drop(&self, n: usize) {
        self.udp_dropped.inc();
        self.udp_dropped_bytes.add(n as u64);
    }

    pub(crate) fn record_tcp_connection(&self) {
        self.tcp_connections.inc();
    }

    /// Reads a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tcp_bytes: self.tcp_bytes.get(),
            udp_bytes: self.udp_bytes.get(),
            tcp_connections: self.tcp_connections.get(),
            udp_datagrams: self.udp_datagrams.get(),
            udp_dropped: self.udp_dropped.get(),
            udp_dropped_bytes: self.udp_dropped_bytes.get(),
        }
    }

    /// Zeroes all counters (between benchmark phases).
    pub fn reset(&self) {
        self.tcp_bytes.reset();
        self.udp_bytes.reset();
        self.tcp_connections.reset();
        self.udp_datagrams.reset();
        self.udp_dropped.reset();
        self.udp_dropped_bytes.reset();
    }
}

/// Point-in-time view of the network counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Bytes written into TCP streams.
    pub tcp_bytes: u64,
    /// Bytes carried by delivered UDP datagrams.
    pub udp_bytes: u64,
    /// TCP connections established.
    pub tcp_connections: u64,
    /// UDP datagrams delivered.
    pub udp_datagrams: u64,
    /// UDP datagrams dropped by fault injection.
    pub udp_dropped: u64,
    /// Bytes carried by dropped UDP datagrams (never delivered).
    pub udp_dropped_bytes: u64,
}

impl MetricsSnapshot {
    /// All payload bytes offered to the simulated wire, including bytes
    /// in datagrams that fault injection then dropped.
    pub fn total_bytes(&self) -> u64 {
        self.tcp_bytes + self.udp_bytes + self.udp_dropped_bytes
    }

    /// Payload bytes that actually reached a receiver.
    pub fn delivered_bytes(&self) -> u64 {
        self.tcp_bytes + self.udp_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NetMetrics::new();
        m.record_tcp_bytes(10);
        m.record_tcp_bytes(5);
        m.record_udp_datagram(8);
        m.record_udp_drop(4);
        m.record_tcp_connection();
        let s = m.snapshot();
        assert_eq!(s.tcp_bytes, 15);
        assert_eq!(s.udp_bytes, 8);
        assert_eq!(s.udp_datagrams, 1);
        assert_eq!(s.udp_dropped, 1);
        assert_eq!(s.udp_dropped_bytes, 4);
        assert_eq!(s.tcp_connections, 1);
        assert_eq!(s.total_bytes(), 27);
        assert_eq!(s.delivered_bytes(), 23);
    }

    #[test]
    fn reset_zeroes() {
        let m = NetMetrics::new();
        m.record_tcp_bytes(10);
        m.record_udp_drop(3);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let m = NetMetrics::new();
        let c = m.clone();
        c.record_udp_datagram(3);
        assert_eq!(m.snapshot().udp_bytes, 3);
    }

    #[test]
    fn shared_registry_sees_net_family() {
        let reg = MetricsRegistry::new();
        let m = NetMetrics::with_registry(reg.clone());
        m.record_tcp_bytes(7);
        let dump = reg.snapshot();
        assert_eq!(dump.counter_total("net_tcp_bytes"), 7);
    }
}

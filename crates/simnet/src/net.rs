//! The simulated network fabric: listener/mailbox registry, connection
//! establishment, fault injection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU16, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::addr::NodeAddr;
use crate::error::NetError;
use crate::fault::{AppliedFault, FaultAction, FaultEngine, FaultPlan, FaultTrigger, LinkIp};
use crate::metrics::NetMetrics;
use crate::tcp::{AcceptQueue, TcpEndpoint, TcpListener};
use crate::udp::{Mailbox, UdpEndpoint};

/// Fault-injection and link-model configuration for one simulated
/// network.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Upper bound on bytes returned by a single TCP read (models
    /// fragmented delivery; `usize::MAX` = unlimited).
    pub max_read_chunk: usize,
    /// Probability in `[0, 1]` that a sent UDP datagram is discarded.
    pub udp_drop_probability: f64,
    /// Seed for the drop-decision RNG (deterministic runs).
    pub seed: u64,
    /// Simulated link cost in nanoseconds per byte, charged to the
    /// sender (0 = infinitely fast link, the default for tests). The
    /// overhead experiments set this to model real NIC bandwidth so that
    /// wire expansion translates into wall-clock time, as it does on the
    /// paper's testbed; e.g. 8 ns/B ≈ 1 Gbit/s.
    pub wire_ns_per_byte: u64,
    /// Upper bound on any single blocking operation (TCP read, accept,
    /// UDP receive). Expiry surfaces as the typed
    /// [`NetError::Timeout`], so chaos tests can shrink the bound and
    /// assert on starved readers instead of hanging for the default 30 s.
    pub block_timeout: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            max_read_chunk: usize::MAX,
            udp_drop_probability: 0.0,
            seed: 0x0D15_7A00,
            wire_ns_per_byte: 0,
            block_timeout: Duration::from_secs(30),
        }
    }
}

/// Shared, cheaply-readable view of the fault config used on hot paths.
#[derive(Debug, Clone)]
pub(crate) struct FaultsShared {
    max_read_chunk: Arc<AtomicUsize>,
    drop_per_million: Arc<AtomicUsize>,
    wire_ns_per_byte: Arc<AtomicUsize>,
    block_timeout_ns: Arc<AtomicU64>,
    rng: Arc<Mutex<SmallRng>>,
    engine: Arc<FaultEngine>,
}

impl FaultsShared {
    fn new(cfg: FaultConfig) -> Self {
        FaultsShared {
            max_read_chunk: Arc::new(AtomicUsize::new(cfg.max_read_chunk)),
            drop_per_million: Arc::new(AtomicUsize::new(
                (cfg.udp_drop_probability * 1_000_000.0) as usize,
            )),
            wire_ns_per_byte: Arc::new(AtomicUsize::new(cfg.wire_ns_per_byte as usize)),
            block_timeout_ns: Arc::new(AtomicU64::new(cfg.block_timeout.as_nanos() as u64)),
            rng: Arc::new(Mutex::new(SmallRng::seed_from_u64(cfg.seed))),
            engine: Arc::new(FaultEngine::new()),
        }
    }

    /// Reconfigures the shared knobs; the fault-schedule engine (and any
    /// active chaos state) is intentionally left untouched.
    fn update(&self, cfg: FaultConfig) {
        self.max_read_chunk
            .store(cfg.max_read_chunk, Ordering::Relaxed);
        self.drop_per_million.store(
            (cfg.udp_drop_probability * 1_000_000.0) as usize,
            Ordering::Relaxed,
        );
        self.wire_ns_per_byte
            .store(cfg.wire_ns_per_byte as usize, Ordering::Relaxed);
        self.block_timeout_ns
            .store(cfg.block_timeout.as_nanos() as u64, Ordering::Relaxed);
        *self.rng.lock() = SmallRng::seed_from_u64(cfg.seed);
    }

    pub(crate) fn max_read_chunk(&self) -> usize {
        self.max_read_chunk.load(Ordering::Relaxed)
    }

    pub(crate) fn block_timeout(&self) -> Duration {
        Duration::from_nanos(self.block_timeout_ns.load(Ordering::Relaxed))
    }

    pub(crate) fn engine(&self) -> &FaultEngine {
        &self.engine
    }

    pub(crate) fn should_drop_udp(&self) -> bool {
        let ppm = self.drop_per_million.load(Ordering::Relaxed);
        if ppm == 0 {
            return false;
        }
        self.rng.lock().gen_range(0..1_000_000) < ppm
    }

    /// Charges the sender the simulated link time for `bytes`. Uses a
    /// spin wait because the interesting budgets are well below the OS
    /// sleep granularity.
    pub(crate) fn charge_wire_time(&self, bytes: usize) {
        let ns = self.wire_ns_per_byte.load(Ordering::Relaxed);
        if ns == 0 || bytes == 0 {
            return;
        }
        let budget = std::time::Duration::from_nanos((ns * bytes) as u64);
        let start = std::time::Instant::now();
        while start.elapsed() < budget {
            std::hint::spin_loop();
        }
    }
}

#[derive(Default)]
struct Registry {
    tcp_listeners: HashMap<NodeAddr, Arc<AcceptQueue>>,
    udp_mailboxes: HashMap<NodeAddr, Arc<Mailbox>>,
}

/// One simulated network shared by every node of a test cluster.
///
/// Clones share the same fabric; see the crate docs for an example.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<NetInner>,
}

struct NetInner {
    registry: Mutex<Registry>,
    metrics: NetMetrics,
    faults: FaultsShared,
    next_ephemeral: AtomicU16,
}

impl SimNet {
    /// Creates an empty network with default (no-fault) configuration.
    pub fn new() -> Self {
        Self::with_faults(FaultConfig::default())
    }

    /// Creates a network with the given fault configuration.
    pub fn with_faults(cfg: FaultConfig) -> Self {
        SimNet {
            inner: Arc::new(NetInner {
                registry: Mutex::new(Registry::default()),
                metrics: NetMetrics::new(),
                faults: FaultsShared::new(cfg),
                next_ephemeral: AtomicU16::new(49152),
            }),
        }
    }

    /// Replaces the fault configuration at runtime. Any installed
    /// [`FaultPlan`] (and active chaos state) is preserved.
    pub fn set_faults(&self, cfg: FaultConfig) {
        self.inner.faults.update(cfg);
    }

    /// Installs a deterministic fault schedule. Entries already due at
    /// the current logical step apply immediately; the rest fire as the
    /// step clock advances (one tick per connect, TCP write, or
    /// datagram send).
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.inner.faults.engine().install(plan);
    }

    /// Current value of the logical step clock driving fault schedules.
    pub fn fault_step(&self) -> u64 {
        self.inner.faults.engine().step()
    }

    /// Marks that the workload reached pipeline stage `stage`: every
    /// stage-keyed entry of the installed [`FaultPlan`] waiting on that
    /// name fires now, at the current step. Unknown stages (and marks
    /// with no plan installed) are a no-op.
    pub fn mark_stage(&self, stage: &str) {
        self.inner.faults.engine().mark_stage(stage);
    }

    /// Drains pending process-level fault triggers (VM/shard
    /// crash-restart points) for the cluster layer to execute.
    pub fn take_fault_triggers(&self) -> Vec<FaultTrigger> {
        self.inner.faults.engine().take_triggers()
    }

    /// The applied-fault log: every fault that has fired, with the step
    /// it fired at. Two runs of the same plan against the same workload
    /// produce identical logs — the determinism witness.
    pub fn fault_log(&self) -> Vec<AppliedFault> {
        self.inner.faults.engine().log()
    }

    /// Imperatively cuts `from → to` (directed), effective immediately.
    pub fn partition(&self, from: LinkIp, to: LinkIp) {
        self.inner
            .faults
            .engine()
            .inject(FaultAction::Partition { from, to });
    }

    /// Imperatively cuts both directions between `a` and `b`.
    pub fn partition_both(&self, a: LinkIp, b: LinkIp) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Heals a directed partition.
    pub fn heal(&self, from: LinkIp, to: LinkIp) {
        self.inner
            .faults
            .engine()
            .inject(FaultAction::Heal { from, to });
    }

    /// Heals both directions between `a` and `b`.
    pub fn heal_both(&self, a: LinkIp, b: LinkIp) {
        self.heal(a, b);
        self.heal(b, a);
    }

    /// Partitions `ip` from every peer (the network face of a crash).
    pub fn isolate(&self, ip: LinkIp) {
        self.inner
            .faults
            .engine()
            .inject(FaultAction::Isolate { ip });
    }

    /// Undoes [`SimNet::isolate`].
    pub fn rejoin(&self, ip: LinkIp) {
        self.inner
            .faults
            .engine()
            .inject(FaultAction::Rejoin { ip });
    }

    /// Severs every TCP connection currently established between the two
    /// IPs; the next operation on either end observes
    /// [`NetError::Closed`].
    pub fn reset_link(&self, a: LinkIp, b: LinkIp) {
        self.inner
            .faults
            .engine()
            .inject(FaultAction::Reset { a, b });
    }

    /// The network's byte-accounting counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.inner.metrics
    }

    /// The metrics registry backing [`SimNet::metrics`]. Cluster-level
    /// observability shares this registry so network and taint
    /// instruments land in one dump.
    pub fn registry(&self) -> &dista_obs::MetricsRegistry {
        self.inner.metrics.registry()
    }

    /// Binds a TCP listener.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the address already has a listener.
    pub fn tcp_listen(&self, addr: NodeAddr) -> Result<TcpListener, NetError> {
        let mut reg = self.inner.registry.lock();
        if reg.tcp_listeners.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let (listener, queue) = TcpListener::new(addr, self.inner.faults.clone());
        reg.tcp_listeners.insert(addr, queue);
        Ok(listener)
    }

    /// Connects to a listening address, returning the client endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectionRefused`] if nothing listens at `dest`.
    pub fn tcp_connect(&self, dest: NodeAddr) -> Result<TcpEndpoint, NetError> {
        self.tcp_connect_from([127, 0, 0, 1], dest)
    }

    /// Connects with an explicit source IP (ephemeral source port).
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectionRefused`] if nothing listens at `dest`;
    /// [`NetError::Unreachable`] if an injected partition cuts the link.
    pub fn tcp_connect_from(
        &self,
        src_ip: [u8; 4],
        dest: NodeAddr,
    ) -> Result<TcpEndpoint, NetError> {
        let engine = self.inner.faults.engine();
        engine.advance();
        if engine.blocked(src_ip, dest.ip()) {
            return Err(NetError::Unreachable(dest));
        }
        let src_port = self.inner.next_ephemeral.fetch_add(1, Ordering::Relaxed);
        let src = NodeAddr::new(src_ip, src_port);
        let reg = self.inner.registry.lock();
        let queue = reg
            .tcp_listeners
            .get(&dest)
            .ok_or(NetError::ConnectionRefused(dest))?;
        let (client, server) = TcpEndpoint::pair(
            src,
            dest,
            self.inner.metrics.clone(),
            self.inner.faults.clone(),
            engine.step(),
        );
        self.inner.metrics.record_tcp_connection();
        if !queue.push(server) {
            return Err(NetError::ConnectionRefused(dest));
        }
        Ok(client)
    }

    /// Removes a TCP listener; established connections keep working and
    /// already-queued (unaccepted) connections can still be accepted.
    pub fn tcp_unlisten(&self, addr: NodeAddr) {
        let queue = self.inner.registry.lock().tcp_listeners.remove(&addr);
        if let Some(queue) = queue {
            queue.close();
        }
    }

    /// Binds a UDP socket.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the address already has a mailbox.
    pub fn udp_bind(&self, addr: NodeAddr) -> Result<UdpEndpoint, NetError> {
        let mut reg = self.inner.registry.lock();
        if reg.udp_mailboxes.contains_key(&addr) {
            return Err(NetError::AddrInUse(addr));
        }
        let mailbox = Arc::new(Mailbox::default());
        reg.udp_mailboxes.insert(addr, mailbox.clone());
        Ok(UdpEndpoint::new(
            addr,
            mailbox,
            self.clone(),
            self.inner.metrics.clone(),
            self.inner.faults.clone(),
        ))
    }

    pub(crate) fn deliver_datagram(&self, from: NodeAddr, to: NodeAddr, bytes: &[u8]) -> bool {
        let mailbox = self.inner.registry.lock().udp_mailboxes.get(&to).cloned();
        match mailbox {
            Some(mb) => {
                mb.deliver(from, bytes.to_vec());
                true
            }
            None => false,
        }
    }

    pub(crate) fn unbind_udp(&self, addr: NodeAddr) {
        self.inner.registry.lock().udp_mailboxes.remove(&addr);
    }
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.inner.registry.lock();
        f.debug_struct("SimNet")
            .field("tcp_listeners", &reg.tcp_listeners.len())
            .field("udp_mailboxes", &reg.udp_mailboxes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_twice_fails() {
        let net = SimNet::new();
        let addr = NodeAddr::new([1, 1, 1, 1], 80);
        let _l = net.tcp_listen(addr).unwrap();
        assert!(matches!(
            net.tcp_listen(addr),
            Err(NetError::AddrInUse(a)) if a == addr
        ));
    }

    #[test]
    fn connect_refused_without_listener() {
        let net = SimNet::new();
        let addr = NodeAddr::new([1, 1, 1, 1], 81);
        assert!(matches!(
            net.tcp_connect(addr),
            Err(NetError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn unlisten_frees_address() {
        let net = SimNet::new();
        let addr = NodeAddr::new([1, 1, 1, 1], 82);
        let _l = net.tcp_listen(addr).unwrap();
        net.tcp_unlisten(addr);
        assert!(net.tcp_listen(addr).is_ok());
    }

    #[test]
    fn connections_counted() {
        let net = SimNet::new();
        let addr = NodeAddr::new([1, 1, 1, 1], 83);
        let l = net.tcp_listen(addr).unwrap();
        let _c1 = net.tcp_connect(addr).unwrap();
        let _c2 = net.tcp_connect(addr).unwrap();
        let _s1 = l.accept().unwrap();
        let _s2 = l.accept().unwrap();
        assert_eq!(net.metrics().snapshot().tcp_connections, 2);
    }

    #[test]
    fn ephemeral_ports_are_distinct() {
        let net = SimNet::new();
        let addr = NodeAddr::new([1, 1, 1, 1], 84);
        let _l = net.tcp_listen(addr).unwrap();
        let c1 = net.tcp_connect(addr).unwrap();
        let c2 = net.tcp_connect(addr).unwrap();
        assert_ne!(c1.local_addr(), c2.local_addr());
    }

    #[test]
    fn tcp_bytes_metered() {
        let net = SimNet::new();
        let addr = NodeAddr::new([1, 1, 1, 1], 85);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let _s = l.accept().unwrap();
        c.write(&[0u8; 100]).unwrap();
        assert_eq!(net.metrics().snapshot().tcp_bytes, 100);
    }
}

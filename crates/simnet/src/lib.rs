//! # dista-simnet — the simulated operating system under DisTA
//!
//! DisTA instruments the JNI boundary: "network communication in
//! Java-based distributed systems utilizes JNI to bridge Java APIs and the
//! underlying operating system" (§I). This crate *is* that underlying
//! operating system for the reproduction: an in-memory, multi-threaded
//! network + file-system simulator whose entire API is **taint-oblivious**
//! — every function moves `&[u8]`, never shadow data. Anything the
//! instrumented wrappers above (crates `dista-jre` / `dista-core`) do not
//! explicitly re-encode into those bytes is lost at this boundary, exactly
//! as taints are lost inside native code on a real JVM.
//!
//! Provided subsystems:
//!
//! * [`SimNet`] — TCP-like reliable duplex byte streams (with genuine
//!   partial-read semantics) and UDP-like datagram mailboxes (with
//!   truncation and optional drops).
//! * [`native`] — the "JNI surface": free functions named after the JNI
//!   methods DisTA instruments (`socket_write0`, `socket_read0`,
//!   `datagram_send`, …).
//! * [`SimFs`] — a per-node in-memory file system (taint sources in the
//!   SIM scenarios read configuration/transaction files from here).
//! * [`NetMetrics`] — byte accounting used by the ≈5× network-overhead
//!   experiment.
//! * [`FaultPlan`] — a deterministic chaos schedule (directed
//!   partitions, connection resets, latency/jitter, crash-restart
//!   triggers) replayed bit-identically on a logical step clock.
//! * [`Reactor`] — an event-driven readiness queue with a hashed
//!   [`TimerWheel`]: non-blocking `try_read`/`try_write`/`try_receive`
//!   plus token-based wakeups, so one poller thread can drive 100k+
//!   connections. The blocking API above is a thin shim over the same
//!   wake machinery (pinned by `tests/reactor_conformance.rs`).
//!
//! # Example
//!
//! ```rust
//! use dista_simnet::{SimNet, NodeAddr};
//!
//! let net = SimNet::new();
//! let server = net.tcp_listen(NodeAddr::new([10, 0, 0, 1], 2181))?;
//! let client = net.tcp_connect(NodeAddr::new([10, 0, 0, 1], 2181))?;
//! let served = server.accept()?;
//! client.write(b"ruok")?;
//! let mut buf = [0u8; 16];
//! let n = served.read(&mut buf)?;
//! assert_eq!(&buf[..n], b"ruok");
//! # Ok::<(), dista_simnet::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod fault;
mod fs;
mod metrics;
pub mod native;
mod net;
mod reactor;
mod tcp;
mod timer;
mod udp;

pub use addr::NodeAddr;
pub use error::NetError;
pub use fault::{
    AppliedFault, FaultAction, FaultEvent, FaultPlan, FaultPlanBuilder, FaultTrigger, LinkIp,
    MigrationVictim, StageEvent,
};
pub use fs::{FileNotFound, SimFs, SimFsError};
pub use metrics::{MetricsSnapshot, NetMetrics};
pub use net::{FaultConfig, SimNet};
pub use reactor::{Event, Reactor, Readiness, TimerHandle, Token};
pub use tcp::{TcpEndpoint, TcpListener};
pub use timer::{TimerKey, TimerWheel};
pub use udp::UdpEndpoint;

/// Alias for [`NetError`] under the simulator-qualified name used by the
/// chaos layer (`SimNetError::Timeout`, `SimNetError::Unreachable`, …).
pub type SimNetError = NetError;

//! TCP-like reliable duplex byte streams.
//!
//! Streams have *genuine* stream semantics: writes are concatenated into
//! one byte sequence and reads return an arbitrary prefix of the buffered
//! bytes — at most the caller's buffer, at most what is buffered, and at
//! most the fault-injected chunk limit. This is what makes the paper's
//! "mismatched serialized taint length" problem (§III-D-2) real in the
//! simulator: a receiver genuinely can get half of a DisTA wire record
//! and must carry the remainder to the next read.
//!
//! Since the reactor landed, the primitive operations are the
//! non-blocking [`TcpEndpoint::try_read`] / [`TcpEndpoint::try_write`]
//! plus readiness registration ([`TcpEndpoint::register_readable`]); the
//! blocking API is a shim that parks a one-shot waiter in the same wake
//! list the reactor uses, **deadline-absolute** — a spurious wakeup
//! re-arms only the remaining time. The conformance suite pins that both
//! paths deliver identical bytes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::addr::NodeAddr;
use crate::error::NetError;
use crate::fault::spin_ns;
use crate::metrics::NetMetrics;
use crate::net::FaultsShared;
use crate::reactor::{Reactor, Readiness, SyncWaiter, Token, WakeList};

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One direction of a connection: a byte queue with readiness wakeups.
#[derive(Debug, Default)]
pub(crate) struct Pipe {
    state: Mutex<PipeState>,
    wakers: WakeList,
}

impl Pipe {
    fn write(&self, bytes: &[u8]) -> Result<(), NetError> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(NetError::Closed);
        }
        st.buf.extend(bytes);
        drop(st);
        self.wakers.notify(Readiness::READABLE);
        Ok(())
    }

    /// Non-blocking read of 1..=max bytes; `Ok(0)` only on clean EOF,
    /// [`NetError::WouldBlock`] when nothing is buffered yet.
    fn try_read(&self, out: &mut [u8], max_chunk: usize) -> Result<usize, NetError> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.state.lock();
        if st.buf.is_empty() {
            if st.closed {
                return Ok(0); // EOF
            }
            return Err(NetError::WouldBlock);
        }
        let n = out.len().min(st.buf.len()).min(max_chunk.max(1));
        let (front, back) = st.buf.as_slices();
        if n <= front.len() {
            out[..n].copy_from_slice(&front[..n]);
        } else {
            out[..front.len()].copy_from_slice(front);
            out[front.len()..n].copy_from_slice(&back[..n - front.len()]);
        }
        st.buf.drain(..n);
        Ok(n)
    }

    /// Blocking shim: retries [`Pipe::try_read`] under a wake-list
    /// waiter until data, EOF, or the **absolute** deadline.
    fn read(&self, out: &mut [u8], max_chunk: usize, timeout: Duration) -> Result<usize, NetError> {
        match self.try_read(out, max_chunk) {
            Err(NetError::WouldBlock) => {}
            other => return other,
        }
        let deadline = Instant::now() + timeout;
        let waiter = Arc::new(SyncWaiter::default());
        let id = self.wakers.register(waiter.clone());
        let result = loop {
            match self.try_read(out, max_chunk) {
                Err(NetError::WouldBlock) => {}
                other => break other,
            }
            if !waiter.wait_until(deadline) {
                break Err(NetError::Timeout(timeout));
            }
        };
        self.wakers.deregister(id);
        result
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.wakers.notify(Readiness::READABLE | Readiness::CLOSED);
    }

    fn buffered(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Current readiness, for catch-up at registration time.
    fn readiness(&self) -> Readiness {
        let st = self.state.lock();
        let mut r = Readiness::EMPTY;
        if !st.buf.is_empty() {
            r = r | Readiness::READABLE;
        }
        if st.closed {
            r = r | Readiness::READABLE | Readiness::CLOSED;
        }
        r
    }

    fn wakers(&self) -> &WakeList {
        &self.wakers
    }
}

/// One end of an established TCP-like connection.
///
/// Dropping the endpoint closes both directions (half-close is not
/// modeled; none of the reproduced systems need it).
#[derive(Debug, Clone)]
pub struct TcpEndpoint {
    inner: Arc<EndpointInner>,
}

#[derive(Debug)]
struct EndpointInner {
    local: NodeAddr,
    peer: NodeAddr,
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    metrics: NetMetrics,
    faults: FaultsShared,
    closed: AtomicBool,
    /// Logical fault-clock step at connection establishment; a
    /// scheduled `Reset` at a later step severs this connection.
    created_step: u64,
}

impl TcpEndpoint {
    pub(crate) fn pair(
        a_addr: NodeAddr,
        b_addr: NodeAddr,
        metrics: NetMetrics,
        faults: FaultsShared,
        created_step: u64,
    ) -> (TcpEndpoint, TcpEndpoint) {
        let ab = Arc::new(Pipe::default());
        let ba = Arc::new(Pipe::default());
        let a = TcpEndpoint {
            inner: Arc::new(EndpointInner {
                local: a_addr,
                peer: b_addr,
                rx: ba.clone(),
                tx: ab.clone(),
                metrics: metrics.clone(),
                faults: faults.clone(),
                closed: AtomicBool::new(false),
                created_step,
            }),
        };
        let b = TcpEndpoint {
            inner: Arc::new(EndpointInner {
                local: b_addr,
                peer: a_addr,
                rx: ab,
                tx: ba,
                metrics,
                faults,
                closed: AtomicBool::new(false),
                created_step,
            }),
        };
        (a, b)
    }

    /// Applies any pending fault-engine verdict to this connection:
    /// a scheduled reset closes it; a partition blocks the sender.
    fn check_link_faults(&self, advance: bool) -> Result<(), NetError> {
        let engine = self.inner.faults.engine();
        if advance {
            engine.advance();
        }
        if engine.link_reset_since(
            self.inner.local.ip(),
            self.inner.peer.ip(),
            self.inner.created_step,
        ) {
            self.close();
            return Err(NetError::Closed);
        }
        Ok(())
    }

    /// Local address of this end.
    pub fn local_addr(&self) -> NodeAddr {
        self.inner.local
    }

    /// Address of the peer.
    pub fn peer_addr(&self) -> NodeAddr {
        self.inner.peer
    }

    /// Writes all bytes to the peer.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if either side has closed the connection
    /// (including an injected connection reset);
    /// [`NetError::Unreachable`] if a partition cuts the link.
    pub fn write(&self, bytes: &[u8]) -> Result<(), NetError> {
        if self.inner.closed.load(Ordering::Relaxed) {
            return Err(NetError::Closed);
        }
        self.check_link_faults(true)?;
        let engine = self.inner.faults.engine();
        if engine.blocked(self.inner.local.ip(), self.inner.peer.ip()) {
            return Err(NetError::Unreachable(self.inner.peer));
        }
        spin_ns(engine.latency_ns(self.inner.local.ip(), self.inner.peer.ip()));
        self.inner.faults.charge_wire_time(bytes.len());
        // Count before the bytes become readable: observers who woke up
        // on this write must already see it in the metrics.
        self.inner.metrics.record_tcp_bytes(bytes.len());
        match self.inner.tx.write(bytes) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.inner.metrics.record_tcp_bytes_undo(bytes.len());
                Err(e)
            }
        }
    }

    /// Reactor-style write. Sim pipes are unbounded, so a permitted
    /// write always completes in full; the name mirrors the
    /// non-blocking read side and returns the byte count for
    /// event-loop symmetry. Advances the fault step clock exactly like
    /// [`TcpEndpoint::write`] — the conformance suite relies on the two
    /// paths being indistinguishable to the `FaultEngine`.
    ///
    /// # Errors
    ///
    /// Same as [`TcpEndpoint::write`].
    pub fn try_write(&self, bytes: &[u8]) -> Result<usize, NetError> {
        self.write(bytes)?;
        Ok(bytes.len())
    }

    /// Non-blocking read into `buf`.
    ///
    /// Returns the number of bytes read; `Ok(0)` means EOF.
    ///
    /// # Errors
    ///
    /// [`NetError::WouldBlock`] if no bytes are buffered (register with
    /// a [`Reactor`] to learn when to retry); the usual transport
    /// errors otherwise.
    pub fn try_read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        self.check_link_faults(false)?;
        let chunk = self.inner.faults.max_read_chunk();
        self.inner.rx.try_read(buf, chunk)
    }

    /// Registers this endpoint's read side with a reactor: `token`
    /// becomes readable whenever bytes arrive or the peer closes. If
    /// data is already buffered the token is queued immediately.
    pub fn register_readable(&self, reactor: &Reactor, token: Token) {
        reactor.attach(self.inner.rx.wakers(), self.inner.rx.readiness(), token);
    }

    /// Reads into `buf`, blocking until ≥1 byte is available.
    ///
    /// Returns the number of bytes read; `Ok(0)` means EOF (peer closed
    /// and the buffer is drained). The read may return fewer bytes than
    /// both `buf.len()` and the amount buffered — real TCP semantics,
    /// further constrained by [`crate::FaultConfig::max_read_chunk`].
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if no data arrives within the configured
    /// block timeout ([`crate::FaultConfig::block_timeout`]).
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        self.check_link_faults(false)?;
        let chunk = self.inner.faults.max_read_chunk();
        self.inner
            .rx
            .read(buf, chunk, self.inner.faults.block_timeout())
    }

    /// Like [`TcpEndpoint::read`], but bounded by a caller-supplied
    /// deadline instead of the net-wide block timeout. RPC clients use
    /// this to put a per-round-trip deadline on one connection without
    /// reconfiguring the whole simulator. The wait is deadline-absolute:
    /// wakeups that bring no data re-arm only the remaining time.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if no data arrives within `timeout`.
    pub fn read_deadline(&self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        self.check_link_faults(false)?;
        let chunk = self.inner.faults.max_read_chunk();
        self.inner.rx.read(buf, chunk, timeout)
    }

    /// Reads exactly `buf.len()` bytes, looping over partial reads.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] on EOF before the buffer is full;
    /// [`NetError::Timeout`] on stall.
    pub fn read_exact(&self, buf: &mut [u8]) -> Result<(), NetError> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read(&mut buf[filled..])?;
            if n == 0 {
                return Err(NetError::Closed);
            }
            filled += n;
        }
        Ok(())
    }

    /// Bytes currently buffered for reading.
    pub fn available(&self) -> usize {
        self.inner.rx.buffered()
    }

    /// Closes both directions.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Relaxed);
        self.inner.tx.close();
        self.inner.rx.close();
    }
}

impl Drop for EndpointInner {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

/// Queue of accepted-but-unclaimed connections behind one listener.
#[derive(Debug, Default)]
pub(crate) struct AcceptQueue {
    state: Mutex<AcceptState>,
    wakers: WakeList,
}

#[derive(Debug, Default)]
struct AcceptState {
    queue: VecDeque<TcpEndpoint>,
    closed: bool,
}

impl AcceptQueue {
    /// Enqueues a freshly-paired server endpoint; `false` if the
    /// listener is gone (the connector sees `ConnectionRefused`).
    pub(crate) fn push(&self, ep: TcpEndpoint) -> bool {
        let mut st = self.state.lock();
        if st.closed {
            return false;
        }
        st.queue.push_back(ep);
        drop(st);
        self.wakers.notify(Readiness::READABLE);
        true
    }

    fn try_pop(&self) -> Result<TcpEndpoint, NetError> {
        let mut st = self.state.lock();
        match st.queue.pop_front() {
            Some(ep) => Ok(ep),
            None if st.closed => Err(NetError::Closed),
            None => Err(NetError::WouldBlock),
        }
    }

    pub(crate) fn close(&self) {
        self.state.lock().closed = true;
        self.wakers.notify(Readiness::READABLE | Readiness::CLOSED);
    }

    fn readiness(&self) -> Readiness {
        let st = self.state.lock();
        let mut r = Readiness::EMPTY;
        if !st.queue.is_empty() {
            r = r | Readiness::READABLE;
        }
        if st.closed {
            r = r | Readiness::READABLE | Readiness::CLOSED;
        }
        r
    }
}

/// A listening socket; yields one [`TcpEndpoint`] per accepted connection.
#[derive(Debug)]
pub struct TcpListener {
    addr: NodeAddr,
    incoming: Arc<AcceptQueue>,
    faults: FaultsShared,
}

impl TcpListener {
    pub(crate) fn new(addr: NodeAddr, faults: FaultsShared) -> (TcpListener, Arc<AcceptQueue>) {
        let queue = Arc::new(AcceptQueue::default());
        (
            TcpListener {
                addr,
                incoming: queue.clone(),
                faults,
            },
            queue,
        )
    }

    /// The bound address.
    pub fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    /// Blocks until a client connects (deadline-absolute wait on the
    /// same wake machinery the reactor uses).
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if nothing connects within the configured
    /// block timeout; [`NetError::Closed`] if the listener was removed.
    pub fn accept(&self) -> Result<TcpEndpoint, NetError> {
        let timeout = self.faults.block_timeout();
        match self.incoming.try_pop() {
            Err(NetError::WouldBlock) => {}
            other => return other,
        }
        let deadline = Instant::now() + timeout;
        let waiter = Arc::new(SyncWaiter::default());
        let id = self.incoming.wakers.register(waiter.clone());
        let result = loop {
            match self.incoming.try_pop() {
                Err(NetError::WouldBlock) => {}
                other => break other,
            }
            if !waiter.wait_until(deadline) {
                break Err(NetError::Timeout(timeout));
            }
        };
        self.incoming.wakers.deregister(id);
        result
    }

    /// Non-blocking accept.
    pub fn try_accept(&self) -> Option<TcpEndpoint> {
        self.incoming.try_pop().ok()
    }

    /// Registers the listener with a reactor: `token` becomes readable
    /// whenever a connection is waiting to be accepted.
    pub fn register_acceptable(&self, reactor: &Reactor, token: Token) {
        reactor.attach(&self.incoming.wakers, self.incoming.readiness(), token);
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        // Later connects to a dropped listener must be refused even if
        // the address was never explicitly unlistened.
        self.incoming.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::SimNet;

    fn pair() -> (TcpEndpoint, TcpEndpoint) {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 1], 80);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn bytes_flow_both_ways() {
        let (c, s) = pair();
        c.write(b"ping").unwrap();
        let mut buf = [0u8; 8];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        s.write(b"pong").unwrap();
        let n = c.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }

    #[test]
    fn writes_concatenate_as_stream() {
        let (c, s) = pair();
        c.write(b"ab").unwrap();
        c.write(b"cd").unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
    }

    #[test]
    fn read_returns_at_most_buf_len() {
        let (c, s) = pair();
        c.write(b"0123456789").unwrap();
        let mut buf = [0u8; 3];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(n, 3);
        assert_eq!(&buf, b"012");
        assert_eq!(s.available(), 7);
    }

    #[test]
    fn eof_after_close() {
        let (c, s) = pair();
        c.write(b"x").unwrap();
        c.close();
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 1);
        assert_eq!(s.read(&mut buf).unwrap(), 0, "EOF after drain");
        assert_eq!(s.write(b"y"), Err(NetError::Closed));
    }

    #[test]
    fn read_exact_errors_on_short_stream() {
        let (c, s) = pair();
        c.write(b"ab").unwrap();
        c.close();
        let mut buf = [0u8; 4];
        assert_eq!(s.read_exact(&mut buf), Err(NetError::Closed));
    }

    #[test]
    fn blocking_read_wakes_on_write() {
        let (c, s) = pair();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            let n = s.read(&mut buf).unwrap();
            buf[..n].to_vec()
        });
        std::thread::sleep(Duration::from_millis(20));
        c.write(b"late").unwrap();
        assert_eq!(t.join().unwrap(), b"late");
    }

    #[test]
    fn empty_read_buffer_is_noop() {
        let (c, s) = pair();
        c.write(b"x").unwrap();
        let mut empty: [u8; 0] = [];
        assert_eq!(s.read(&mut empty).unwrap(), 0);
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn try_read_would_block_then_drains() {
        let (c, s) = pair();
        let mut buf = [0u8; 8];
        assert_eq!(s.try_read(&mut buf), Err(NetError::WouldBlock));
        c.write(b"now").unwrap();
        assert_eq!(s.try_read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"now");
        assert_eq!(s.try_read(&mut buf), Err(NetError::WouldBlock));
        c.close();
        assert_eq!(s.try_read(&mut buf).unwrap(), 0, "EOF, not WouldBlock");
    }

    #[test]
    fn try_write_reports_length() {
        let (c, s) = pair();
        assert_eq!(c.try_write(b"abc").unwrap(), 3);
        let mut buf = [0u8; 3];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn configured_block_timeout_is_typed() {
        let net = SimNet::new();
        let timeout = Duration::from_millis(25);
        net.set_faults(crate::FaultConfig {
            block_timeout: timeout,
            ..Default::default()
        });
        let addr = NodeAddr::new([10, 0, 0, 1], 86);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf), Err(NetError::Timeout(timeout)));
        drop(c);
    }

    #[test]
    fn blocking_read_deadline_is_absolute_under_spurious_wakeups() {
        // A wakeup storm that never delivers data must not extend the
        // deadline. Notify the pipe's wake list directly every 15 ms —
        // each gap is far below the 80 ms timeout, so a re-arming
        // (deadline-relative) wait would never expire.
        let pipe = Arc::new(Pipe::default());
        let timeout = Duration::from_millis(80);
        let storm = {
            let pipe = pipe.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    std::thread::sleep(Duration::from_millis(15));
                    pipe.wakers().notify(Readiness::READABLE);
                }
            })
        };
        let started = Instant::now();
        let mut buf = [0u8; 8];
        let got = pipe.read(&mut buf, usize::MAX, timeout);
        let elapsed = started.elapsed();
        storm.join().unwrap();
        assert_eq!(got, Err(NetError::Timeout(timeout)));
        assert!(
            elapsed < Duration::from_millis(1000),
            "reader must time out near the absolute deadline, took {elapsed:?}"
        );
    }

    #[test]
    fn partitioned_write_is_unreachable_until_heal() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 2], 87);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect_from([10, 0, 0, 1], addr).unwrap();
        let s = l.accept().unwrap();
        net.partition([10, 0, 0, 1], [10, 0, 0, 2]);
        assert_eq!(c.write(b"x"), Err(NetError::Unreachable(addr)));
        s.write(b"reverse ok").unwrap(); // directed: replies still flow
        net.heal([10, 0, 0, 1], [10, 0, 0, 2]);
        c.write(b"x").unwrap();
    }

    #[test]
    fn link_reset_severs_established_connections() {
        let net = SimNet::new();
        let addr = NodeAddr::new([10, 0, 0, 2], 88);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect_from([10, 0, 0, 1], addr).unwrap();
        let s = l.accept().unwrap();
        c.write(b"before").unwrap();
        net.reset_link([10, 0, 0, 1], [10, 0, 0, 2]);
        assert_eq!(c.write(b"after"), Err(NetError::Closed));
        // A fresh connection on the same link works again.
        let c2 = net.tcp_connect_from([10, 0, 0, 1], addr).unwrap();
        let s2 = l.accept().unwrap();
        c2.write(b"new").unwrap();
        let mut buf = [0u8; 3];
        s2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"new");
        drop(s);
    }

    #[test]
    fn partial_read_fault_limits_chunks() {
        let net = SimNet::new();
        net.set_faults(crate::FaultConfig {
            max_read_chunk: 2,
            ..Default::default()
        });
        let addr = NodeAddr::new([10, 0, 0, 1], 81);
        let l = net.tcp_listen(addr).unwrap();
        let c = net.tcp_connect(addr).unwrap();
        let s = l.accept().unwrap();
        c.write(b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(s.read(&mut buf).unwrap(), 2, "chunk limit applies");
        s.read_exact(&mut buf[2..]).unwrap();
        assert_eq!(&buf, b"abcdef");
    }
}

//! Per-node in-memory file system.
//!
//! The SIM (system input/output monitor) scenarios of the paper taint
//! "data input functions, e.g., reading from a configuration file"
//! (§V-B). Each simulated node owns a `SimFs` holding its configuration
//! and transaction-log files; the instrumented file-read API in
//! `dista-jre` marks returned bytes as tainted when file reads are
//! registered as source points.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// Error returned for operations on missing files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileNotFound(pub String);

impl fmt::Display for FileNotFound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file not found: {}", self.0)
    }
}

impl std::error::Error for FileNotFound {}

/// An in-memory file system for one simulated node.
///
/// # Example
///
/// ```rust
/// use dista_simnet::SimFs;
///
/// let fs = SimFs::new();
/// fs.write("conf/zoo.cfg", b"tickTime=2000".to_vec());
/// assert_eq!(fs.read("conf/zoo.cfg")?, b"tickTime=2000".to_vec());
/// # Ok::<(), dista_simnet::SimFsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    files: Arc<RwLock<BTreeMap<String, Vec<u8>>>>,
}

/// Alias used in doc examples.
pub type SimFsError = FileNotFound;

impl SimFs {
    /// Creates an empty file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates or replaces a file.
    pub fn write(&self, path: impl Into<String>, contents: Vec<u8>) {
        self.files.write().insert(path.into(), contents);
    }

    /// Appends to a file, creating it if absent.
    pub fn append(&self, path: impl Into<String>, contents: &[u8]) {
        self.files
            .write()
            .entry(path.into())
            .or_default()
            .extend_from_slice(contents);
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`FileNotFound`] if the path does not exist.
    pub fn read(&self, path: &str) -> Result<Vec<u8>, FileNotFound> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| FileNotFound(path.to_string()))
    }

    /// Whether the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Deletes a file; returns whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.write().remove(path).is_some()
    }

    /// Paths under a prefix, sorted (directory-listing stand-in).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// Whether the file system is empty.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let fs = SimFs::new();
        fs.write("a.txt", b"hello".to_vec());
        assert_eq!(fs.read("a.txt").unwrap(), b"hello");
    }

    #[test]
    fn read_missing_errors() {
        let fs = SimFs::new();
        let err = fs.read("nope").unwrap_err();
        assert_eq!(err, FileNotFound("nope".into()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn append_creates_and_extends() {
        let fs = SimFs::new();
        fs.append("log", b"ab");
        fs.append("log", b"cd");
        assert_eq!(fs.read("log").unwrap(), b"abcd");
    }

    #[test]
    fn list_filters_by_prefix_sorted() {
        let fs = SimFs::new();
        fs.write("logs/2", vec![]);
        fs.write("logs/1", vec![]);
        fs.write("conf/x", vec![]);
        assert_eq!(fs.list("logs/"), vec!["logs/1", "logs/2"]);
        assert_eq!(fs.list(""), vec!["conf/x", "logs/1", "logs/2"]);
    }

    #[test]
    fn remove_and_exists() {
        let fs = SimFs::new();
        fs.write("f", vec![1]);
        assert!(fs.exists("f"));
        assert!(fs.remove("f"));
        assert!(!fs.exists("f"));
        assert!(!fs.remove("f"));
        assert!(fs.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let fs = SimFs::new();
        let clone = fs.clone();
        clone.write("shared", vec![9]);
        assert_eq!(fs.len(), 1);
    }
}
